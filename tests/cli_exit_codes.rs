//! The CLI's exit-code contract, end to end against the real binary:
//! 0 = success, 2 = usage error, 3 = corrupt dataset under `--strict`,
//! 4 = a resumed study that still carries timed-out or abandoned reps,
//! 5 = a sharded sweep that completed degraded (abandoned shards).
//! Automation scripts branch on these, so they are tested as an
//! interface, not an implementation detail.

use std::path::PathBuf;
use std::process::Command;

use interlag::core::checkpoint::{study_fingerprint, StudyJournal};
use interlag::core::experiment::{LabConfig, RepOutcome, RepResult};
use interlag::core::profile::LagProfile;
use interlag::evdev::time::SimDuration;
use interlag::workloads::datasets::Dataset;

fn interlag_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_interlag"))
}

fn exit_code(cmd: &mut Command) -> i32 {
    cmd.output().expect("binary runs").status.code().expect("binary exits, not signalled")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("interlag-cli-{}-{tag}", std::process::id()))
}

#[test]
fn clean_study_exits_zero() {
    assert_eq!(exit_code(interlag_cmd().args(["study", "mini"])), 0);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(exit_code(&mut interlag_cmd()), 2, "no arguments");
    assert_eq!(exit_code(interlag_cmd().arg("frobnicate")), 2, "unknown command");
    assert_eq!(exit_code(interlag_cmd().args(["study", "no-such-dataset"])), 2);
    assert_eq!(
        exit_code(interlag_cmd().args(["study", "mini", "--resume"])),
        2,
        "--resume without --journal"
    );
}

#[test]
fn corrupt_dataset_under_strict_exits_three() {
    let path = temp_path("corrupt.trace");
    std::fs::write(&path, b"[      2.000000] /dev/input/event1: 0003 0039 00000000\nGARBAGE\n")
        .expect("write corrupt trace");
    let code = exit_code(interlag_cmd().args([
        "study",
        "mini",
        "--events",
        path.to_str().expect("utf-8 temp path"),
        "--strict",
    ]));
    assert_eq!(code, 3);

    // The same file in default salvage mode drops the bad line and runs.
    let code = exit_code(interlag_cmd().args([
        "study",
        "mini",
        "--events",
        path.to_str().expect("utf-8 temp path"),
    ]));
    assert_eq!(code, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_with_degraded_reps_exits_four() {
    // Fabricate the journal a killed sweep would leave behind: one
    // repetition recorded as timed out, under the exact fingerprint the
    // CLI computes for `study mini` (reps = 1, default lab settings).
    let w = Dataset::Mini.build();
    let config = LabConfig { reps: 1, ..Default::default() };
    let fingerprint = study_fingerprint(&w.script.record_trace().to_getevent_text(), &config);

    let path = temp_path("degraded.journal");
    let _ = std::fs::remove_file(&path);
    let journal = StudyJournal::create(&path, fingerprint).expect("create journal");
    let placeholder = RepResult {
        profile: LagProfile::new("fixed-0.30 GHz"),
        dynamic_energy_mj: 0.0,
        irritation: SimDuration::ZERO,
        match_failures: 0,
        input_faults: 0,
    };
    journal.record(0, 0, &placeholder, &RepOutcome::TimedOut { attempts: 1 });
    assert_eq!(journal.write_errors(), 0);
    drop(journal);

    let code = exit_code(interlag_cmd().args([
        "study",
        "mini",
        "--journal",
        path.to_str().expect("utf-8 temp path"),
        "--resume",
    ]));
    assert_eq!(code, 4, "a resumed-but-degraded study must flag its holes");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_sweep_exits_five() {
    // A shard whose agent crashes on every attempt its (zeroed) retry
    // budget allows is abandoned: the sweep still writes a complete
    // report, and the exit code must say "degraded", distinct from both
    // success and runtime failure.
    let dir = temp_path("sweep-degraded");
    let _ = std::fs::remove_dir_all(&dir);
    let code = exit_code(interlag_cmd().args([
        "sweep",
        "mini",
        "--shards",
        "2",
        "--retry-budget",
        "0",
        "--sabotage",
        "crash@1:0:*",
        "--journal-dir",
        dir.to_str().expect("utf-8 temp path"),
    ]));
    assert_eq!(code, 5, "an abandoned shard must surface as exit 5");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_usage_errors_exit_two() {
    assert_eq!(
        exit_code(interlag_cmd().args(["sweep", "mini", "--sabotage", "explode@1:0:0"])),
        2,
        "unknown sabotage kind"
    );
    assert_eq!(
        exit_code(interlag_cmd().args(["agent", "mini", "--shard", "0"])),
        2,
        "agent without --of/--stage/--journal"
    );
}

#[test]
fn clean_resume_exits_zero() {
    let path = temp_path("clean.journal");
    let _ = std::fs::remove_file(&path);
    let journal_arg = path.to_str().expect("utf-8 temp path").to_string();
    assert_eq!(exit_code(interlag_cmd().args(["study", "mini", "--journal", &journal_arg])), 0);
    assert_eq!(
        exit_code(interlag_cmd().args(["study", "mini", "--journal", &journal_arg, "--resume"])),
        0,
        "resuming a completed clean sweep stays success"
    );
    let _ = std::fs::remove_file(&path);
}
