//! Cross-crate behavioural checks of the governor study on a compact
//! workload: the orderings the paper reports must already hold at small
//! scale (full-dataset numbers are produced by `cargo bench`).

use interlag::core::experiment::{Lab, LabConfig};
use interlag::device::script::InteractionCategory;
use interlag::evdev::time::SimDuration;
use interlag::workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// ~80 seconds with the full interaction mix, small enough for debug CI.
fn compact_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0x5ca1e);
    b.app_launch("launch", 800 * MCYCLES, 7, InteractionCategory::Common);
    b.think_ms(4_000, 6_000);
    for i in 0..6 {
        b.quick_tap(&format!("tap {i}"), 300 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(4_000, 6_000);
    }
    b.heavy_with_progress("save", 2_500 * MCYCLES, InteractionCategory::Complex);
    b.think_ms(4_000, 6_000);
    b.app_launch("open article", 700 * MCYCLES, 6, InteractionCategory::Common);
    b.think_ms(3_000, 5_000);
    b.scroll("scroll", 200 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.recurring_background(
        "sync",
        SimDuration::from_secs(20),
        300 * MCYCLES,
        SimDuration::from_secs(75),
    );
    b.build("shape", "governor-shape workload")
}

fn study() -> interlag::core::experiment::StudyResult {
    let lab = Lab::new(LabConfig { reps: 1, ..Default::default() });
    lab.study(&compact_workload()).expect("study")
}

#[test]
fn oracle_and_fastest_have_zero_irritation_everything_matches() {
    let s = study();
    assert_eq!(s.oracle.mean_irritation(), SimDuration::ZERO);
    assert_eq!(s.fixed.last().expect("14 fixed configs").mean_irritation(), SimDuration::ZERO);
    for c in s.all_configs() {
        assert_eq!(c.reps[0].match_failures, 0, "{}", c.name);
    }
}

#[test]
fn energy_orderings_match_the_paper() {
    let s = study();
    let e = |name: &str| s.energy_normalised(s.config(name).expect("present"));

    // Fixed-frequency energy is U-shaped with the optimum at 0.96 GHz.
    let u: Vec<f64> = s.fixed.iter().map(|c| s.energy_normalised(c)).collect();
    let min_idx = u
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty")
        .0;
    assert_eq!(s.fixed[min_idx].name, "fixed-0.96 GHz", "U-shape optimum: {u:?}");
    assert!(u[0] > u[min_idx], "0.30 GHz costs more than the optimum");
    assert!(u[13] > u[0], "2.15 GHz is the most expensive fixed point");

    // Governors: conservative at or below the oracle; ondemand clearly
    // above; interactive in between.
    assert!(e("conservative") < 1.05, "conservative {}", e("conservative"));
    assert!(e("ondemand") > 1.10, "ondemand {}", e("ondemand"));
    assert!(e("interactive") > 1.0 && e("interactive") <= e("ondemand") + 0.05);
}

#[test]
fn irritation_orderings_match_the_paper() {
    let s = study();
    let irr = |name: &str| s.config(name).expect("present").mean_irritation();
    assert!(
        irr("conservative") > irr("ondemand") * 3,
        "conservative ({}) must dwarf ondemand ({})",
        irr("conservative"),
        irr("ondemand")
    );
    assert!(
        irr("conservative") > irr("interactive") * 3,
        "conservative ({}) must dwarf interactive ({})",
        irr("conservative"),
        irr("interactive")
    );
    // Fixed-frequency irritation decreases monotonically (allowing tiny
    // plateaus at the fast end where everything meets its threshold).
    let fixed: Vec<f64> = s.fixed.iter().map(|c| c.mean_irritation().as_secs_f64()).collect();
    assert!(fixed[0] > fixed[13], "{fixed:?}");
    for w in fixed.windows(2) {
        assert!(w[1] <= w[0] + 0.25, "irritation should fall with frequency: {fixed:?}");
    }
}

#[test]
fn oracle_saves_energy_against_max_frequency_and_governors() {
    let s = study();
    let max = s.fixed.last().expect("fixed configs");
    assert!(
        s.energy_normalised(max) > 1.25,
        "substantial savings vs the performance governor ({}x)",
        s.energy_normalised(max)
    );
    let ond = s.config("ondemand").expect("present");
    assert!(
        s.energy_normalised(ond) > 1.08,
        "meaningful savings vs ondemand ({}x)",
        s.energy_normalised(ond)
    );
}

#[test]
fn oracle_boosts_during_lags_and_rests_at_the_efficient_frequency() {
    let lab = Lab::new(LabConfig { reps: 1, ..Default::default() });
    let w = compact_workload();
    let s = lab.study(&w).expect("study");
    let efficient = lab.power_table().most_efficient_freq();

    // Between the first two interactions the plan must rest at the
    // efficient frequency.
    let first = s.oracle_detail.decisions[0].clone();
    let rest_at = first.input_time + first.hold + SimDuration::from_millis(200);
    assert_eq!(s.oracle_detail.plan.freq_at(rest_at), efficient);
    // During each lag the plan runs at the decision's frequency or higher.
    for d in &s.oracle_detail.decisions {
        let mid = d.input_time + d.hold / 2;
        assert!(
            s.oracle_detail.plan.freq_at(mid) >= d.freq,
            "lag {} under-clocked mid-boost",
            d.interaction_id
        );
    }
}
