//! End-to-end sharded-sweep orchestration against the real binary:
//! `interlag sweep` spawns real `interlag agent` child processes over
//! pipes, kills some of them for real (an agent crash is an `abort()`),
//! and must still print a report **byte-identical** to the plain
//! single-process `interlag study` — at any shard count and under any
//! kill schedule the retry budget absorbs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn interlag_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_interlag"))
}

fn run(args: &[&str]) -> Output {
    interlag_cmd().args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single-process study report every sweep must reproduce.
fn baseline() -> Vec<u8> {
    let out = run(&["study", "mini", "-r", "2"]);
    assert!(out.status.success(), "baseline study failed: {:?}", out);
    assert!(!out.stdout.is_empty());
    out.stdout
}

#[test]
fn sweep_report_is_byte_identical_to_study_at_every_shard_count() {
    let expected = baseline();
    for shards in ["1", "4", "8"] {
        let dir = temp_dir(&format!("clean-{shards}"));
        let out = run(&[
            "sweep",
            "mini",
            "-r",
            "2",
            "--shards",
            shards,
            "--journal-dir",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{shards} shards: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(out.stdout, expected, "{shards} shards diverged from the single-process study");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_agents_within_budget_leave_the_report_byte_identical() {
    let expected = baseline();
    // Three deterministic kill schedules: a real SIGABRT at a checkpoint
    // boundary, a supervisor-side SIGKILL on a received record, and a
    // crash that leaves a torn half-frame in the shard journal.
    for (tag, sabotage) in
        [("crash", "crash@2:0:0"), ("kill", "kill@1:1:0"), ("tear", "tear@1:2:0")]
    {
        let dir = temp_dir(&format!("sab-{tag}"));
        let out = run(&[
            "sweep",
            "mini",
            "-r",
            "2",
            "--shards",
            "4",
            "--sabotage",
            sabotage,
            "--journal-dir",
            dir.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{tag}: sweep should absorb the kill: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(out.stdout, expected, "{tag}: kill schedule changed the report bytes");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("1 retried"), "{tag}: expected one retry, got: {stderr}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn degraded_sweep_still_prints_a_complete_report() {
    let expected = baseline();
    let dir = temp_dir("degraded");
    let out = run(&[
        "sweep",
        "mini",
        "-r",
        "2",
        "--shards",
        "2",
        "--retry-budget",
        "0",
        "--sabotage",
        "crash@1:0:*",
        "--journal-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    // Same shape as the clean report — every configuration, every
    // repetition row — only the abandoned slots' values differ.
    let count = |bytes: &[u8]| bytes.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(count(&out.stdout), count(&expected), "degraded report must not drop rows");
    assert_ne!(out.stdout, expected, "abandoned slots must be visible in the report");
    let _ = std::fs::remove_dir_all(&dir);
}
