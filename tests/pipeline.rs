//! End-to-end integration of the whole methodology: record → replay →
//! capture → annotate → match → irritate, across crates, on miniature
//! workloads small enough for debug-mode CI.

use interlag::core::annotation::GroundTruthPicker;
use interlag::core::experiment::{Lab, LabConfig};
use interlag::core::irritation::{user_irritation, ThresholdModel};
use interlag::core::matcher::mark_up;
use interlag::device::dvfs::FixedGovernor;
use interlag::device::script::InteractionCategory;
use interlag::evdev::time::SimDuration;
use interlag::power::opp::Frequency;
use interlag::workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn mini_workload(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("launch app", 500 * MCYCLES, 6, InteractionCategory::Common);
    b.think_ms(2_500, 3_500);
    b.quick_tap("open item", 250 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.think_ms(2_000, 3_000);
    b.typing_burst("type", 4, 15 * MCYCLES);
    b.think_ms(1_500, 2_500);
    b.spurious_tap("miss the button");
    b.think_ms(1_500, 2_500);
    b.heavy_with_progress("export", 1_500 * MCYCLES, InteractionCategory::Complex);
    b.think_ms(2_000, 3_000);
    b.scroll("scroll away", 150 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.background_burst("sync", SimDuration::from_secs(2), 250 * MCYCLES);
    b.build("pipeline-mini", "integration-test workload")
}

#[test]
fn matcher_recovers_ground_truth_across_frequencies() {
    let lab = Lab::new(LabConfig::default());
    let w = mini_workload(21);
    let (db, stats, _) = lab.annotate_workload(&w).expect("annotate");
    assert_eq!(stats.unannotated, 0, "every actual lag gets annotated");

    // Mark up executions at three very different frequencies; the matcher
    // must agree with the simulator's ground truth within one frame
    // period everywhere.
    let frame = SimDuration::from_micros(33_333);
    let quantum = SimDuration::from_millis(1);
    for mhz in [300u32, 960, 2_150] {
        let mut gov = FixedGovernor::new(Frequency::from_mhz(mhz));
        let run = lab.run(&w, w.script.record_trace(), &mut gov).expect("clean run");
        let video = run.video.as_ref().expect("video captured");
        let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, "it");
        assert!(failures.is_empty(), "{mhz} MHz: {failures:?}");
        for rec in run.interactions.iter().filter(|r| r.triggered && !r.spurious) {
            let truth = rec.true_lag().expect("serviced");
            let measured = profile.lag_of(rec.id).expect("matched");
            let err = if measured > truth { measured - truth } else { truth - measured };
            assert!(
                err <= frame + quantum * 2,
                "{mhz} MHz lag {}: measured {measured}, truth {truth}",
                rec.id
            );
        }
    }
}

#[test]
fn lags_scale_inversely_with_frequency_but_waits_do_not() {
    let lab = Lab::new(LabConfig::default());
    let w = mini_workload(22);
    let (db, _, _) = lab.annotate_workload(&w).expect("annotate");

    let profile_at = |mhz: u32| {
        let mut gov = FixedGovernor::new(Frequency::from_mhz(mhz));
        let run = lab.run(&w, w.script.record_trace(), &mut gov).expect("clean run");
        let (profile, _) = mark_up(run.video.as_ref().unwrap(), &run.lag_beginnings(), &db, "p");
        profile
    };
    let slow = profile_at(300);
    let fast = profile_at(2_150);
    // Total lag must shrink dramatically, but not by the full 7.2x clock
    // ratio: the I/O waits are frequency-independent.
    let ratio = slow.total_lag().as_secs_f64() / fast.total_lag().as_secs_f64();
    assert!(ratio > 2.5, "lags must shrink with frequency (ratio {ratio:.2})");
    assert!(ratio < 7.2, "waits bound the speedup (ratio {ratio:.2})");
}

#[test]
fn spurious_inputs_never_enter_profiles() {
    let lab = Lab::new(LabConfig::default());
    let w = mini_workload(23);
    let spurious_ids: Vec<usize> = w
        .script
        .interactions
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_spurious())
        .map(|(i, _)| i)
        .collect();
    assert!(!spurious_ids.is_empty());

    let (db, _, run) = lab.annotate_workload(&w).expect("annotate");
    for id in &spurious_ids {
        assert!(db.get(*id).is_none(), "spurious lag {id} must not be annotated");
    }
    let (profile, _) = mark_up(run.video.as_ref().unwrap(), &run.lag_beginnings(), &db, "ref");
    for id in spurious_ids {
        assert!(profile.lag_of(id).is_none());
    }
}

#[test]
fn irritation_is_zero_under_own_reference_and_grows_when_slower() {
    let lab = Lab::new(LabConfig::default());
    let w = mini_workload(24);
    let (db, _, reference) = lab.annotate_workload(&w).expect("annotate");
    let (ref_profile, _) =
        mark_up(reference.video.as_ref().unwrap(), &reference.lag_beginnings(), &db, "fixed-max");
    let model = ThresholdModel::paper_rule(ref_profile.clone());
    assert_eq!(user_irritation(&ref_profile, &model).total(), SimDuration::ZERO);

    let mut gov = FixedGovernor::new(Frequency::from_mhz(300));
    let run = lab.run(&w, w.script.record_trace(), &mut gov).expect("clean run");
    let (slow_profile, _) =
        mark_up(run.video.as_ref().unwrap(), &run.lag_beginnings(), &db, "fixed-min");
    let report = user_irritation(&slow_profile, &model);
    assert!(report.total() > SimDuration::from_millis(500));
    assert!(report.irritating_lags() >= slow_profile.len() / 2);
}

#[test]
fn annotation_picker_sees_the_true_ending_among_suggestions() {
    // The ground-truth picker must never fall back to "no suggestion":
    // if it did, the suggester missed a real ending.
    let lab = Lab::new(LabConfig::default());
    for seed in [31u64, 32, 33] {
        let w = mini_workload(seed);
        let (db, stats, run) = lab.annotate_workload(&w).expect("annotate");
        assert_eq!(stats.unannotated, 0, "seed {seed}");
        assert_eq!(db.len(), run.lag_beginnings().len(), "seed {seed}");
        let _ = GroundTruthPicker::new(&run);
    }
}

#[test]
fn occurrence_two_lags_are_annotated_and_matched() {
    // heavy_with_progress produces an ending identical to the screen at
    // the input: the db must carry occurrence 2 and the matcher must not
    // match instantly.
    let lab = Lab::new(LabConfig::default());
    let w = mini_workload(25);
    let (db, _, run) = lab.annotate_workload(&w).expect("annotate");
    let export_id = w
        .script
        .interactions
        .iter()
        .position(|s| s.label == "export")
        .expect("export interaction exists");
    let ann = db.get(export_id).expect("annotated");
    assert!(ann.occurrence >= 2, "ending equals beginning: occurrence {}", ann.occurrence);

    let (profile, _) = mark_up(run.video.as_ref().unwrap(), &run.lag_beginnings(), &db, "ref");
    let truth = run.interactions[export_id].true_lag().expect("serviced");
    let matched = profile.lag_of(export_id).expect("matched");
    assert!(matched >= truth.saturating_sub(SimDuration::from_millis(40)));
    assert!(matched >= SimDuration::from_millis(300), "not an instant match: {matched}");
}
