//! Serialisation round-trips of every persistent artifact: traces,
//! annotation databases, lag profiles, frequency plans and activity
//! traces all survive JSON round-trips bit-exactly, so studies can be
//! split across machines the way the paper splits recording (on the
//! phone) from analysis (on a workstation).

use interlag::core::annotation::AnnotationDb;
use interlag::core::experiment::{Lab, LabConfig};
use interlag::core::matcher::mark_up;
use interlag::core::profile::LagProfile;
use interlag::device::script::InteractionCategory;
use interlag::evdev::trace::EventTrace;
use interlag::governors::plan::FrequencyPlan;
use interlag::power::energy::ActivityTrace;
use interlag::power::opp::Frequency;
use interlag::workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn workload() -> Workload {
    let mut b = WorkloadBuilder::new(404);
    b.app_launch("launch", 500 * MCYCLES, 5, InteractionCategory::Common);
    b.think_ms(2_000, 3_000);
    b.heavy_with_progress("send", 1_200 * MCYCLES, InteractionCategory::Common);
    b.build("serde", "serde round-trip workload")
}

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialises");
    serde_json::from_str(&json).expect("deserialises")
}

#[test]
fn event_trace_roundtrips_via_json_and_getevent_text() {
    let w = workload();
    let trace = w.script.record_trace();
    let via_json: EventTrace = roundtrip(&trace);
    assert_eq!(via_json, trace);
    let via_text: EventTrace = trace.to_getevent_text().parse().expect("parses");
    assert_eq!(via_text, trace);
}

#[test]
fn annotation_db_roundtrips_and_still_matches() {
    let lab = Lab::new(LabConfig::default());
    let w = workload();
    let (db, _, run) = lab.annotate_workload(&w).expect("annotate");

    let restored: AnnotationDb = roundtrip(&db);
    assert_eq!(restored, db);

    // The restored database must drive the matcher identically.
    let video = run.video.as_ref().expect("video");
    let (a, fa) = mark_up(video, &run.lag_beginnings(), &db, "orig");
    let (b, fb) = mark_up(video, &run.lag_beginnings(), &restored, "restored");
    assert_eq!(a.entries(), b.entries());
    assert_eq!(fa, fb);
}

#[test]
fn lag_profiles_and_plans_roundtrip() {
    let lab = Lab::new(LabConfig::default());
    let w = workload();
    let study = lab.study(&w).expect("study");

    let profile = &study.oracle.reps[0].profile;
    let restored: LagProfile = roundtrip(profile);
    assert_eq!(&restored, profile);

    let plan = &study.oracle_detail.plan;
    let restored: FrequencyPlan = roundtrip(plan);
    assert_eq!(&restored, plan);
    // Behavioural equality too.
    for ms in (0..30_000).step_by(500) {
        let t = interlag::evdev::time::SimTime::from_millis(ms);
        assert_eq!(restored.freq_at(t), plan.freq_at(t));
    }
}

#[test]
fn activity_traces_roundtrip_with_equal_energy() {
    let lab = Lab::new(LabConfig::default());
    let w = workload();
    let trace = w.script.record_trace();
    let mut gov = interlag::device::dvfs::FixedGovernor::new(Frequency::from_mhz(960));
    let run = lab.run(&w, trace, &mut gov).expect("clean run");

    let restored: ActivityTrace = roundtrip(&run.activity);
    assert_eq!(restored, run.activity);
    let a = lab.meter().measure(&run.activity);
    let b = lab.meter().measure(&restored);
    assert_eq!(a.dynamic_mj.to_bits(), b.dynamic_mj.to_bits());
}

#[test]
fn device_scripts_roundtrip() {
    let w = workload();
    let restored: interlag::device::script::DeviceScript = roundtrip(&w.script);
    assert_eq!(restored, w.script);
    assert_eq!(restored.record_trace(), w.script.record_trace());
}
