//! Differential end-to-end test for the results database: a fleet run
//! folded through `interlag sweep --db` and read back with
//! `interlag db query` must report exactly the statistics this test
//! computes *independently* — by decoding the single-process
//! `interlag study` journal and re-deriving every percentile, mean and
//! count from the raw samples with its own arithmetic.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, Output};

use interlag::core::checkpoint::decode_checkpoint_any;
use interlag::db::SubmissionManifest;
use interlag::journal::decode_records;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_interlag")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-dbe2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything measured for one governor config, straight from the
/// single-process study journal.
#[derive(Default)]
struct RawConfig {
    lags_us: Vec<u64>,
    energies_uj: Vec<u64>,
    reps: u64,
}

/// The independent percentile rule: the sample of rank `ceil(q*n)`
/// rounded up to its inclusive histogram bucket bound. Re-derived from
/// the sorted raw samples, not from the database's sketch code.
fn percentile_ms(sorted_us: &[u64], q: f64, bucket_us: u64) -> String {
    let n = sorted_us.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let sample = sorted_us[rank as usize - 1];
    format!("{:.3}ms", ((sample / bucket_us + 1) * bucket_us) as f64 / 1_000.0)
}

fn mean_ms(samples_us: &[u64]) -> String {
    let sum: u128 = samples_us.iter().map(|&v| u128::from(v)).sum();
    format!("{:.3}ms", sum as f64 / samples_us.len() as f64 / 1_000.0)
}

#[test]
fn db_query_matches_stats_recomputed_from_the_study_journal() {
    // 1. Ground truth: the plain single-process study, journalled.
    let dir = temp_dir("truth");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("study.bin");
    let out = run(&["study", "mini", "-r", "2", "--journal", journal.to_str().unwrap()]);
    assert!(out.status.success(), "study failed: {}", String::from_utf8_lossy(&out.stderr));

    let bytes = std::fs::read(&journal).unwrap();
    let decoded = decode_records(&bytes);
    assert_eq!(decoded.torn, 0, "clean journal");
    let mut raw: BTreeMap<usize, RawConfig> = BTreeMap::new();
    for payload in &decoded.records {
        let record = decode_checkpoint_any(payload).expect("study records decode");
        let (config, _rep, result, outcome) = record.into_parts();
        assert!(outcome.is_measured(), "the mini study has no degraded repetitions");
        let entry = raw.entry(config).or_default();
        entry.reps += 1;
        entry.energies_uj.push((result.dynamic_energy_mj * 1_000.0).round() as u64);
        for lag in result.profile.lags() {
            entry.lags_us.push(lag.as_micros());
        }
    }
    assert!(!raw.is_empty(), "the study journalled at least one config");
    raw.values_mut().for_each(|c| c.lags_us.sort_unstable());

    // 2. The fleet path: a sharded sweep sealed into a submission and
    //    folded into a fresh database at merge time.
    let sweep_dir = temp_dir("sweep");
    let db_dir = temp_dir("db");
    let out = run(&[
        "sweep",
        "mini",
        "-r",
        "2",
        "--shards",
        "3",
        "--journal-dir",
        sweep_dir.to_str().unwrap(),
        "--db",
        db_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "sweep failed: {}", String::from_utf8_lossy(&out.stderr));

    // The sealed manifest names the configs in index order — that is the
    // map from journal config indices to queryable governor names.
    let sub = std::fs::read(sweep_dir.join("submission.sub")).unwrap();
    let frames = decode_records(&sub);
    let manifest: SubmissionManifest = serde_json::from_str(
        std::str::from_utf8(&frames.records[0]).expect("manifest frame is UTF-8"),
    )
    .expect("manifest frame parses");
    assert_eq!(manifest.configs.len(), raw.len(), "study and sweep cover the same config grid");

    // 3. Differential check: every queried stat equals the value this
    //    test recomputed from the raw study samples.
    for (&config, truth) in &raw {
        let governor = &manifest.configs[config];
        let query = format!(
            "governor={governor}:stat=p50-lag,p90-lag,p95-lag,p99-lag,mean-lag,lags,reps,mean-energy"
        );
        let out = run(&["db", "query", "--db", db_dir.to_str().unwrap(), &query]);
        assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        let line = stdout.trim_end();
        assert_eq!(
            stdout.lines().count(),
            1,
            "one group per governor in a single-point sweep:\n{stdout}"
        );

        let energy_sum: u128 = truth.energies_uj.iter().map(|&v| u128::from(v)).sum();
        let expected = format!(
            "device={}:governor={}:workload=mini \
             p50-lag={} p90-lag={} p95-lag={} p99-lag={} mean-lag={} lags={} reps={} \
             mean-energy={:.3}mJ",
            manifest.device_model,
            governor,
            percentile_ms(&truth.lags_us, 0.50, 1_000),
            percentile_ms(&truth.lags_us, 0.90, 1_000),
            percentile_ms(&truth.lags_us, 0.95, 1_000),
            percentile_ms(&truth.lags_us, 0.99, 1_000),
            mean_ms(&truth.lags_us),
            truth.lags_us.len(),
            truth.reps,
            energy_sum as f64 / truth.energies_uj.len() as f64 / 1_000.0,
        );
        assert_eq!(line, expected, "governor {governor} diverged from the study journal");
    }

    for d in [&dir, &sweep_dir, &db_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}
