//! Repeatability: the property the whole methodology stands on.
//!
//! "These need to be repeatable without major deviations in order to
//! compare multiple executions" (§I-B). In simulation we can demand more
//! than the paper could: bit-identical repetition.

use interlag::core::experiment::{Lab, LabConfig};
use interlag::device::device::{CaptureMode, Device, DeviceConfig};
use interlag::device::dvfs::FixedGovernor;
use interlag::device::script::InteractionCategory;
use interlag::evdev::replay::{ReplayAgent, SendeventReplayer};
use interlag::evdev::time::SimDuration;
use interlag::governors::Ondemand;
use interlag::power::opp::Frequency;
use interlag::workloads::datasets::Dataset;
use interlag::workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn workload() -> Workload {
    let mut b = WorkloadBuilder::new(77);
    b.app_launch("launch", 600 * MCYCLES, 5, InteractionCategory::Common);
    b.think_ms(2_000, 3_000);
    for i in 0..3 {
        b.quick_tap(&format!("tap {i}"), 200 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(1_500, 2_500);
    }
    b.build("det", "determinism workload")
}

#[test]
fn identical_replays_are_bit_identical() {
    let w = workload();
    let trace = w.script.record_trace();
    let device = Device::new(DeviceConfig::default());
    let run = |gov_mhz: u32| {
        let mut gov = FixedGovernor::new(Frequency::from_mhz(gov_mhz));
        device
            .run(&w.script, ReplayAgent::new(trace.clone()), &mut gov, w.run_until())
            .expect("clean run")
    };
    let a = run(960);
    let b = run(960);
    assert_eq!(a.interactions, b.interactions);
    assert_eq!(a.activity, b.activity);
    let (va, vb) = (a.video.unwrap(), b.video.unwrap());
    assert_eq!(va.len(), vb.len());
    for (x, y) in va.iter().zip(vb.iter()) {
        assert_eq!(x.time, y.time);
        assert_eq!(x.buf.as_ref(), y.buf.as_ref());
    }
}

#[test]
fn governor_runs_are_also_deterministic() {
    let w = workload();
    let trace = w.script.record_trace();
    let device = Device::new(DeviceConfig::default());
    let run = || {
        let mut gov = Ondemand::default();
        device
            .run(&w.script, ReplayAgent::new(trace.clone()), &mut gov, w.run_until())
            .expect("clean run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.activity, b.activity);
    assert_eq!(a.interactions, b.interactions);
}

#[test]
fn dataset_builds_and_their_traces_are_reproducible() {
    for ds in [Dataset::D01, Dataset::D05] {
        let a = ds.build();
        let b = ds.build();
        assert_eq!(a.script, b.script);
        assert_eq!(a.script.record_trace(), b.script.record_trace());
    }
}

#[test]
fn getevent_text_reimport_reproduces_the_execution() {
    // Export a trace to text (as if recorded on real hardware), parse it
    // back, and verify the replayed execution is identical.
    let w = workload();
    let trace = w.script.record_trace();
    let text = trace.to_getevent_text();
    let reimported: interlag::evdev::trace::EventTrace = text.parse().expect("parses");

    let device = Device::new(DeviceConfig::default());
    let mut gov_a = FixedGovernor::new(Frequency::from_mhz(960));
    let a = device
        .run(&w.script, ReplayAgent::new(trace), &mut gov_a, w.run_until())
        .expect("clean run");
    let mut gov_b = FixedGovernor::new(Frequency::from_mhz(960));
    let b = device
        .run(&w.script, ReplayAgent::new(reimported), &mut gov_b, w.run_until())
        .expect("clean run");
    assert_eq!(a.interactions, b.interactions);
    assert_eq!(a.activity, b.activity);
}

#[test]
fn sendevent_replay_perturbs_measured_lags() {
    // The end-to-end consequence of inaccurate replay: lags measured from
    // a sendevent-driven execution differ from the accurate ones.
    let w = workload();
    let trace = w.script.record_trace();
    let config = DeviceConfig { capture: CaptureMode::None, ..Default::default() };
    let device = Device::new(config);

    let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
    let accurate = device
        .run(&w.script, ReplayAgent::new(trace.clone()), &mut gov, w.run_until())
        .expect("clean run");
    let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
    let smeared = device
        .run(&w.script, SendeventReplayer::new(trace), &mut gov, w.run_until())
        .expect("clean run");

    // Every interaction still triggers (order is preserved)…
    assert_eq!(
        accurate.interactions.iter().filter(|r| r.triggered).count(),
        smeared.interactions.iter().filter(|r| r.triggered).count()
    );
    // …but input timestamps drifted.
    let drift: Vec<SimDuration> = accurate
        .interactions
        .iter()
        .zip(&smeared.interactions)
        .map(|(a, s)| s.input_time.saturating_since(a.input_time))
        .collect();
    assert!(drift.iter().any(|d| *d > SimDuration::from_millis(5)), "{drift:?}");
}

#[test]
fn study_results_are_reproducible_for_equal_seeds() {
    let lab = Lab::new(LabConfig { reps: 1, ..Default::default() });
    let w = workload();
    let a = lab.study(&w).expect("study");
    let b = lab.study(&w).expect("study");
    for (ca, cb) in a.all_configs().zip(b.all_configs()) {
        assert_eq!(ca.name, cb.name);
        assert_eq!(ca.reps[0].profile, cb.reps[0].profile);
        assert_eq!(ca.reps[0].dynamic_energy_mj, cb.reps[0].dynamic_energy_mj);
        assert_eq!(ca.reps[0].irritation, cb.reps[0].irritation);
    }
}
