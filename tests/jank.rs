//! End-to-end jank measurement: the §VI future-work workload type, from
//! scripted game session through video capture to dropped-frame analysis.

use interlag::core::experiment::{Lab, LabConfig};
use interlag::core::jank::measure_jank;
use interlag::device::dvfs::FixedGovernor;
use interlag::device::render::SPINNER_FRAME_PERIOD;
use interlag::evdev::time::SimDuration;
use interlag::governors::{Conservative, Ondemand};
use interlag::power::opp::Frequency;
use interlag::workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn game_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0x9a3e);
    b.think_ms(500, 600);
    // 40 Mcycles per animation frame: smooth above ~0.5 GHz, janky below.
    b.game_session("play level", SimDuration::from_secs(10), 40 * MCYCLES);
    b.think_ms(1_000, 1_500);
    b.build("game", "jank workload")
}

fn jank_under(gov: &mut dyn interlag::device::dvfs::Governor) -> f64 {
    let lab = Lab::new(LabConfig::default());
    let w = game_workload();
    let run = lab.run(&w, w.script.record_trace(), gov).expect("clean run");
    let video = run.video.as_ref().expect("capture on");
    // The animation window: from the game scene appearing to the session
    // end (the game interaction's service point).
    let rec = &run.interactions[0];
    let start = rec.input_time + SimDuration::from_millis(300);
    let end = rec.service_time.expect("game ends") - SimDuration::from_millis(100);
    let region = lab.device().config().screen.spinner_rect;
    let report = measure_jank(video, start, end, region, SPINNER_FRAME_PERIOD);
    assert!(report.expected_frames > 50, "window long enough");
    report.jank_ratio()
}

#[test]
fn low_frequencies_drop_frames_high_frequencies_do_not() {
    let mut slow = FixedGovernor::new(Frequency::from_mhz(300));
    let mut fast = FixedGovernor::new(Frequency::from_mhz(2_150));
    let jank_slow = jank_under(&mut slow);
    let jank_fast = jank_under(&mut fast);
    assert!(jank_slow > 0.25, "0.30 GHz must stutter (jank {jank_slow:.2})");
    assert!(jank_fast < 0.05, "2.15 GHz must be smooth (jank {jank_fast:.2})");
}

#[test]
fn load_driven_governors_ramp_up_and_stay_smooth() {
    // The sustained per-frame load saturates the core at low clocks, so a
    // load-driven governor ramps up and the animation smooths out after
    // the first moments — conservative takes visibly longer than ondemand.
    let mut ond = Ondemand::default();
    let jank_ond = jank_under(&mut ond);
    assert!(jank_ond < 0.15, "ondemand should be mostly smooth (jank {jank_ond:.2})");

    let mut cons = Conservative::default();
    let jank_cons = jank_under(&mut cons);
    assert!(jank_cons >= jank_ond, "conservative ramps slower: {jank_cons:.2} vs {jank_ond:.2}");
}

#[test]
fn game_session_does_not_disturb_lag_measurement() {
    // The game's trigger tap is still an ordinary interaction: annotation
    // and matching must work on the workload around it.
    let lab = Lab::new(LabConfig::default());
    let w = game_workload();
    let (db, stats, run) = lab.annotate_workload(&w).expect("annotate");
    assert_eq!(stats.unannotated, 0);
    let (profile, failures) = interlag::core::matcher::mark_up(
        run.video.as_ref().expect("video"),
        &run.lag_beginnings(),
        &db,
        "ref",
    );
    assert!(failures.is_empty(), "{failures:?}");
    assert_eq!(profile.len(), db.len());
}
