//! End-to-end TCP-transport orchestration against the real binary:
//! `interlag sweep --transport tcp` spawns real `interlag agent
//! --connect` child processes over loopback sockets — optionally through
//! the seeded chaos proxy — and must still print a report
//! **byte-identical** to the plain single-process `interlag study`. The
//! worker test is the host-to-host shape: a separately launched
//! `interlag agent --worker` process registers with a `--remote-agents`
//! supervisor and runs every shard it is assigned.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn interlag_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_interlag"))
}

fn run(args: &[&str]) -> Output {
    interlag_cmd().args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-nete2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single-process study report every TCP sweep must reproduce.
fn baseline() -> Vec<u8> {
    let out = run(&["study", "mini", "-r", "2"]);
    assert!(out.status.success(), "baseline study failed: {out:?}");
    assert!(!out.stdout.is_empty());
    out.stdout
}

#[test]
fn tcp_sweep_report_is_byte_identical_to_study() {
    let expected = baseline();
    for shards in ["2", "4"] {
        let dir = temp_dir(&format!("tcp-{shards}"));
        let out = run(&[
            "sweep",
            "mini",
            "-r",
            "2",
            "--shards",
            shards,
            "--transport",
            "tcp",
            "--journal-dir",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{shards} shards: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(out.stdout, expected, "{shards} shards diverged from the single-process study");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tcp_sweep_under_net_chaos_is_byte_identical_to_study() {
    let expected = baseline();
    // Three seeded schedules across fault families: partitions tear the
    // link mid-frame, reorder/delay scramble delivery. The session layer
    // must resume every cut from the ack high-water mark and the
    // assembler must re-serialise the rest — byte-identically.
    for (profile, seed) in [("partition", "0xc0ffee"), ("reorder", "7"), ("delay", "0x5eed")] {
        let dir = temp_dir(&format!("chaos-{profile}"));
        let out = run(&[
            "sweep",
            "mini",
            "-r",
            "2",
            "--shards",
            "4",
            "--transport",
            "tcp",
            "--net-chaos",
            &format!("{profile}@{seed}"),
            "--journal-dir",
            dir.to_str().unwrap(),
        ]);
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{profile}: sweep should absorb the chaos: {err}");
        assert_eq!(out.stdout, expected, "{profile} chaos diverged from the single-process study");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rejects_tcp_flags_without_tcp_transport() {
    let out = run(&["sweep", "mini", "--net-chaos", "partition@1"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["sweep", "mini", "--transport", "carrier-pigeon"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["sweep", "mini", "--transport", "tcp", "--net-chaos", "flood@1"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = run(&["agent", "mini", "--worker"]);
    assert_eq!(out.status.code(), Some(2), "worker without --connect: {out:?}");
}

/// Kills a child on drop so an assertion failure cannot leak processes.
struct Reaper(Option<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn external_worker_process_runs_a_remote_agents_sweep() {
    let expected = baseline();
    let dir = temp_dir("ext");
    // A fixed loopback port: the worker must be told where to dial, and
    // an ephemeral one is only printed to stderr. Derived from the test
    // process id to keep parallel test runs off each other's sockets.
    let port = 20000 + std::process::id() % 20000;
    let addr = format!("127.0.0.1:{port}");
    let sweep = interlag_cmd()
        .args(["sweep", "mini", "-r", "2", "--shards", "2", "--transport", "tcp"])
        .args(["--remote-agents", "--listen", &addr])
        .args(["--journal-dir", dir.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("sweep spawns");
    let mut sweep = Reaper(Some(sweep));
    std::thread::sleep(std::time::Duration::from_millis(300));
    let scratch = temp_dir("ext-scratch");
    let worker = interlag_cmd()
        .args(["agent", "mini", "--worker", "--connect", &addr])
        .args(["--scratch", scratch.to_str().unwrap()])
        .output()
        .expect("worker runs");
    assert!(worker.status.success(), "worker failed: {}", String::from_utf8_lossy(&worker.stderr));
    let out = sweep.0.take().expect("still running").wait_with_output().expect("sweep exits");
    assert!(out.status.success(), "sweep failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(out.stdout, expected, "external-worker sweep diverged");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}
