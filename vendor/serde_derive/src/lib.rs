//! Vendored, offline `serde_derive`: derives for the workspace's minimal
//! content-tree serde (see `vendor/serde`).
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched; this crate re-implements the two derive macros against the
//! reduced data model the vendored `serde` exposes (`Content`, a
//! JSON-like tree). It parses items directly from the raw token stream —
//! `syn`/`quote` are equally unavailable — which is tractable because the
//! workspace only derives on plain structs and enums without generics.
//!
//! Supported attribute subset: `#[serde(transparent)]` (a no-op, since
//! single-field structs already serialise as their inner value),
//! `#[serde(default)]` (missing field -> `Default::default()`), and
//! `#[serde(skip)]` (never serialised, always defaulted).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (or tuple index), plus attribute flags.
struct Field {
    /// Named-field name, or the decimal index for tuple fields.
    name: String,
    /// `true` for `#[serde(default)]`.
    default: bool,
    /// `true` for `#[serde(skip)]`.
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants; `Some((named, fields))` otherwise.
    fields: Option<(bool, Vec<Field>)>,
}

/// The parsed item a derive applies to.
enum Item {
    Struct { name: String, named: bool, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// --- parsing ---------------------------------------------------------------

/// Scans a `#[serde(...)]` attribute group body for a flag word.
fn serde_attr_flags(tokens: &[TokenTree], flags: &mut (bool, bool)) {
    // tokens is the content of the `[...]` group: `serde ( ... )`.
    let mut iter = tokens.iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    if let Some(TokenTree::Group(g)) = iter.next() {
        for t in g.stream() {
            if let TokenTree::Ident(i) = t {
                match i.to_string().as_str() {
                    "default" => flags.0 = true,
                    "skip" => flags.1 = true,
                    _ => {}
                }
            }
        }
    }
}

/// Consumes leading attributes from `toks[*pos]`, returning serde flags.
fn skip_attrs(toks: &[TokenTree], pos: &mut usize) -> (bool, bool) {
    let mut flags = (false, false);
    while *pos < toks.len() {
        match &toks[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    serde_attr_flags(&inner, &mut flags);
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
    flags
}

/// Skips a visibility modifier (`pub`, `pub(...)`).
fn skip_vis(toks: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = toks.get(*pos) {
        if i.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips a type (or expression) up to a top-level `,`, tracking `<...>`
/// depth so generic arguments survive.
fn skip_to_comma(toks: &[TokenTree], pos: &mut usize) {
    let mut angle = 0i32;
    while *pos < toks.len() {
        if let TokenTree::Punct(p) = &toks[*pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        let (default, skip) = skip_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        let Some(TokenTree::Ident(name)) = toks.get(pos) else { break };
        let name = name.to_string();
        pos += 1; // name
        pos += 1; // ':'
        skip_to_comma(&toks, &mut pos);
        pos += 1; // ','
        fields.push(Field { name, default, skip });
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    let mut index = 0usize;
    while pos < toks.len() {
        let (default, skip) = skip_attrs(&toks, &mut pos);
        skip_vis(&toks, &mut pos);
        if pos >= toks.len() {
            break;
        }
        skip_to_comma(&toks, &mut pos);
        pos += 1; // ','
        fields.push(Field { name: index.to_string(), default, skip });
        index += 1;
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        skip_attrs(&toks, &mut pos);
        let Some(TokenTree::Ident(name)) = toks.get(pos) else { break };
        let name = name.to_string();
        pos += 1;
        let fields = match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Some((true, parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Some((false, parse_tuple_fields(g)))
            }
            _ => None,
        };
        // Skip an explicit discriminant (`= expr`).
        if let Some(TokenTree::Punct(p)) = toks.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                skip_to_comma(&toks, &mut pos);
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&toks, &mut pos);
    skip_vis(&toks, &mut pos);
    let kind = match &toks[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    pos += 1;
    let name = match &toks[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct { name, named: true, fields: parse_named_fields(g) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct { name, named: false, fields: parse_tuple_fields(g) }
            }
            _ => Item::Struct { name, named: true, fields: Vec::new() }, // unit struct
        },
        "enum" => match toks.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g) }
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}`"),
    }
}

// --- code generation -------------------------------------------------------

const C: &str = "::serde::content::Content";

/// Expression serialising `expr` (a reference) to a `Content`.
fn ser(expr: &str) -> String {
    format!("::serde::Serialize::to_content({expr})")
}

/// Expression deserialising `expr` (a `&Content`) — propagates errors.
fn de(expr: &str) -> String {
    format!("::serde::Deserialize::from_content({expr})?")
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, named, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let body = if live.len() == 1 && fields.len() == 1 {
                // Newtype / single-field structs serialise transparently.
                let access =
                    if *named { format!("&self.{}", live[0].name) } else { "&self.0".to_string() };
                ser(&access)
            } else if *named {
                let entries: Vec<String> = live
                    .iter()
                    .map(|f| {
                        format!(
                            "({C}::Str(::std::string::String::from(\"{n}\")), {v})",
                            n = f.name,
                            v = ser(&format!("&self.{}", f.name))
                        )
                    })
                    .collect();
                format!("{C}::Map(::std::vec![{}])", entries.join(", "))
            } else {
                let entries: Vec<String> =
                    live.iter().map(|f| ser(&format!("&self.{}", f.name))).collect();
                format!("{C}::Seq(::std::vec![{}])", entries.join(", "))
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vn} => {C}::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Some((true, fields)) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "({C}::Str(::std::string::String::from(\"{n}\")), {v})",
                                        n = f.name,
                                        v = ser(&f.name)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {C}::Map(::std::vec![({C}::Str(::std::string::String::from(\"{vn}\")), {C}::Map(::std::vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                        Some((false, fields)) => {
                            let binds: Vec<String> =
                                (0..fields.len()).map(|i| format!("f{i}")).collect();
                            let payload = if fields.len() == 1 {
                                ser("f0")
                            } else {
                                let items: Vec<String> =
                                    binds.iter().map(|b| ser(b)).collect();
                                format!("{C}::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => {C}::Map(::std::vec![({C}::Str(::std::string::String::from(\"{vn}\")), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name.clone(), format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!("impl ::serde::Serialize for {name} {{ fn to_content(&self) -> {C} {{ {body} }} }}")
}

/// Field-extraction expression for named fields inside a map binding `m`.
fn de_named_field(f: &Field) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default()", f.name);
    }
    let fetch = format!("::serde::content::map_get(m, \"{}\")", f.name);
    if f.default {
        format!(
            "{n}: match {fetch} {{ Some(v) => {v}, None => ::core::default::Default::default() }}",
            n = f.name,
            v = de("v")
        )
    } else {
        format!(
            "{n}: {v}",
            n = f.name,
            v = de(&format!(
                "{fetch}.ok_or_else(|| ::serde::de::Error::new(\"missing field `{}`\"))?",
                f.name
            ))
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, named, fields } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let body = if live.len() == 1 && fields.len() == 1 {
                if *named {
                    format!("Ok({name} {{ {n}: {v} }})", n = live[0].name, v = de("c"))
                } else {
                    format!("Ok({name}({v}))", v = de("c"))
                }
            } else if *named {
                let inits: Vec<String> = fields.iter().map(de_named_field).collect();
                format!(
                    "let m = c.as_map().ok_or_else(|| ::serde::de::Error::new(\"expected map for struct {name}\"))?; Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        if f.skip {
                            "::core::default::Default::default()".to_string()
                        } else {
                            de(&format!(
                                "s.get({i}).ok_or_else(|| ::serde::de::Error::new(\"short tuple for {name}\"))?"
                            ))
                        }
                    })
                    .collect();
                format!(
                    "let s = c.as_seq().ok_or_else(|| ::serde::de::Error::new(\"expected seq for struct {name}\"))?; Ok({name}({}))",
                    inits.join(", ")
                )
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let (named, fields) = v.fields.as_ref()?;
                    let body = if *named {
                        let inits: Vec<String> =
                            fields.iter().map(de_named_field).collect();
                        format!(
                            "let m = payload.as_map().ok_or_else(|| ::serde::de::Error::new(\"expected map for variant {vn}\"))?; return Ok({name}::{vn} {{ {} }});",
                            inits.join(", ")
                        )
                    } else if fields.len() == 1 {
                        format!("return Ok({name}::{vn}({v}));", v = de("payload"))
                    } else {
                        let inits: Vec<String> = (0..fields.len())
                            .map(|i| {
                                de(&format!(
                                    "s.get({i}).ok_or_else(|| ::serde::de::Error::new(\"short tuple for variant {vn}\"))?"
                                ))
                            })
                            .collect();
                        format!(
                            "let s = payload.as_seq().ok_or_else(|| ::serde::de::Error::new(\"expected seq for variant {vn}\"))?; return Ok({name}::{vn}({}));",
                            inits.join(", ")
                        )
                    };
                    Some(format!("\"{vn}\" => {{ {body} }}"))
                })
                .collect();
            let body = format!(
                "if let Some(tag) = c.as_str() {{ match tag {{ {units} _ => {{}} }} }} \
                 if let Some((tag, payload)) = ::serde::content::as_variant(c) {{ match tag {{ {datas} _ => {{}} }} }} \
                 Err(::serde::de::Error::new(\"unknown variant for enum {name}\"))",
                units = unit_arms.join(" "),
                datas = data_arms.join(" ")
            );
            (name.clone(), body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_content(c: &{C}) -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }} }}"
    )
}
