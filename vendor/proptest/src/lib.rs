//! Vendored, offline minimal `proptest`.
//!
//! The build environment has no network access, so the real proptest
//! cannot be fetched. This stub keeps the API surface the workspace's
//! property tests use — `proptest!`, `Strategy`, `prop_map`, `Just`,
//! `prop_oneof!`, `prop::collection::vec`, range strategies,
//! `proptest::num::<ty>::ANY`, and the `prop_assert*` macros — on top of
//! a deterministic SplitMix64 generator. There is no shrinking: a failing
//! case reports its case number and seed so it can be replayed exactly
//! (the generator is seeded from the test name, so reruns are stable).
//!
//! Case count defaults to 64 and can be overridden with
//! `PROPTEST_CASES`.

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES`,
/// default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

pub mod test_runner {
    //! The deterministic RNG and failure plumbing behind `proptest!`.

    /// Error produced by a failing `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64: tiny, fast, and plenty random for test generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator deterministically from a label (the test
        /// name) and a case index.
        pub fn deterministic(label: &str, case: u64) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// Generates random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    let v = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (lo + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    }

    /// Full-range integer strategy (`proptest::num::<ty>::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyInt<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod num {
    //! Per-type `ANY` strategies, as `proptest::num::u64::ANY`.

    macro_rules! any_mod {
        ($($m:ident),*) => {$(
            #[allow(non_upper_case_globals)]
            pub mod $m {
                use crate::strategy::AnyInt;
                /// Uniform over the whole type.
                pub const ANY: AnyInt<$m> = AnyInt(std::marker::PhantomData);
            }
        )*};
    }
    any_mod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path used in strategy expressions.
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Runs the body of one `proptest!`-generated test across all cases.
/// Used by the macro; not part of the public API surface upstream has.
pub fn run_cases(
    name: &str,
    mut case: impl FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    let n = cases();
    for i in 0..n {
        let mut rng = test_runner::TestRng::deterministic(name, i as u64);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {i}/{n}: {e} (deterministic; rerun reproduces)"
            );
        }
    }
}

/// The main property-test macro: runs each `fn name(arg in strategy, ...)`
/// body over [`cases`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts a condition, failing the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Asserts equality, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}): {}",
                stringify!($a), stringify!($b), a, format!($($fmt)*)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("t", 0);
        let mut b = TestRng::deterministic("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in 10u64..=20, z in -5i32..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0u8..4, 1usize..5), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((1..5).contains(b));
            }
        }

        #[test]
        fn oneof_picks_from_options(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }
}
