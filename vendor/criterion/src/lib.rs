//! Vendored, offline minimal `criterion`.
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. This stub keeps the workspace's bench targets
//! compiling and producing useful wall-clock numbers: `Criterion`,
//! `benchmark_group`, `Throughput::Elements`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then run for
//! `sample_size` samples; a sample times enough iterations to cover
//! ~`CRITERION_SAMPLE_MS` (default 20) milliseconds. The median sample
//! is reported, plus throughput in elements/second when a
//! [`Throughput`] was set.

use std::hint;
use std::time::{Duration, Instant};

/// Re-exported under criterion's name; inlined to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Target milliseconds per sample (`CRITERION_SAMPLE_MS`, default 20).
fn sample_ms() -> u64 {
    std::env::var("CRITERION_SAMPLE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Builder-style no-op kept for upstream signature compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup { _parent: self, name, throughput: None, sample_size: 10 }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, None, 10, f);
        self
    }

    /// No-op: the stub has no persistent reports to finalise.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples (upstream minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Closes the group (report already printed per-bench).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; drives iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times batched runs with a per-batch setup closure (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint (ignored by the stub's measurement model).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    // Warm-up: one iteration, also used to scale iterations per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(sample_ms());
    let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_nanos[per_iter_nanos.len() / 2];

    let time = format_nanos(median);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * 1e9 / median;
            eprintln!("  {name:<40} {time:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * 1e9 / median;
            eprintln!("  {name:<40} {time:>12}/iter  {:>11.1} MiB/s", rate / (1 << 20) as f64);
        }
        None => eprintln!("  {name:<40} {time:>12}/iter"),
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function list, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg.configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4)).sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn nanos_format() {
        assert_eq!(format_nanos(12.34), "12.3 ns");
        assert_eq!(format_nanos(12_340.0), "12.34 us");
        assert!(format_nanos(2.5e9).ends_with(" s"));
    }
}
