//! Vendored, offline minimal `serde`.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched. This crate keeps the workspace's public surface — the
//! `Serialize`/`Deserialize` traits, the derives, `de::DeserializeOwned`
//! — but replaces serde's streaming architecture with a small JSON-like
//! content tree ([`content::Content`]): serialising builds the tree,
//! deserialising reads it back. The vendored `serde_json` renders that
//! tree to JSON text and parses it back, which is all the workspace needs
//! (artifact round-trips between machines).
//!
//! The `derive` and `rc` cargo features exist for manifest compatibility;
//! derives are always available and `Arc`/`Rc` impls are always on.

pub use serde_derive::{Deserialize as DeserializeDerive, Serialize as SerializeDerive};

// Re-export the derive macros under the trait names, as `features =
// ["derive"]` does upstream. The traits themselves live below; Rust
// resolves `#[derive(Serialize)]` to the macro and `impl Serialize` to
// the trait through separate namespaces.
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

pub mod content {
    //! The reduced data model every value serialises into.

    /// A JSON-like tree: the entire serde data model of this stub.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// Null / `Option::None`.
        Null,
        /// Boolean.
        Bool(bool),
        /// Unsigned integer.
        U64(u64),
        /// Signed integer.
        I64(i64),
        /// Floating point.
        F64(f64),
        /// String (also enum unit variants).
        Str(String),
        /// Sequence (vectors, tuples, tuple structs).
        Seq(Vec<Content>),
        /// Key-value pairs (structs, maps, data-carrying enum variants).
        Map(Vec<(Content, Content)>),
    }

    impl Content {
        /// The map entries, if this is a map.
        pub fn as_map(&self) -> Option<&[(Content, Content)]> {
            match self {
                Content::Map(m) => Some(m),
                _ => None,
            }
        }

        /// The sequence elements, if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Content]> {
            match self {
                Content::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Content::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Looks up a string key in struct-style map content.
    pub fn map_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
        entries.iter().find_map(|(k, v)| match k {
            Content::Str(s) if s == key => Some(v),
            _ => None,
        })
    }

    /// Interprets content as an externally-tagged enum variant:
    /// a single-entry map `{ variant: payload }`.
    pub fn as_variant(c: &Content) -> Option<(&str, &Content)> {
        match c {
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(tag), payload) => Some((tag.as_str(), payload)),
                _ => None,
            },
            _ => None,
        }
    }
}

pub mod de {
    //! Deserialisation support types.

    use super::content::Content;

    /// The single error type of the stub.
    #[derive(Debug, Clone)]
    pub struct Error(String);

    impl Error {
        /// Creates an error with a message.
        pub fn new(msg: impl Into<String>) -> Self {
            Error(msg.into())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Mirror of upstream's lifetime-free convenience bound.
    pub trait DeserializeOwned: Sized {
        /// Reconstructs a value from its content tree.
        fn deserialize_content(c: &Content) -> Result<Self, Error>;
    }

    impl<T: super::Deserialize> DeserializeOwned for T {
        fn deserialize_content(c: &Content) -> Result<Self, Error> {
            T::from_content(c)
        }
    }

    pub use super::Deserialize;
}

pub mod ser {
    //! Serialisation support types (errors never occur in the stub).
    pub use super::Serialize;
}

/// Serialise into the [`content::Content`] tree.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> content::Content;
}

/// Deserialise from the [`content::Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from its content tree.
    fn from_content(c: &content::Content) -> Result<Self, de::Error>;
}

use content::Content;
use de::Error;

// --- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| Error::new(concat!(stringify!($t), " out of range")))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    _ => Err(Error::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .and_then(|s| {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(ch), None) => Some(ch),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::new("expected single-char string"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str().map(str::to_owned).ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(c).map(Into::into)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::new("expected tuple sequence"))?;
                Ok(($($t::from_content(
                    s.get($n).ok_or_else(|| Error::new("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(entries.map(|(k, v)| (k.to_content(), v.to_content())).collect())
}

/// Accepts either map content or a sequence of `[key, value]` pairs (the
/// JSON rendering of non-string-keyed maps).
fn map_entries(c: &Content) -> Result<Vec<(&Content, &Content)>, Error> {
    match c {
        Content::Map(m) => Ok(m.iter().map(|(k, v)| (k, v)).collect()),
        Content::Seq(s) => s
            .iter()
            .map(|pair| match pair.as_seq() {
                Some([k, v]) => Ok((k, v)),
                _ => Err(Error::new("expected [key, value] pair")),
            })
            .collect(),
        _ => Err(Error::new("expected map")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        map_entries(c)?
            .into_iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        map_entries(c)?
            .into_iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

// --- smart pointers (the `rc` feature upstream) ----------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Rc::new)
    }
}

#[cfg(test)]
mod tests {
    use super::content::Content;
    use super::*;

    #[test]
    fn primitives_roundtrip_through_content() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn collections_roundtrip_through_content() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(3usize, "x".to_string());
        assert_eq!(BTreeMap::<usize, String>::from_content(&m.to_content()).unwrap(), m);
        let t = (1u8, -2i64, "s".to_string());
        assert_eq!(<(u8, i64, String)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn arc_values_roundtrip() {
        let a = Arc::new(vec![5u8, 6]);
        let c = a.to_content();
        assert_eq!(Arc::<Vec<u8>>::from_content(&c).unwrap(), a);
    }
}
