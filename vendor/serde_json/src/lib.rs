//! Vendored, offline `serde_json`: renders the minimal serde's content
//! tree ([`serde::content::Content`]) to JSON text and parses it back.
//!
//! String-keyed maps (structs, enum variants) become JSON objects;
//! maps with non-string keys become arrays of `[key, value]` pairs, which
//! the deserialisation side of the vendored serde accepts transparently.
//! Only what the workspace needs is provided: [`to_string`],
//! [`to_string_pretty`] (same output) and [`from_str`].

use serde::content::Content;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Errors from serialising or parsing JSON text.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Stub `Result` alias matching upstream's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises a value to JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialises a value to JSON text (no pretty-printing in the stub).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize_content(&content)?)
}

// --- writer ----------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            let all_str = entries.iter().all(|(k, _)| matches!(k, Content::Str(_)));
            if all_str {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_content(k, out);
                    out.push(':');
                    write_content(v, out);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_content(k, out);
                    out.push(',');
                    write_content(v, out);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        if self.literal("null") {
            return Ok(Content::Null);
        }
        if self.literal("true") {
            return Ok(Content::Bool(true));
        }
        if self.literal("false") {
            return Ok(Content::Bool(false));
        }
        match self.peek() {
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-scan from the byte for correct UTF-8 handling.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

// --- dynamic values ---------------------------------------------------------

/// A dynamically-typed JSON value, the stub's analogue of upstream
/// `serde_json::Value`. Obtained with `from_str::<Value>(..)`; navigated
/// with indexing (`doc["traceEvents"][0]["name"]`), which — like upstream —
/// returns [`Value::Null`] for missing keys rather than panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`, and the result of indexing a missing key.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as the parser produced it).
    Number(Content),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(_) | Content::I64(_) | Content::F64(_) => Value::Number(c.clone()),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Content::Str(s) => s.clone(),
                            other => format!("{other:?}"),
                        };
                        (key, Value::from_content(v))
                    })
                    .collect(),
            ),
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Content::I64(v)) => Some(*v),
            Value::Number(Content::U64(v)) => i64::try_from(*v).ok(),
            Value::Number(Content::F64(v)) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// `true` for any JSON number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(c) => {
                let mut out = String::new();
                write_content(c, &mut out);
                f.write_str(&out)
            }
            Value::String(s) => {
                let mut out = String::new();
                write_string(s, &mut out);
                f.write_str(&out)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_string(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl serde::de::DeserializeOwned for Value {
    fn deserialize_content(c: &Content) -> std::result::Result<Self, serde::de::Error> {
        Ok(Value::from_content(c))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>(&to_string(&-5i64).unwrap()).unwrap(), -5);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64).unwrap()).unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        let s = "line\n\"quoted\" \\ tab\t".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(7usize, vec![1u8]);
        m.insert(9, vec![2, 3]);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<BTreeMap<usize, Vec<u8>>>(&json).unwrap(), m);
    }

    #[test]
    fn dynamic_values_navigate_like_upstream() {
        let doc: Value =
            from_str("{\"events\":[{\"ph\":\"X\",\"ts\":12,\"pid\":1},{\"ph\":\"M\"}]}").unwrap();
        let events = doc["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events[0]["ph"] == "X");
        assert!(events[0]["pid"] == 1i64);
        assert!(events[0]["ts"].is_number());
        assert_eq!(doc["missing"], Value::Null);
        assert_eq!(doc["events"][5]["ph"], Value::Null);
        assert_eq!(events[0]["ts"].as_i64(), Some(12));
    }

    #[test]
    fn string_keyed_maps_are_objects() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u8);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1}");
        assert_eq!(from_str::<BTreeMap<String, u8>>(&json).unwrap(), m);
    }
}
