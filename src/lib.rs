//! # interlag — measuring QoE of interactive workloads on mobile devices
//!
//! A full reproduction of *Seeker, Petoumenos, Leather & Franke:
//! "Measuring QoE of Interactive Workloads and Characterising Frequency
//! Governors on Mobile Devices", IISWC 2014* (DOI
//! 10.1109/IISWC.2014.6983040), built as a workspace of simulated
//! substrates plus the paper's analysis pipeline.
//!
//! This facade crate re-exports every member crate under one namespace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`evdev`] | `interlag-evdev` | Linux input events, traces, record/replay |
//! | [`video`] | `interlag-video` | frame buffers, masks, capture paths |
//! | [`power`] | `interlag-power` | OPPs, power model, energy metering |
//! | [`device`] | `interlag-device` | the simulated Android device |
//! | [`governors`] | `interlag-governors` | ondemand, conservative, interactive, plans |
//! | [`workloads`] | `interlag-workloads` | the five datasets + 24-hour recording |
//! | [`faults`] | `interlag-faults` | seeded fault injection at every stage boundary |
//! | [`obs`] | `interlag-obs` | spans, counters, histograms, trace/report exporters |
//! | [`journal`] | `interlag-journal` | checkpoint journal, atomic writes, watchdog tokens |
//! | [`core`] | `interlag-core` | suggester, matcher, irritation metric, oracle, lab |
//! | [`orchestrator`] | `interlag-orchestrator` | sharded sweeps: agents, supervisor, byte-stable merge |
//! | [`db`] | `interlag-db` | fleet results database: submission store, sketch aggregates, queries |
//!
//! # Quickstart
//!
//! ```
//! use interlag::core::experiment::Lab;
//! use interlag::device::script::InteractionCategory;
//! use interlag::workloads::gen::{WorkloadBuilder, MCYCLES};
//!
//! // Record a tiny session…
//! let mut b = WorkloadBuilder::new(1);
//! b.app_launch("open app", 250 * MCYCLES, 4, InteractionCategory::Common);
//! b.think_ms(1_500, 2_500);
//! b.quick_tap("tap", 90 * MCYCLES, InteractionCategory::SimpleFrequent);
//! let workload = b.build("hello", "quickstart workload");
//!
//! // …and run the paper's whole §III study on it.
//! let lab = Lab::with_defaults();
//! let study = lab.study(&workload).expect("study");
//! let ondemand = study.config("ondemand").unwrap();
//! println!(
//!     "ondemand: {:.2}× oracle energy, {} irritation",
//!     study.energy_normalised(ondemand),
//!     ondemand.mean_irritation(),
//! );
//! ```

pub use interlag_core as core;
pub use interlag_db as db;
pub use interlag_device as device;
pub use interlag_evdev as evdev;
pub use interlag_faults as faults;
pub use interlag_governors as governors;
pub use interlag_journal as journal;
pub use interlag_obs as obs;
pub use interlag_orchestrator as orchestrator;
pub use interlag_power as power;
pub use interlag_video as video;
pub use interlag_workloads as workloads;
