//! `interlag` — command-line front end for the reproduction.
//!
//! ```text
//! interlag datasets                          list the study's workloads
//! interlag record <DS> [-o FILE]             write a dataset's getevent trace
//! interlag classify <FILE>                   classify a getevent trace
//! interlag replay <DS> -g <GOVERNOR>         one run: lags + energy
//! interlag study <DS> [-r REPS] [--csv DIR] [--trace FILE]
//!                    [--events FILE] [--strict]
//!                    [--journal FILE] [--resume]  the full §III study
//! interlag oracle <DS>                       the oracle's per-lag decisions
//! interlag sweep <DS> [-r REPS] [--shards N] [--journal-dir DIR]
//!                     [--retry-budget N] [--heartbeat-ms MS]
//!                     [--watchdog-ms MS]       the study, sharded across
//!                                              supervised agent processes
//! interlag sweep <DS> --transport tcp [--listen ADDR] [--remote-agents]
//!                     [--net-chaos PROFILE@SEED]  the same sweep over TCP
//!                                              sessions with lease fencing
//! interlag agent <DS> -r REPS --shard S --of N --stage STAGE
//!                     --journal FILE           one shard (spawned by sweep)
//! interlag agent <DS> --worker --connect ADDR [--scratch DIR]
//!                                              a self-registering remote
//!                                              worker for a TCP sweep
//! interlag tune <DS> '<GROUP>' [--workers N] [--shards N]
//!                    [--csv] [--out DIR]       score a governor-tunable grid
//!                                              against the oracle; Pareto
//!                                              frontier, byte-stable at any
//!                                              worker/shard count
//! interlag db ingest --db DIR <ARTIFACT>...    fold sealed submissions in
//! interlag db query --db DIR '<GROUP>'         query the aggregates
//! interlag db export --db DIR [--markdown]     render the whole database
//! ```
//!
//! Datasets: `01 02 03 04 05 24hour mini`. Governors: `ondemand
//! conservative interactive schedutil performance powersave` or a
//! frequency like `0.96GHz`. Property groups (`sweep --matrix`, `db
//! query`) use `key=val:key=val,val2` with `k-min/k-max/k-intvs`
//! interval expansion.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error,
//! `3` corrupt dataset, `4` study resumed but some repetitions remain
//! timed out or abandoned, `5` sweep completed degraded (some shards
//! were abandoned; their repetitions carry `Abandoned` causes), `6` db
//! ingest rejected (quarantined or duplicate) submissions, `7` a TCP
//! agent's lease epoch was fenced (a newer attempt superseded it), `8` a
//! TCP agent exhausted its reconnect budget (link dead; the supervisor's
//! local retry path takes over).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use interlag::core::checkpoint::{study_fingerprint, StudyJournal};
use interlag::core::experiment::StudyScope;
use interlag::core::experiment::{Lab, LabConfig, StudyOptions, SweepStage};
use interlag::core::ingest::{load_trace_bytes, IngestMode, IngestReport};
use interlag::core::propgroup::PropGroup;
use interlag::core::report::{oracle_csv, profile_csv, study_csv, study_markdown_with_ingest};
use interlag::db::Db;
use interlag::device::dvfs::{FixedGovernor, Governor};
use interlag::evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag::evdev::trace::EventTrace;
use interlag::faults::{AgentSabotage, ChaosProxy, NetFaults, SabotageKind, TransportFaults};
use interlag::governors::{Conservative, Interactive, Ondemand, Performance, Powersave, Schedutil};
use interlag::journal::atomic_write;
use interlag::obs::{Counter, Recorder};
use interlag::orchestrator::agent::{AgentDeath, KillSwitch};
use interlag::orchestrator::{
    parse_stage, run_agent, run_sweep, run_tcp_agent, run_tcp_worker, run_tune, tune_csv,
    tune_markdown, AgentConfig, ClientPolicy, ProcessTransport, SweepConfig, TcpAgentMode,
    TcpClientOpts, TcpTransport, TuneConfig, TuneError, EXIT_FENCED, EXIT_LINK_DEAD,
};
use interlag::power::opp::Frequency;
use interlag::workloads::datasets::Dataset;
use interlag::workloads::gen::Workload;

/// Exit code for usage errors.
const EXIT_USAGE: u8 = 2;
/// Exit code for a dataset the loaders rejected as corrupt.
const EXIT_CORRUPT_DATASET: u8 = 3;
/// Exit code for a resumed study that completed with timed-out or
/// abandoned repetitions still in it.
const EXIT_RESUMED_DEGRADED: u8 = 4;
/// Exit code for a sharded sweep that completed but abandoned one or
/// more shards: the report is whole, some repetitions are synthesised
/// `Abandoned` placeholders rather than measurements.
const EXIT_SWEEP_DEGRADED: u8 = 5;
/// Exit code for a `db ingest` that rejected one or more submissions
/// (quarantined or duplicate); accepted artifacts were still folded.
const EXIT_INGEST_REJECTED: u8 = 6;

fn usage() -> ExitCode {
    eprintln!(
        "usage: interlag <command> [args]\n\
         \n\
         commands:\n\
         \x20 datasets                         list the study's workloads\n\
         \x20 record <DS> [-o FILE]            write a dataset's getevent trace\n\
         \x20 classify <FILE>                  classify a getevent trace\n\
         \x20 replay <DS> -g <GOVERNOR>        one run: lag + energy summary\n\
         \x20 study <DS> [-r REPS] [--csv DIR] [--trace FILE]\n\
         \x20            [--events FILE] [--strict] [--journal FILE] [--resume]\n\
         \x20                                  the full 18-configuration study;\n\
         \x20                                  --trace writes a Chrome trace (.json:\n\
         \x20                                  JSON text, else compact binary);\n\
         \x20                                  --events replays an ingested getevent log\n\
         \x20                                  (--strict fails fast on corrupt datasets,\n\
         \x20                                  the default salvages what parses);\n\
         \x20                                  --journal checkpoints each repetition\n\
         \x20                                  (.json/.jsonl: JSON lines, else binary),\n\
         \x20                                  --resume replays a prior journal\n\
         \x20 oracle <DS>                      the oracle's per-lag decisions\n\
         \x20 sweep <DS> [-r REPS] [--shards N] [--journal-dir DIR]\n\
         \x20            [--retry-budget N] [--heartbeat-ms MS] [--watchdog-ms MS]\n\
         \x20            [--markdown] [--sabotage KIND@CKPT:SHARD:ATTEMPT]\n\
         \x20            [--jitter-us US] [--matrix GROUP] [--db DIR]\n\
         \x20            [--transport process|tcp] [--listen ADDR]\n\
         \x20            [--remote-agents] [--net-chaos PROFILE@SEED]\n\
         \x20                                  the study, sharded across supervised\n\
         \x20                                  agent processes; exits 5 if any shard\n\
         \x20                                  was abandoned (degraded report);\n\
         \x20                                  --matrix expands a property group\n\
         \x20                                  (keys reps, jitter-us, shards) into one\n\
         \x20                                  sweep per point; --db ingests each\n\
         \x20                                  sweep's sealed submission artifact;\n\
         \x20                                  --transport tcp runs agents as epoch-\n\
         \x20                                  fenced TCP sessions (--listen, default\n\
         \x20                                  127.0.0.1:0; --remote-agents waits for\n\
         \x20                                  self-registering workers instead of\n\
         \x20                                  spawning local ones; --net-chaos fronts\n\
         \x20                                  the listener with a seeded fault proxy:\n\
         \x20                                  partition rst reorder duplicate delay storm)\n\
         \x20 agent <DS> -r REPS --shard S --of N --stage stage1|oracle\n\
         \x20            --journal FILE [--heartbeat-ms MS] [--sabotage KIND@CKPT]\n\
         \x20            [--jitter-us US] [--connect ADDR --epoch N --attempt N]\n\
         \x20                                  one shard of a sweep (spawned by sweep;\n\
         \x20                                  speaks framed messages on stdout, or as\n\
         \x20                                  a resumable TCP session with --connect)\n\
         \x20 agent <DS> --worker --connect ADDR [--scratch DIR] [--jitter-us US]\n\
         \x20                                  loop as a remote worker: register with a\n\
         \x20                                  --remote-agents sweep supervisor, run\n\
         \x20                                  assigned shards until drained\n\
         \x20 tune <DS> GROUP [--workers N] [--shards N] [--csv] [--out DIR]\n\
         \x20                                  score a governor-tunable grid against\n\
         \x20                                  the per-workload oracle, e.g.\n\
         \x20                                  governor=interactive:go-hispeed-load-min=60:\n\
         \x20                                  go-hispeed-load-max=95:go-hispeed-load-intvs=8\n\
         \x20                                  (fleet keys reps, jitter-us); prints the\n\
         \x20                                  Pareto frontier as Markdown (--csv for CSV),\n\
         \x20                                  --out writes both frontier.md and frontier.csv\n\
         \x20 db ingest --db DIR <ARTIFACT>... fold sealed submissions into the\n\
         \x20                                  results database (exit 6 if any were\n\
         \x20                                  quarantined or duplicates)\n\
         \x20 db query --db DIR GROUP          query aggregates, e.g.\n\
         \x20                                  governor=ondemand:device=sim14:stat=p95-lag\n\
         \x20 db export --db DIR [--markdown]  render the whole database (CSV default)\n\
         \n\
         datasets: 01 02 03 04 05 24hour mini\n\
         governors: ondemand conservative interactive schedutil performance powersave <freq>GHz\n\
         property groups: key=val:key=val,val2  (k-min=A:k-max=B:k-intvs=N expands)\n\
         exit codes: 0 ok, 1 failure, 2 usage, 3 corrupt dataset,\n\
         \x20           4 resumed study still has timed-out/abandoned reps,\n\
         \x20           5 sweep completed degraded (abandoned shards),\n\
         \x20           6 db ingest rejected submissions,\n\
         \x20           {EXIT_FENCED} tcp agent fenced (lease superseded by a newer attempt),\n\
         \x20           {EXIT_LINK_DEAD} tcp agent link dead (reconnect budget exhausted)"
    );
    ExitCode::from(EXIT_USAGE)
}

fn dataset(name: &str) -> Option<Dataset> {
    match name {
        "01" => Some(Dataset::D01),
        "02" => Some(Dataset::D02),
        "03" => Some(Dataset::D03),
        "04" => Some(Dataset::D04),
        "05" => Some(Dataset::D05),
        "24hour" | "24h" => Some(Dataset::Day24h),
        "mini" => Some(Dataset::Mini),
        _ => None,
    }
}

fn flag_value(args: &[String], names: &[&str]) -> Option<String> {
    args.iter().position(|a| names.contains(&a.as_str())).and_then(|i| args.get(i + 1)).cloned()
}

/// A numeric flag: absent is `Ok(None)`; present but malformed is a
/// usage rejection naming the flag and the offending text. This replaces
/// the old `parse().ok().unwrap_or(default)` idiom, which turned a typo
/// like `--reps abc` into a silent run with 1 repetition.
fn numeric_flag<T: std::str::FromStr>(
    args: &[String],
    names: &[&str],
) -> Result<Option<T>, ExitCode> {
    match flag_value(args, names) {
        None => Ok(None),
        Some(v) => match v.parse() {
            Ok(n) => Ok(Some(n)),
            Err(_) => {
                let flag = names.last().copied().unwrap_or("flag");
                eprintln!("interlag: {flag} wants a number, got {v:?}");
                Err(usage())
            }
        },
    }
}

/// `numeric_flag` with a default, early-returning the usage exit code on
/// a malformed value.
macro_rules! flag_or {
    ($args:expr, $names:expr, $default:expr) => {
        match numeric_flag($args, $names) {
            Ok(v) => v.unwrap_or($default),
            Err(code) => return code,
        }
    };
}

/// Optional `numeric_flag`, early-returning the usage exit code on a
/// malformed value.
macro_rules! flag_opt {
    ($args:expr, $names:expr) => {
        match numeric_flag($args, $names) {
            Ok(v) => v,
            Err(code) => return code,
        }
    };
}

fn governor_by_name(name: &str, lab: &Lab) -> Option<Box<dyn Governor>> {
    let table = &lab.device().config().opps;
    Some(match name {
        "ondemand" => Box::new(Ondemand::default()),
        "conservative" => Box::new(Conservative::default()),
        "interactive" => Box::new(Interactive::for_table(table)),
        "schedutil" => Box::new(Schedutil::default()),
        "performance" => Box::new(Performance),
        "powersave" => Box::new(Powersave),
        other => {
            let ghz: f64 = other.trim_end_matches("GHz").trim_end_matches("ghz").parse().ok()?;
            Box::new(FixedGovernor::new(Frequency::from_khz((ghz * 1e6) as u32)))
        }
    })
}

fn cmd_datasets() -> ExitCode {
    println!("{:<8} {:<52} {:>7} {:>8}", "dataset", "description", "inputs", "length");
    for ds in Dataset::TEN_MINUTE.iter().copied().chain([Dataset::Day24h, Dataset::Mini]) {
        let w = ds.build();
        println!(
            "{:<8} {:<52} {:>7} {:>7.0}s",
            w.name,
            w.description,
            w.script.interactions.len(),
            w.duration.as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_record(w: &Workload, out: Option<String>) -> ExitCode {
    let trace = w.script.record_trace();
    let text = trace.to_getevent_text();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("interlag: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events ({} bytes) to {path}", trace.len(), text.len());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_classify(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("interlag: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace: EventTrace = match text.parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("interlag: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = classify_trace(&trace, &ClassifierConfig::default());
    let counts = count_inputs(&inputs);
    println!(
        "{} raw events over {:.1} s -> {} inputs: {} taps, {} swipes, {} keys",
        trace.len(),
        trace.span().as_secs_f64(),
        counts.total(),
        counts.taps,
        counts.swipes,
        counts.keys
    );
    for i in &inputs {
        println!(
            "  {:>10.3}s {:?} at ({}, {}) travel {:.0}px hold {}",
            i.time.as_secs_f64(),
            i.class,
            i.pos.x,
            i.pos.y,
            i.travel,
            i.duration
        );
    }
    ExitCode::SUCCESS
}

fn cmd_replay(w: &Workload, gov_name: &str) -> ExitCode {
    let lab = Lab::new(LabConfig::default());
    let Some(mut gov) = governor_by_name(gov_name, &lab) else {
        eprintln!("interlag: unknown governor {gov_name:?}");
        return ExitCode::from(2);
    };
    let run = match lab.run(w, w.script.record_trace(), gov.as_mut()) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("interlag: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let energy = lab.meter().measure(&run.activity);
    let lags: Vec<f64> =
        run.interactions.iter().filter_map(|r| r.true_lag()).map(|l| l.as_millis_f64()).collect();
    let mean = if lags.is_empty() { 0.0 } else { lags.iter().sum::<f64>() / lags.len() as f64 };
    println!(
        "dataset {} under {}: {} interactions serviced, mean lag {:.0} ms, max {:.0} ms",
        w.name,
        gov_name,
        lags.len(),
        mean,
        lags.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "dynamic CPU energy {:.2} J; busy {:.1} s of {:.1} s",
        energy.dynamic_mj / 1_000.0,
        run.activity.busy_time().as_secs_f64(),
        run.activity.total_duration().as_secs_f64()
    );
    ExitCode::SUCCESS
}

/// Everything `interlag study` takes from the command line.
struct StudyArgs {
    reps: u32,
    csv_dir: Option<String>,
    markdown: bool,
    trace_out: Option<String>,
    /// Replay an externally recorded getevent log through the hardened
    /// loader instead of recording the trace from the script.
    events: Option<String>,
    /// Fail fast on the first dataset defect instead of salvaging.
    strict: bool,
    journal: Option<String>,
    resume: bool,
}

fn cmd_study(w: &Workload, args: StudyArgs) -> ExitCode {
    let mode = if args.strict { IngestMode::Strict } else { IngestMode::Salvage };
    let mut ingest = IngestReport::default();

    // The trace the study will replay: recorded from the script, or
    // loaded from disk through the hardened loader.
    let events_trace = match &args.events {
        None => None,
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("interlag: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match load_trace_bytes(&bytes, mode) {
                Ok((trace, report)) => {
                    ingest.merge(report);
                    Some(trace)
                }
                Err(e) => {
                    eprintln!("interlag: {path}: corrupt dataset: {e}");
                    return ExitCode::from(EXIT_CORRUPT_DATASET);
                }
            }
        }
    };
    if !ingest.is_clean() {
        eprintln!(
            "interlag: salvage mode dropped {} unparseable input(s); \
             re-run with --strict to fail instead",
            ingest.total_dropped()
        );
    }

    let obs = if args.trace_out.is_some() {
        interlag::obs::Recorder::enabled()
    } else {
        Default::default()
    };
    let lab_config = LabConfig { reps: args.reps, obs: obs.clone(), ..Default::default() };

    // The journal fingerprints the exact trace bytes the study replays
    // plus the result-affecting lab settings, so resuming against a
    // different dataset or configuration re-runs instead of splicing.
    let trace = events_trace.unwrap_or_else(|| w.script.record_trace());
    let journal = match &args.journal {
        None => None,
        Some(path) => {
            let fp = study_fingerprint(&trace.to_getevent_text(), &lab_config);
            let opened = if args.resume {
                StudyJournal::resume(path, fp)
            } else {
                StudyJournal::create(path, fp)
            };
            match opened {
                Ok(j) => {
                    if args.resume {
                        eprintln!(
                            "interlag: resuming from {path}: {} repetition(s) journalled, \
                             {} torn record(s) dropped, {} foreign record(s) ignored",
                            j.replayable(),
                            j.torn(),
                            j.foreign(),
                        );
                    }
                    Some(j)
                }
                Err(e) => {
                    eprintln!("interlag: cannot open journal {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let lab = Lab::new(lab_config);
    let options = StudyOptions { journal: journal.as_ref(), trace: Some(trace), scope: None };
    let study = match lab.study_with(w, options) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("interlag: study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(j) = &journal {
        if j.write_errors() > 0 {
            eprintln!(
                "interlag: warning: {} journal append(s) failed; \
                 the study completed but a resume may repeat work",
                j.write_errors()
            );
        }
    }

    if args.markdown {
        print!("{}", study_markdown_with_ingest(&study, &ingest));
        if args.trace_out.is_some() {
            print!("\n{}", obs.text_report());
        }
    } else {
        print!("{}", study_csv(&study));
    }
    if let Some(path) = &args.trace_out {
        // `.json` gets the Chrome trace-event text; any other extension
        // gets the compact CRC-framed binary form, convertible back to the
        // identical JSON with interlag_obs::binary_trace_to_chrome_json.
        let result = if path.ends_with(".json") {
            atomic_write(path, obs.chrome_trace_json())
        } else {
            atomic_write(path, obs.binary_trace())
        };
        if let Err(e) = result {
            eprintln!("interlag: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (load it in about:tracing or ui.perfetto.dev)");
    }
    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("interlag: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let files = [
            (format!("{dir}/study-{}.csv", w.name), study_csv(&study)),
            (format!("{dir}/oracle-{}.csv", w.name), oracle_csv(&study)),
        ];
        for (path, data) in files {
            if let Err(e) = atomic_write(&path, data) {
                eprintln!("interlag: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        for c in study.all_configs() {
            let path = format!("{dir}/profile-{}-{}.csv", w.name, c.name.replace(' ', ""));
            if atomic_write(&path, profile_csv(c)).is_ok() {
                eprintln!("wrote {path}");
            }
        }
    }

    // A resumed sweep that still carries holes must say so in its exit
    // code: downstream automation treats 4 as "reports written, but
    // incomplete — inspect before trusting aggregates".
    let degraded: usize = study.all_configs().map(|c| c.abandoned() + c.timed_out()).sum();
    if args.resume && degraded > 0 {
        eprintln!("interlag: resumed study still has {degraded} timed-out/abandoned repetition(s)");
        return ExitCode::from(EXIT_RESUMED_DEGRADED);
    }
    ExitCode::SUCCESS
}

/// Every occurrence of a repeatable flag's value (`--sabotage A --sabotage B`).
fn flag_values(args: &[String], names: &[&str]) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| names.contains(&a.as_str()))
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parses an agent-side sabotage flag: `crash@N`, `wedge@N`, `tear@N`.
fn parse_agent_sabotage(flag: &str) -> Option<SabotageKind> {
    let (kind, at) = flag.split_once('@')?;
    let at: u32 = at.parse().ok()?;
    match kind {
        "crash" => Some(SabotageKind::CrashAtCheckpoint(at)),
        "wedge" => Some(SabotageKind::WedgeAtCheckpoint(at)),
        "tear" => Some(SabotageKind::TearJournal(at)),
        _ => None,
    }
}

/// Parses a supervisor sabotage schedule entry,
/// `KIND@CKPT:SHARD:ATTEMPT` (e.g. `crash@2:0:0`; `ATTEMPT` may be `*`
/// for every attempt the retry budget allows). `kill` is the
/// supervisor-side kill at the Nth received checkpoint frame.
fn parse_sweep_sabotage(entry: &str, budget: u32) -> Option<Vec<AgentSabotage>> {
    let mut parts = entry.split(':');
    let kind_at = parts.next()?;
    let shard: u32 = parts.next()?.parse().ok()?;
    let attempt = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    let (kind, at) = kind_at.split_once('@')?;
    let at: u32 = at.parse().ok()?;
    let kind = match kind {
        "crash" => SabotageKind::CrashAtCheckpoint(at),
        "wedge" => SabotageKind::WedgeAtCheckpoint(at),
        "tear" => SabotageKind::TearJournal(at),
        "kill" => SabotageKind::KillAfterRecords(at),
        _ => return None,
    };
    let attempts: Vec<u32> =
        if attempt == "*" { (0..=budget).collect() } else { vec![attempt.parse().ok()?] };
    Some(attempts.into_iter().map(|attempt| AgentSabotage { shard, attempt, kind }).collect())
}

/// `interlag agent`: one shard of a sweep, normally spawned by
/// `interlag sweep`. Speaks framed [`interlag::orchestrator::WireMsg`]s
/// on stdout — or, with `--connect`, as a resumable epoch-fenced TCP
/// session; the shard journal on disk is the durable result either way.
/// With `--worker` it instead loops as a self-registering remote worker.
fn cmd_agent(w: &Workload, args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--worker") {
        return cmd_worker(w, args);
    }
    let reps = flag_or!(args, &["-r", "--reps"], 1);
    let Some(shard) = flag_opt!(args, &["--shard"]) else {
        eprintln!("interlag: agent requires --shard N");
        return usage();
    };
    let Some(of) = flag_opt!(args, &["--of"]) else {
        eprintln!("interlag: agent requires --of N");
        return usage();
    };
    let Some(stage) = flag_value(args, &["--stage"]).as_deref().and_then(parse_stage) else {
        eprintln!("interlag: agent requires --stage stage1|oracle");
        return usage();
    };
    let Some(journal) = flag_value(args, &["--journal"]) else {
        eprintln!("interlag: agent requires --journal FILE");
        return usage();
    };
    let heartbeat = flag_or!(args, &["--heartbeat-ms"], 1_000u64);
    let sabotage = match flag_value(args, &["--sabotage"]) {
        None => None,
        Some(flag) => match parse_agent_sabotage(&flag) {
            Some(kind) => Some(kind),
            None => {
                eprintln!("interlag: bad --sabotage {flag:?} (crash@N, wedge@N, tear@N)");
                return usage();
            }
        },
    };
    let mut lab = LabConfig { reps, ..Default::default() };
    if let Some(jitter) = flag_opt!(args, &["--jitter-us"]) {
        // Part of the study fingerprint: must match the supervisor's lab.
        lab.jitter_us = jitter;
    }
    let cfg = AgentConfig {
        workload: w.clone(),
        lab,
        scope: StudyScope { shard, of, stage },
        journal_path: journal.into(),
        heartbeat: Duration::from_millis(heartbeat),
        sabotage,
        abort_on_crash: true,
        kill: None,
    };
    let outcome = match flag_value(args, &["--connect"]) {
        None => run_agent(cfg, Box::new(std::io::stdout())),
        Some(addr) => {
            let opts = TcpClientOpts {
                addr,
                epoch: flag_or!(args, &["--epoch"], 1u64),
                attempt: flag_or!(args, &["--attempt"], 0u32),
                policy: client_policy(args),
            };
            run_tcp_agent(opts, cfg)
        }
    };
    match outcome {
        Ok(report) => {
            eprintln!(
                "interlag agent {shard}/{of}: {} repetition(s) journalled, {} write error(s)",
                report.completed, report.write_errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("interlag: agent failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Reconnect policy shared by `agent --connect` and `agent --worker`:
/// defaults unless overridden by `--retry-budget` / `--backoff-seed`.
fn client_policy(args: &[String]) -> ClientPolicy {
    let mut policy = ClientPolicy::default();
    if let Ok(Some(budget)) = numeric_flag(args, &["--retry-budget"]) {
        policy.retry_budget = budget;
    }
    if let Ok(Some(seed)) = numeric_flag(args, &["--backoff-seed"]) {
        policy.backoff_seed = seed;
    }
    policy
}

/// `interlag agent --worker`: connect to a `sweep --transport tcp
/// --remote-agents` supervisor, announce availability, and run every
/// assigned shard as its own epoch-fenced TCP session until drained.
fn cmd_worker(w: &Workload, args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, &["--connect"]) else {
        eprintln!("interlag: agent --worker requires --connect ADDR");
        return usage();
    };
    let scratch = flag_value(args, &["--scratch"]).unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("interlag-worker-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!("interlag: cannot create scratch dir {scratch}: {e}");
        return ExitCode::FAILURE;
    }
    let jitter = flag_opt!(args, &["--jitter-us"]);
    let policy = client_policy(args);
    // A supervisor kill (lease revoked, watchdog fired) unwinds the task
    // as `AgentDeath` by design; the worker catches it and goes back to
    // the queue. Keep the default hook's backtrace for real panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<AgentDeath>().is_none() {
            default_hook(info);
        }
    }));
    let outcome = run_tcp_worker(&addr, &policy, std::path::Path::new(&scratch), |task| {
        let mut lab = LabConfig { reps: task.reps, ..Default::default() };
        if let Some(us) = jitter {
            lab.jitter_us = us;
        }
        AgentConfig {
            workload: w.clone(),
            lab,
            scope: StudyScope {
                shard: task.shard,
                of: task.of,
                // An unknown stage name can only come from a foreign
                // supervisor; the fingerprint check kills the attempt
                // either way, so any valid stage serves as the probe.
                stage: parse_stage(&task.stage).unwrap_or(SweepStage::Stage1),
            },
            journal_path: task.journal_path.clone(),
            heartbeat: task.heartbeat,
            sabotage: None,
            abort_on_crash: false,
            kill: Some(std::sync::Arc::new(KillSwitch::new())),
        }
    });
    match outcome {
        Ok(tasks) => {
            eprintln!("interlag worker: drained after {tasks} task(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("interlag: worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--net-chaos PROFILE@SEED` (seed decimal or `0x` hex).
fn parse_net_chaos(text: &str) -> Option<(NetFaults, u64)> {
    let (name, seed) = text.split_once('@')?;
    let faults = NetFaults::profile(name)?;
    let seed = match seed.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok()?,
        None => seed.parse().ok()?,
    };
    Some((faults, seed))
}

/// Extracts one counter's value from a [`Recorder::text_report`]
/// Markdown table (`| name | value |`); `0` when absent.
fn counter_row(report: &str, name: &str) -> u64 {
    let needle = format!("| {name} | ");
    report
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|rest| rest.trim_end_matches(" |").trim().parse().ok())
        .unwrap_or(0)
}

/// One expanded matrix point's effective sweep knobs.
struct SweepPoint {
    reps: u32,
    jitter_us: Option<u64>,
    shards: u32,
    /// Canonical `key=value` bindings recorded in the sealed submission
    /// manifest (and printed as the point's label).
    props: Vec<String>,
    /// The canonical point text, `None` for an unparameterised sweep.
    label: Option<String>,
}

/// Expands `--matrix GROUP` into sweep points over the base knobs.
/// Supported keys: `reps`, `jitter-us`, `shards`.
fn sweep_points(matrix: Option<&str>, reps: u32, shards: u32) -> Result<Vec<SweepPoint>, String> {
    let Some(text) = matrix else {
        return Ok(vec![SweepPoint {
            reps,
            jitter_us: None,
            shards,
            props: Vec::new(),
            label: None,
        }]);
    };
    let group: PropGroup = text.parse().map_err(|e| format!("bad --matrix: {e}"))?;
    let points = group.expand().map_err(|e| format!("bad --matrix: {e}"))?;
    points
        .into_iter()
        .map(|point| {
            let mut p = SweepPoint {
                reps,
                jitter_us: None,
                shards,
                props: point.pairs().iter().map(|(k, v)| format!("{k}={v}")).collect(),
                label: Some(point.to_string()),
            };
            for (key, value) in point.pairs() {
                let parsed = value
                    .parse()
                    .map_err(|_| format!("bad --matrix: {key}={value} is not an unsigned integer"));
                match key.as_str() {
                    "reps" => p.reps = parsed? as u32,
                    "jitter-us" => p.jitter_us = Some(parsed?),
                    "shards" => p.shards = parsed? as u32,
                    other => {
                        return Err(format!(
                            "bad --matrix: unsupported key {other:?} (reps, jitter-us, shards)"
                        ))
                    }
                }
            }
            Ok(p)
        })
        .collect()
}

/// `interlag sweep`: the full study, partitioned across supervised
/// `interlag agent` child processes and merged byte-identically. With
/// `--matrix` the whole sweep runs once per expanded point; with `--db`
/// each point's sealed submission is folded into the results database.
fn cmd_sweep(w: &Workload, dataset: &str, args: &[String]) -> ExitCode {
    let reps = flag_or!(args, &["-r", "--reps"], 1);
    let shards = flag_or!(args, &["--shards"], 4u32);
    let journal_dir = flag_value(args, &["--journal-dir"]).unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("interlag-sweep-{}-{}", w.name, std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let matrix = flag_value(args, &["--matrix"]);
    let points = match sweep_points(matrix.as_deref(), reps, shards) {
        Ok(points) => points,
        Err(e) => {
            eprintln!("interlag: {e}");
            return usage();
        }
    };
    let base_jitter = flag_opt!(args, &["--jitter-us"]);
    let mut db = match flag_value(args, &["--db"]) {
        None => None,
        Some(dir) => match Db::open(&dir, Default::default()) {
            Ok(db) => Some(db),
            Err(e) => {
                eprintln!("interlag: cannot open db {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("interlag: cannot locate own binary to spawn agents: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tcp = match flag_value(args, &["--transport"]).as_deref() {
        None | Some("process") => false,
        Some("tcp") => true,
        Some(other) => {
            eprintln!("interlag: unknown --transport {other:?} (process, tcp)");
            return usage();
        }
    };
    let listen = flag_value(args, &["--listen"]).unwrap_or_else(|| "127.0.0.1:0".to_string());
    let remote_agents = args.iter().any(|a| a == "--remote-agents");
    let net_chaos = match flag_value(args, &["--net-chaos"]) {
        None => None,
        Some(text) => match parse_net_chaos(&text) {
            Some(parsed) => Some(parsed),
            None => {
                eprintln!(
                    "interlag: bad --net-chaos {text:?} (PROFILE@SEED, profiles \
                     partition rst reorder duplicate delay storm)"
                );
                return usage();
            }
        },
    };
    if !tcp && (remote_agents || net_chaos.is_some() || flag_value(args, &["--listen"]).is_some()) {
        eprintln!("interlag: --listen/--remote-agents/--net-chaos require --transport tcp");
        return usage();
    }

    let multi = points.len() > 1;
    let mut worst = ExitCode::SUCCESS;
    for (i, point) in points.iter().enumerate() {
        let dir = if multi { format!("{journal_dir}/point-{i}") } else { journal_dir.clone() };
        let mut cfg = SweepConfig::new(point.shards, dir);
        cfg.props = point.props.clone();
        if let Some(budget) = flag_opt!(args, &["--retry-budget"]) {
            cfg.retry_budget = budget;
        }
        let heartbeat = flag_or!(args, &["--heartbeat-ms"], 250u64);
        if let Some(ms) = flag_opt!(args, &["--watchdog-ms"]) {
            cfg.heartbeat_timeout = Duration::from_millis(ms);
        }
        cfg.heartbeat_timeout = cfg.heartbeat_timeout.max(Duration::from_millis(heartbeat * 4));
        let mut sabotage = Vec::new();
        for entry in flag_values(args, &["--sabotage"]) {
            match parse_sweep_sabotage(&entry, cfg.retry_budget) {
                Some(mut parsed) => sabotage.append(&mut parsed),
                None => {
                    eprintln!(
                        "interlag: bad --sabotage {entry:?} \
                         (KIND@CKPT:SHARD:ATTEMPT, kinds crash wedge tear kill, attempt may be *)"
                    );
                    return usage();
                }
            }
        }
        let jitter = point.jitter_us.or(base_jitter);
        let mut extra_args = Vec::new();
        if let Some(us) = jitter {
            extra_args.extend(["--jitter-us".to_string(), us.to_string()]);
        }
        let mut lab = LabConfig { reps: point.reps, ..Default::default() };
        if let Some(us) = jitter {
            lab.jitter_us = us;
        }
        let out = if tcp {
            if !sabotage.is_empty() {
                eprintln!("interlag: --sabotage is not supported with --transport tcp");
                return usage();
            }
            // The session counters (reconnects, fenced epochs, lease
            // expiries, injected faults) are the transport's whole
            // observable surface — record them unconditionally.
            lab.obs = Recorder::enabled();
            let mode = if remote_agents {
                TcpAgentMode::External { reps: point.reps }
            } else {
                TcpAgentMode::Spawn {
                    exe: exe.clone(),
                    dataset: dataset.to_string(),
                    reps: point.reps,
                    extra_args,
                }
            };
            let mut transport = match TcpTransport::bind(
                &listen,
                mode,
                Duration::from_millis(heartbeat),
                lab.obs.clone(),
            ) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("interlag: cannot bind {listen}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let proxy = match &net_chaos {
                None => None,
                Some((faults, seed)) => match ChaosProxy::spawn(transport.addr(), *faults, *seed) {
                    Ok(p) => {
                        transport.connect_addr = p.addr().to_string();
                        Some(p)
                    }
                    Err(e) => {
                        eprintln!("interlag: cannot spawn chaos proxy: {e}");
                        return ExitCode::FAILURE;
                    }
                },
            };
            if remote_agents {
                eprintln!(
                    "interlag sweep: waiting for workers on {} \
                     (run `interlag agent <DS> --worker --connect {}` on each host)",
                    transport.connect_addr, transport.connect_addr,
                );
            }
            let out = run_sweep(w, lab.clone(), &mut transport, &cfg);
            if let Some(p) = &proxy {
                lab.obs.count(Counter::NetFaultsInjected, p.injected().total());
            }
            let report = lab.obs.text_report();
            eprintln!(
                "interlag sweep: tcp transport: {} reconnect(s), {} lease expiry(ies), \
                 {} fenced record(s), {} fault(s) injected",
                counter_row(&report, "agent_reconnects"),
                counter_row(&report, "lease_expiries"),
                counter_row(&report, "fenced_epoch_records"),
                counter_row(&report, "net_faults_injected"),
            );
            out
        } else {
            let mut transport = ProcessTransport {
                exe: exe.clone(),
                dataset: dataset.to_string(),
                reps: point.reps,
                heartbeat: Duration::from_millis(heartbeat),
                faults: TransportFaults::none(),
                fault_seed: 0,
                sabotage,
                extra_args,
            };
            run_sweep(w, lab, &mut transport, &cfg)
        };
        let out = match out {
            Ok(out) => out,
            Err(e) => {
                eprintln!("interlag: sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(label) = &point.label {
            println!("# matrix-point: {label}");
        }
        if args.iter().any(|a| a == "--markdown") {
            print!("{}", study_markdown_with_ingest(&out.study, &IngestReport::default()));
        } else {
            print!("{}", study_csv(&out.study));
        }
        let retried: u32 = out.shards.iter().map(|s| s.attempts.saturating_sub(1)).sum();
        eprintln!(
            "interlag sweep: {} shard dispatch(es) over 2 waves, {} retried, {} abandoned; \
             {} torn fragment(s), {} quarantined record(s); merged journal {}",
            out.shards.len(),
            retried,
            out.shards.iter().filter(|s| s.abandoned.is_some()).count(),
            out.torn,
            out.quarantined,
            out.merged_journal.display(),
        );
        if let Some(db) = &mut db {
            match db.ingest_file(&out.submission) {
                Ok(receipt) => eprintln!(
                    "interlag sweep: submission {:016x} folded into {} \
                     ({} repetition(s), {} lag(s))",
                    receipt.id,
                    db.dir().display(),
                    receipt.reps_folded,
                    receipt.lags_folded,
                ),
                Err(e) => {
                    eprintln!("interlag: db ingest of {} failed: {e}", out.submission.display());
                    worst = ExitCode::from(EXIT_INGEST_REJECTED);
                }
            }
        }
        if out.degraded {
            eprintln!(
                "interlag: sweep degraded: abandoned shards left synthesised \
                 Abandoned repetition(s)"
            );
            worst = ExitCode::from(EXIT_SWEEP_DEGRADED);
        }
    }
    worst
}

/// `interlag db`: the fleet results database verbs.
fn cmd_db(args: &[String]) -> ExitCode {
    let Some(verb) = args.get(1).map(String::as_str) else {
        eprintln!("interlag: db requires a verb: ingest, query or export");
        return usage();
    };
    let Some(dir) = flag_value(args, &["--db"]) else {
        eprintln!("interlag: db {verb} requires --db DIR");
        return usage();
    };
    let mut db = match Db::open(&dir, Default::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("interlag: cannot open db {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match verb {
        "ingest" => {
            // Positional operands: everything after the verb that is not a
            // flag or a flag's value.
            let artifacts: Vec<&String> = args
                .iter()
                .enumerate()
                .skip(2)
                .filter(|(i, a)| !a.starts_with("--") && args[i - 1] != "--db")
                .map(|(_, a)| a)
                .collect();
            if artifacts.is_empty() {
                eprintln!("interlag: db ingest requires at least one ARTIFACT");
                return usage();
            }
            let mut rejected = 0usize;
            for path in &artifacts {
                match db.ingest_file(path) {
                    Ok(receipt) => eprintln!(
                        "ingested {path}: submission {:016x}, {} repetition(s), \
                         {} lag(s), {} degraded",
                        receipt.id, receipt.reps_folded, receipt.lags_folded, receipt.degraded,
                    ),
                    Err(e) => {
                        eprintln!("rejected {path}: {e}");
                        rejected += 1;
                    }
                }
            }
            eprintln!(
                "interlag db: {} ingested, {rejected} rejected; {} group(s) aggregated",
                artifacts.len() - rejected,
                db.groups().len(),
            );
            if rejected > 0 {
                return ExitCode::from(EXIT_INGEST_REJECTED);
            }
            ExitCode::SUCCESS
        }
        "query" => {
            let Some(group) = args
                .iter()
                .enumerate()
                .skip(2)
                .find(|(i, a)| !a.starts_with("--") && args[i - 1] != "--db")
                .map(|(_, a)| a)
            else {
                eprintln!("interlag: db query requires a property group");
                return usage();
            };
            match interlag::db::query(&db, group) {
                Ok(rows) => {
                    print!("{rows}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("interlag: {e}");
                    usage()
                }
            }
        }
        "export" => {
            if args.iter().any(|a| a == "--markdown") {
                print!("{}", interlag::db::export_markdown(&db));
            } else {
                print!("{}", interlag::db::export_csv(&db));
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("interlag: unknown db verb {other:?} (ingest, query, export)");
            usage()
        }
    }
}

/// `interlag tune`: score a governor-tunable grid against the oracle.
fn cmd_tune(w: &Workload, args: &[String]) -> ExitCode {
    let Some(group) = args
        .iter()
        .enumerate()
        .skip(2)
        .find(|(i, a)| {
            !a.starts_with("--")
                && !matches!(args[i - 1].as_str(), "--workers" | "--shards" | "--out")
        })
        .map(|(_, a)| a.clone())
    else {
        eprintln!("interlag: tune requires a tunable property group");
        return usage();
    };
    let mut config = TuneConfig::new(group);
    if let Some(workers) = flag_opt!(args, &["--workers"]) {
        config.workers = workers;
    }
    if let Some(shards) = flag_opt!(args, &["--shards"]) {
        config.shards = shards;
    }
    let out = match run_tune(w, &config) {
        Ok(out) => out,
        Err(e @ TuneError::Prop(_)) => {
            eprintln!("interlag: {e}");
            return usage();
        }
        Err(e) => {
            eprintln!("interlag: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.iter().any(|a| a == "--csv") {
        print!("{}", tune_csv(&out));
    } else {
        print!("{}", tune_markdown(&out));
    }
    if let Some(dir) = flag_value(args, &["--out"]) {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                atomic_write(dir.join("frontier.md"), tune_markdown(&out).as_bytes())
                    .map_err(|e| e.to_string())
            })
            .and_then(|()| {
                atomic_write(dir.join("frontier.csv"), tune_csv(&out).as_bytes())
                    .map_err(|e| e.to_string())
            })
        {
            eprintln!("interlag: cannot write {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "interlag tune: {} point(s) × {} rep(s), {} on the Pareto frontier",
        out.points.len(),
        out.reps,
        out.frontier.len(),
    );
    ExitCode::SUCCESS
}

fn cmd_oracle(w: &Workload) -> ExitCode {
    let lab = Lab::new(LabConfig::default());
    let study = match lab.study(w) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("interlag: study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", oracle_csv(&study));
    eprintln!("efficient frequency outside lags: {}", lab.power_table().most_efficient_freq());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "datasets" => cmd_datasets(),
        "db" => cmd_db(&args),
        "record" | "classify" | "replay" | "study" | "oracle" | "sweep" | "agent" | "tune" => {
            let Some(target) = args.get(1) else { return usage() };
            if command == "classify" {
                return cmd_classify(target);
            }
            let Some(ds) = dataset(target) else {
                eprintln!("interlag: unknown dataset {target:?}");
                return ExitCode::from(2);
            };
            let w = ds.build();
            match command {
                "record" => cmd_record(&w, flag_value(&args, &["-o", "--out"])),
                "replay" => {
                    let Some(g) = flag_value(&args, &["-g", "--governor"]) else {
                        return usage();
                    };
                    cmd_replay(&w, &g)
                }
                "study" => {
                    let reps = flag_or!(&args, &["-r", "--reps"], 1);
                    let resume = args.iter().any(|a| a == "--resume");
                    if resume && flag_value(&args, &["--journal"]).is_none() {
                        eprintln!("interlag: --resume requires --journal FILE");
                        return usage();
                    }
                    cmd_study(
                        &w,
                        StudyArgs {
                            reps,
                            csv_dir: flag_value(&args, &["--csv"]),
                            markdown: args.iter().any(|a| a == "--markdown"),
                            trace_out: flag_value(&args, &["-t", "--trace"]),
                            events: flag_value(&args, &["--events"]),
                            strict: args.iter().any(|a| a == "--strict"),
                            journal: flag_value(&args, &["--journal"]),
                            resume,
                        },
                    )
                }
                "oracle" => cmd_oracle(&w),
                "sweep" => cmd_sweep(&w, target, &args),
                "agent" => cmd_agent(&w, &args),
                "tune" => cmd_tune(&w, &args),
                _ => unreachable!("matched above"),
            }
        }
        "-h" | "--help" | "help" => usage(),
        other => {
            eprintln!("interlag: unknown command {other:?}");
            usage()
        }
    }
}
