//! `interlag` — command-line front end for the reproduction.
//!
//! ```text
//! interlag datasets                          list the study's workloads
//! interlag record <DS> [-o FILE]             write a dataset's getevent trace
//! interlag classify <FILE>                   classify a getevent trace
//! interlag replay <DS> -g <GOVERNOR>         one run: lags + energy
//! interlag study <DS> [-r REPS] [--csv DIR] [--trace FILE]  the full §III study
//! interlag oracle <DS>                       the oracle's per-lag decisions
//! ```
//!
//! Datasets: `01 02 03 04 05 24hour`. Governors: `ondemand conservative
//! interactive schedutil performance powersave` or a frequency like
//! `0.96GHz`.

use std::io::Write as _;
use std::process::ExitCode;

use interlag::core::experiment::{Lab, LabConfig};
use interlag::core::report::{oracle_csv, profile_csv, study_csv, study_markdown};
use interlag::device::dvfs::{FixedGovernor, Governor};
use interlag::evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag::evdev::trace::EventTrace;
use interlag::governors::{Conservative, Interactive, Ondemand, Performance, Powersave, Schedutil};
use interlag::power::opp::Frequency;
use interlag::workloads::datasets::Dataset;
use interlag::workloads::gen::Workload;

fn usage() -> ExitCode {
    eprintln!(
        "usage: interlag <command> [args]\n\
         \n\
         commands:\n\
         \x20 datasets                         list the study's workloads\n\
         \x20 record <DS> [-o FILE]            write a dataset's getevent trace\n\
         \x20 classify <FILE>                  classify a getevent trace\n\
         \x20 replay <DS> -g <GOVERNOR>        one run: lag + energy summary\n\
         \x20 study <DS> [-r REPS] [--csv DIR] [--trace FILE]\n\
         \x20                                  the full 18-configuration study;\n\
         \x20                                  --trace writes a Chrome trace JSON\n\
         \x20 oracle <DS>                      the oracle's per-lag decisions\n\
         \n\
         datasets: 01 02 03 04 05 24hour\n\
         governors: ondemand conservative interactive schedutil performance powersave <freq>GHz"
    );
    ExitCode::from(2)
}

fn dataset(name: &str) -> Option<Dataset> {
    match name {
        "01" => Some(Dataset::D01),
        "02" => Some(Dataset::D02),
        "03" => Some(Dataset::D03),
        "04" => Some(Dataset::D04),
        "05" => Some(Dataset::D05),
        "24hour" | "24h" => Some(Dataset::Day24h),
        _ => None,
    }
}

fn flag_value(args: &[String], names: &[&str]) -> Option<String> {
    args.iter().position(|a| names.contains(&a.as_str())).and_then(|i| args.get(i + 1)).cloned()
}

fn governor_by_name(name: &str, lab: &Lab) -> Option<Box<dyn Governor>> {
    let table = &lab.device().config().opps;
    Some(match name {
        "ondemand" => Box::new(Ondemand::default()),
        "conservative" => Box::new(Conservative::default()),
        "interactive" => Box::new(Interactive::for_table(table)),
        "schedutil" => Box::new(Schedutil::default()),
        "performance" => Box::new(Performance),
        "powersave" => Box::new(Powersave),
        other => {
            let ghz: f64 = other.trim_end_matches("GHz").trim_end_matches("ghz").parse().ok()?;
            Box::new(FixedGovernor::new(Frequency::from_khz((ghz * 1e6) as u32)))
        }
    })
}

fn cmd_datasets() -> ExitCode {
    println!("{:<8} {:<52} {:>7} {:>8}", "dataset", "description", "inputs", "length");
    for ds in Dataset::TEN_MINUTE.iter().copied().chain([Dataset::Day24h]) {
        let w = ds.build();
        println!(
            "{:<8} {:<52} {:>7} {:>7.0}s",
            w.name,
            w.description,
            w.script.interactions.len(),
            w.duration.as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_record(w: &Workload, out: Option<String>) -> ExitCode {
    let trace = w.script.record_trace();
    let text = trace.to_getevent_text();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("interlag: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} events ({} bytes) to {path}", trace.len(), text.len());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_classify(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("interlag: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace: EventTrace = match text.parse() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("interlag: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inputs = classify_trace(&trace, &ClassifierConfig::default());
    let counts = count_inputs(&inputs);
    println!(
        "{} raw events over {:.1} s -> {} inputs: {} taps, {} swipes, {} keys",
        trace.len(),
        trace.span().as_secs_f64(),
        counts.total(),
        counts.taps,
        counts.swipes,
        counts.keys
    );
    for i in &inputs {
        println!(
            "  {:>10.3}s {:?} at ({}, {}) travel {:.0}px hold {}",
            i.time.as_secs_f64(),
            i.class,
            i.pos.x,
            i.pos.y,
            i.travel,
            i.duration
        );
    }
    ExitCode::SUCCESS
}

fn cmd_replay(w: &Workload, gov_name: &str) -> ExitCode {
    let lab = Lab::new(LabConfig::default());
    let Some(mut gov) = governor_by_name(gov_name, &lab) else {
        eprintln!("interlag: unknown governor {gov_name:?}");
        return ExitCode::from(2);
    };
    let run = match lab.run(w, w.script.record_trace(), gov.as_mut()) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("interlag: replay failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let energy = lab.meter().measure(&run.activity);
    let lags: Vec<f64> =
        run.interactions.iter().filter_map(|r| r.true_lag()).map(|l| l.as_millis_f64()).collect();
    let mean = if lags.is_empty() { 0.0 } else { lags.iter().sum::<f64>() / lags.len() as f64 };
    println!(
        "dataset {} under {}: {} interactions serviced, mean lag {:.0} ms, max {:.0} ms",
        w.name,
        gov_name,
        lags.len(),
        mean,
        lags.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "dynamic CPU energy {:.2} J; busy {:.1} s of {:.1} s",
        energy.dynamic_mj / 1_000.0,
        run.activity.busy_time().as_secs_f64(),
        run.activity.total_duration().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn cmd_study(
    w: &Workload,
    reps: u32,
    csv_dir: Option<String>,
    markdown: bool,
    trace_out: Option<String>,
) -> ExitCode {
    let obs =
        if trace_out.is_some() { interlag::obs::Recorder::enabled() } else { Default::default() };
    let lab = Lab::new(LabConfig { reps, obs: obs.clone(), ..Default::default() });
    let study = match lab.study(w) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("interlag: study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if markdown {
        print!("{}", study_markdown(&study));
        if trace_out.is_some() {
            print!("\n{}", obs.text_report());
        }
    } else {
        print!("{}", study_csv(&study));
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, obs.chrome_trace_json()) {
            eprintln!("interlag: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (load it in about:tracing or ui.perfetto.dev)");
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("interlag: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let files = [
            (format!("{dir}/study-{}.csv", w.name), study_csv(&study)),
            (format!("{dir}/oracle-{}.csv", w.name), oracle_csv(&study)),
        ];
        for (path, data) in files {
            if let Err(e) = std::fs::write(&path, data) {
                eprintln!("interlag: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        for c in study.all_configs() {
            let path = format!("{dir}/profile-{}-{}.csv", w.name, c.name.replace(' ', ""));
            if std::fs::write(&path, profile_csv(c)).is_ok() {
                eprintln!("wrote {path}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_oracle(w: &Workload) -> ExitCode {
    let lab = Lab::new(LabConfig::default());
    let study = match lab.study(w) {
        Ok(study) => study,
        Err(e) => {
            eprintln!("interlag: study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", oracle_csv(&study));
    eprintln!("efficient frequency outside lags: {}", lab.power_table().most_efficient_freq());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "datasets" => cmd_datasets(),
        "record" | "classify" | "replay" | "study" | "oracle" => {
            let Some(target) = args.get(1) else { return usage() };
            if command == "classify" {
                return cmd_classify(target);
            }
            let Some(ds) = dataset(target) else {
                eprintln!("interlag: unknown dataset {target:?}");
                return ExitCode::from(2);
            };
            let w = ds.build();
            match command {
                "record" => cmd_record(&w, flag_value(&args, &["-o", "--out"])),
                "replay" => {
                    let Some(g) = flag_value(&args, &["-g", "--governor"]) else {
                        return usage();
                    };
                    cmd_replay(&w, &g)
                }
                "study" => {
                    let reps = flag_value(&args, &["-r", "--reps"])
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1);
                    let markdown = args.iter().any(|a| a == "--markdown");
                    cmd_study(
                        &w,
                        reps,
                        flag_value(&args, &["--csv"]),
                        markdown,
                        flag_value(&args, &["-t", "--trace"]),
                    )
                }
                "oracle" => cmd_oracle(&w),
                _ => unreachable!("matched above"),
            }
        }
        "-h" | "--help" | "help" => usage(),
        other => {
            eprintln!("interlag: unknown command {other:?}");
            usage()
        }
    }
}
