//! Property-based tests of the imaging layer: masked comparison bounds,
//! recorder pacing and capture-path guarantees.

use std::sync::Arc;

use proptest::prelude::*;

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_video::capture::{CameraCapture, CaptureLink, HdmiCapture, VideoRecorder};
use interlag_video::frame::{FrameBuffer, Rect};
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::FRAME_PERIOD_30FPS;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..24, 0u32..24, 1u32..9, 1u32..9).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_frame() -> impl Strategy<Value = FrameBuffer> {
    proptest::num::u64::ANY.prop_map(|seed| {
        let mut f = FrameBuffer::new(32, 32);
        f.hash_paint(f.bounds(), seed);
        f
    })
}

proptest! {
    /// Masking can only hide differences, never create them.
    #[test]
    fn masked_diff_is_bounded_by_unmasked(
        a in arb_frame(),
        b in arb_frame(),
        rects in prop::collection::vec(arb_rect(), 0..5),
        tol in 0u8..16,
    ) {
        let mask: Mask = rects.into_iter().collect();
        let masked = mask.count_diff(&a, &b, tol);
        let unmasked = a.count_diff(&b, tol);
        prop_assert!(masked <= unmasked);
        // A higher tolerance can only reduce the count.
        prop_assert!(mask.count_diff(&a, &b, tol.saturating_add(8)) <= masked);
    }

    /// Visible area plus hidden area equals the frame area.
    #[test]
    fn mask_partitions_the_frame(rects in prop::collection::vec(arb_rect(), 0..5)) {
        let mask: Mask = rects.into_iter().collect();
        let visible = mask.visible_area(32, 32);
        let mut hidden = 0u64;
        for y in 0..32 {
            for x in 0..32 {
                if mask.is_excluded(x, y) {
                    hidden += 1;
                }
            }
        }
        prop_assert_eq!(visible + hidden, 32 * 32);
    }

    /// Changing pixels only inside the mask keeps frames equal under it;
    /// any change outside trips exact matching.
    #[test]
    fn masked_changes_are_invisible(base in arb_frame(), rect in arb_rect(), v in 0u8..=255) {
        let mask = Mask::new().with_excluded(rect);
        let mut inside = base.clone();
        inside.fill_rect(rect, v);
        prop_assert!(MatchTolerance::EXACT.matches(&mask, &base, &inside));
    }

    /// The recorder produces frames on the exact capture grid regardless
    /// of the polling cadence.
    #[test]
    fn recorder_frames_are_on_the_grid(step_us in 200u64..5_000, span_ms in 100u64..2_000) {
        let mut rec = VideoRecorder::new(HdmiCapture::new(), FRAME_PERIOD_30FPS);
        let screen = FrameBuffer::new(8, 8);
        let mut t = SimTime::ZERO;
        let end = SimTime::from_millis(span_ms);
        while t <= end {
            rec.poll(t, &screen).unwrap();
            t += SimDuration::from_micros(step_us);
        }
        let video = rec.into_stream();
        // Frames due up to the last poll instant must all be present (the
        // final boundary may fall between the last poll and `end`).
        let expected = (span_ms * 1_000).saturating_sub(step_us) / 33_333 + 1;
        prop_assert!(video.len() as u64 >= expected);
        for f in video.iter() {
            prop_assert_eq!(f.time.as_micros() % 33_333, 0);
        }
        // Identical stills share one allocation.
        prop_assert_eq!(video.unique_frames(), 1);
    }

    /// Camera capture noise stays within its configured bound, so the
    /// CAMERA tolerance always accepts camera shots of the same screen.
    #[test]
    fn camera_noise_is_bounded(seed in proptest::num::u64::ANY, frame in arb_frame()) {
        let mut cam = CameraCapture::new(seed);
        let shot = cam.capture(SimTime::from_secs(3), &frame);
        // amplitude 3 + wobble 4 = 7 ≤ the CAMERA tolerance of 8.
        prop_assert_eq!(frame.count_diff(&shot, 8), 0);
        prop_assert!(MatchTolerance::CAMERA.matches(&Mask::new(), &frame, &shot));
    }

    /// HDMI capture is bit-exact and deduplicates.
    #[test]
    fn hdmi_is_lossless(frame in arb_frame()) {
        let mut link = HdmiCapture::new();
        let a = link.capture(SimTime::ZERO, &frame);
        let b = link.capture(SimTime::from_millis(33), &frame);
        prop_assert!(Arc::ptr_eq(&a, &b));
        prop_assert_eq!(a.as_ref(), &frame);
    }
}
