//! Property tests pinning the word-wide diff kernels to the scalar
//! reference implementation: whatever the frames, masks, tolerances and
//! limits, the SWAR fast path must agree bit-for-bit with the per-pixel
//! walk it replaced.

use proptest::prelude::*;

use interlag_video::arena::FrameArena;
use interlag_video::frame::{FrameBuffer, Rect};
use interlag_video::kernel;
use interlag_video::mask::{Mask, MatchTolerance};

/// Widths deliberately not divisible by 8 are included so head/tail
/// remainder handling is always exercised.
fn arb_dims() -> impl Strategy<Value = (u32, u32)> {
    (1u32..40, 1u32..20)
}

/// Tolerances biased towards the edges: 0 (the XOR popcount path), 255
/// (nothing can exceed it), and the wrap-around-sensitive middle.
fn arb_tol() -> impl Strategy<Value = u8> {
    prop_oneof![Just(0u8), Just(255u8), Just(254u8), Just(1u8), proptest::num::u8::ANY]
}

/// A pair of frames that are near-copies with injected differences —
/// random independent frames differ almost everywhere, which never
/// exercises limit edges near small counts.
fn arb_frame_pair() -> impl Strategy<Value = (FrameBuffer, FrameBuffer)> {
    (
        arb_dims(),
        proptest::num::u64::ANY,
        prop::collection::vec((proptest::num::u16::ANY, proptest::num::u8::ANY), 0..20),
    )
        .prop_map(|((w, h), seed, edits)| {
            let mut a = FrameBuffer::new(w, h);
            a.hash_paint(Rect::new(0, 0, w, h), seed);
            let mut b = a.clone();
            let n = b.pixels().len();
            for (pos, val) in edits {
                b.pixels_mut()[pos as usize % n] = val;
            }
            (a, b)
        })
}

fn arb_rects() -> impl Strategy<Value = Vec<Rect>> {
    prop::collection::vec(
        (0u32..40, 0u32..20, 1u32..12, 1u32..8).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h)),
        0..4,
    )
}

proptest! {
    /// The whole-slice kernels agree with the scalar reference on counts
    /// and on every interesting early-exit limit.
    #[test]
    fn slice_kernels_match_reference((a, b) in arb_frame_pair(), tol in arb_tol()) {
        let (pa, pb) = (a.pixels(), b.pixels());
        let expect = kernel::reference::count_over(pa, pb, tol);
        prop_assert_eq!(kernel::count_over(pa, pb, tol), expect);
        for limit in [0, expect.saturating_sub(1), expect, expect + 1, u64::MAX] {
            prop_assert_eq!(
                kernel::exceeds(pa, pb, tol, limit),
                kernel::reference::exceeds(pa, pb, tol, limit),
                "tol {} limit {}", tol, limit
            );
            prop_assert_eq!(kernel::exceeds(pa, pb, tol, limit), expect > limit);
        }
    }

    /// `FrameBuffer` comparison (now kernel-backed) agrees with the
    /// scalar reference.
    #[test]
    fn frame_diff_matches_reference((a, b) in arb_frame_pair(), tol in arb_tol()) {
        let expect = kernel::reference::count_over(a.pixels(), b.pixels(), tol);
        prop_assert_eq!(a.count_diff(&b, tol), expect);
        for limit in [0, expect.saturating_sub(1), expect, expect + 1] {
            prop_assert_eq!(a.differs_more_than(&b, tol, limit), expect > limit);
        }
    }

    /// Masked comparison through the compiled spans (kernel-backed)
    /// agrees with the naive per-pixel mask walk, for both the
    /// `FrameBuffer` and the raw-slice entry points.
    #[test]
    fn compiled_mask_matches_naive(
        (a, b) in arb_frame_pair(),
        rects in arb_rects(),
        tol in arb_tol(),
    ) {
        let mask: Mask = rects.into_iter().collect();
        let naive = mask.count_diff(&a, &b, tol);
        let cm = mask.compile(a.width(), a.height());
        prop_assert_eq!(cm.count_diff(&a, &b, tol), naive);
        prop_assert_eq!(cm.count_diff_pixels(a.pixels(), b.pixels(), tol), naive);
        for limit in [0, naive.saturating_sub(1), naive, naive + 1] {
            prop_assert_eq!(cm.differs_more_than(&a, &b, tol, limit), naive > limit);
            prop_assert_eq!(
                cm.differs_more_than_pixels(a.pixels(), b.pixels(), tol, limit),
                naive > limit
            );
        }
    }

    /// The arena-slot matching path gives the same verdicts as frame
    /// matching for the same content, across tolerance shapes.
    #[test]
    fn matches_pixels_agrees_with_matches_compiled(
        (a, b) in arb_frame_pair(),
        rects in arb_rects(),
        tol in arb_tol(),
        budget in 0u64..6,
    ) {
        let mask: Mask = rects.into_iter().collect();
        let cm = mask.compile(a.width(), a.height());
        let mut arena = FrameArena::new(b.width(), b.height());
        let slot = arena.push(&b);
        for tolerance in [
            MatchTolerance { value_tolerance: tol, pixel_budget: budget },
            MatchTolerance::EXACT,
        ] {
            prop_assert_eq!(
                tolerance.matches_pixels(&cm, &a, arena.pixels(slot), arena.digest(slot)),
                tolerance.matches_compiled(&cm, &a, &b)
            );
        }
    }
}
