//! Word-wide frame-diff kernels: the raw-speed core of frame comparison.
//!
//! Every frame-matching question in the pipeline reduces to "how many
//! bytes of these two equal-length slices differ by more than `tol`?",
//! asked millions of times per study. On x86-64 the [`sse2`] module
//! answers it sixteen pixels per vector with three saturating
//! subtractions and a `movemask`/`popcount`; everywhere else the portable
//! kernels answer it eight pixels per `u64` using SWAR
//! (SIMD-within-a-register) arithmetic:
//!
//! * a word-level XOR fast path skips eight equal pixels in one compare —
//!   the overwhelmingly common case, since most of any two frames of the
//!   same UI is identical;
//! * for `tol == 0`, differing bytes of `x = a ^ b` are counted with the
//!   classic nonzero-byte mask `(((x & !H) + !H) | x) & H` and one
//!   `popcount`;
//! * for general `tol`, per-byte saturating comparisons are built from a
//!   borrow-free packed subtraction ([`swar_sub`]) and an unsigned
//!   per-byte less-than ([`swar_lt`]), so `|a − b| > tol` is evaluated for
//!   all eight lanes at once;
//! * the early-exit form gives up as soon as the mismatch budget is
//!   blown, checked once per word rather than once per pixel.
//!
//! Heads and tails that do not fill a word fall back to the scalar loop.
//! The pre-kernel per-pixel implementation is kept verbatim in
//! [`reference`]; property tests (`tests/kernel_equivalence.rs`) pin the
//! kernels to it over random frames, tolerances and slice lengths, and
//! the `perf_trajectory` bench reports the speedup per PR.

/// High (sign) bit of every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;
/// Low seven bits of every byte lane.
const L7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
/// Broadcasts a byte into all eight lanes.
const LO: u64 = 0x0101_0101_0101_0101;

/// Loads eight bytes as a little-endian word (no alignment requirement).
#[inline(always)]
fn load(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunk of 8"))
}

/// Packed per-byte wrapping subtraction `x - y` with no borrow leaking
/// between lanes: each minuend byte is lifted to `>= 0x80` while each
/// subtrahend byte is clamped to `<= 0x7f`, so every lane subtracts
/// independently, and the XOR terms restore the true low-7-bit and sign
/// bits of the wrapping difference.
#[inline(always)]
fn swar_sub(x: u64, y: u64) -> u64 {
    ((x | HI) - (y & L7)) ^ ((x ^ !y) & HI)
}

/// Per-byte unsigned `x < y`: the high bit of each lane is set exactly
/// when that lane of `x` is less than the same lane of `y`. This is the
/// borrow-out of the lane-wise subtraction `x - y`, assembled from the
/// operands' sign bits and the difference's sign bit.
#[inline(always)]
fn swar_lt(x: u64, y: u64) -> u64 {
    ((!x & y) | ((!x | y) & swar_sub(x, y))) & HI
}

/// High bit set in each lane where the bytes of `x` differ at all; with
/// `x = a ^ b` this marks the lanes where `a` and `b` disagree.
#[inline(always)]
fn nonzero_bytes(x: u64) -> u64 {
    (((x & L7) + L7) | x) & HI
}

/// High bit set in each lane where `|a - b| > tol` (`tolx` is the
/// tolerance broadcast to all lanes). The two subtraction directions are
/// gated by which operand is larger, because the *wrapping* difference in
/// the wrong direction is a large byte that would false-trip `> tol`.
#[inline(always)]
fn over_mask(a: u64, b: u64, tolx: u64) -> u64 {
    (swar_lt(b, a) & swar_lt(tolx, swar_sub(a, b)))
        | (swar_lt(a, b) & swar_lt(tolx, swar_sub(b, a)))
}

/// Number of positions where `a` and `b` differ by more than `tol`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn count_over(a: &[u8], b: &[u8], tol: u8) -> u64 {
    assert_eq!(a.len(), b.len(), "diff kernels need equal-length slices");
    if tol == u8::MAX {
        // No byte pair can exceed the maximum possible difference.
        return 0;
    }
    #[cfg(target_arch = "x86_64")]
    return sse2::count_over(a, b, tol);
    #[cfg(not(target_arch = "x86_64"))]
    swar_count_over(a, b, tol)
}

/// The portable SWAR form of [`count_over`] (the x86-64 build dispatches
/// to [`sse2`] instead); the equivalence tests exercise it on every
/// architecture.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
pub(crate) fn swar_count_over(a: &[u8], b: &[u8], tol: u8) -> u64 {
    let mut over = 0u64;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    if tol == 0 {
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            let x = load(wa) ^ load(wb);
            if x != 0 {
                over += nonzero_bytes(x).count_ones() as u64;
            }
        }
    } else {
        let tolx = tol as u64 * LO;
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            let (x, y) = (load(wa), load(wb));
            if x != y {
                over += over_mask(x, y, tolx).count_ones() as u64;
            }
        }
    }
    for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
        if pa.abs_diff(pb) > tol {
            over += 1;
        }
    }
    over
}

/// `true` as soon as more than `limit` positions differ by more than
/// `tol` — the early-exit form of [`count_over`], deciding once per word
/// instead of visiting every remaining pixel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn exceeds(a: &[u8], b: &[u8], tol: u8, limit: u64) -> bool {
    assert_eq!(a.len(), b.len(), "diff kernels need equal-length slices");
    if tol == u8::MAX {
        return false;
    }
    if tol == 0 && limit == 0 {
        // Bit-exact, zero budget: one memcmp decides it.
        return a != b;
    }
    #[cfg(target_arch = "x86_64")]
    return sse2::exceeds(a, b, tol, limit);
    #[cfg(not(target_arch = "x86_64"))]
    swar_exceeds(a, b, tol, limit)
}

/// The portable SWAR form of [`exceeds`] (the x86-64 build dispatches to
/// [`sse2`] instead); the equivalence tests exercise it on every
/// architecture.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
pub(crate) fn swar_exceeds(a: &[u8], b: &[u8], tol: u8, limit: u64) -> bool {
    let mut over = 0u64;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    if tol == 0 {
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            let x = load(wa) ^ load(wb);
            if x != 0 {
                over += nonzero_bytes(x).count_ones() as u64;
                if over > limit {
                    return true;
                }
            }
        }
    } else {
        let tolx = tol as u64 * LO;
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            let (x, y) = (load(wa), load(wb));
            if x != y {
                over += over_mask(x, y, tolx).count_ones() as u64;
                if over > limit {
                    return true;
                }
            }
        }
    }
    for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
        if pa.abs_diff(pb) > tol {
            over += 1;
            if over > limit {
                return true;
            }
        }
    }
    false
}

/// The 16-lane vector kernels used on x86-64, where SSE2 is part of the
/// baseline instruction set (no runtime feature detection needed).
///
/// The whole comparison is branch-free per vector: the saturating
/// subtractions `a ⊖ b` and `b ⊖ a` OR together into the true per-byte
/// `|a − b|`, a third saturating subtraction against the broadcast
/// tolerance leaves zero exactly in the lanes within budget, and one
/// compare-to-zero plus `movemask` turns the sixteen verdicts into a bit
/// mask counted with `popcount`.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use std::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8,
        _mm_setzero_si128, _mm_subs_epu8,
    };

    /// Bits set where the 16 lanes of `wa`/`wb` differ by more than `tol`
    /// (`tolx` is the broadcast tolerance).
    ///
    /// # Safety
    ///
    /// `wa` and `wb` must be readable for 16 bytes. SSE2 itself is always
    /// present on x86-64.
    #[inline(always)]
    unsafe fn over_bits(wa: *const __m128i, wb: *const __m128i, tolx: __m128i) -> u32 {
        let (va, vb) = (_mm_loadu_si128(wa), _mm_loadu_si128(wb));
        let diff = _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va));
        let within = _mm_cmpeq_epi8(_mm_subs_epu8(diff, tolx), _mm_setzero_si128());
        !_mm_movemask_epi8(within) as u32 & 0xffff
    }

    /// Vector [`count_over`](super::count_over); tails shorter than one
    /// vector fall back to the scalar loop.
    pub(super) fn count_over(a: &[u8], b: &[u8], tol: u8) -> u64 {
        // SAFETY: SSE2 is unconditionally available on x86-64.
        let tolx = unsafe { _mm_set1_epi8(tol as i8) };
        let mut over = 0u64;
        let mut ca = a.chunks_exact(16);
        let mut cb = b.chunks_exact(16);
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            // SAFETY: chunks_exact guarantees 16 readable bytes each.
            over += unsafe { over_bits(wa.as_ptr().cast(), wb.as_ptr().cast(), tolx) }.count_ones()
                as u64;
        }
        for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
            over += (pa.abs_diff(pb) > tol) as u64;
        }
        over
    }

    /// Vector [`exceeds`](super::exceeds): the budget check runs once per
    /// vector, sixteen pixels at a time.
    pub(super) fn exceeds(a: &[u8], b: &[u8], tol: u8, limit: u64) -> bool {
        // SAFETY: SSE2 is unconditionally available on x86-64.
        let tolx = unsafe { _mm_set1_epi8(tol as i8) };
        let mut over = 0u64;
        let mut ca = a.chunks_exact(16);
        let mut cb = b.chunks_exact(16);
        for (wa, wb) in (&mut ca).zip(&mut cb) {
            // SAFETY: chunks_exact guarantees 16 readable bytes each.
            over += unsafe { over_bits(wa.as_ptr().cast(), wb.as_ptr().cast(), tolx) }.count_ones()
                as u64;
            if over > limit {
                return true;
            }
        }
        for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
            if pa.abs_diff(pb) > tol {
                over += 1;
                if over > limit {
                    return true;
                }
            }
        }
        false
    }
}

/// The per-pixel implementations the kernels replaced, kept verbatim as
/// the ground truth for equivalence tests and the baseline the
/// `perf_trajectory` bench measures speedups against.
pub mod reference {
    /// Per-pixel [`count_over`](super::count_over): the PR-1 scalar diff.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn count_over(a: &[u8], b: &[u8], tol: u8) -> u64 {
        assert_eq!(a.len(), b.len(), "diff kernels need equal-length slices");
        a.iter().zip(b).filter(|(p, q)| p.abs_diff(**q) > tol).count() as u64
    }

    /// Per-pixel [`exceeds`](super::exceeds): the PR-1 scalar early-exit
    /// walk.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn exceeds(a: &[u8], b: &[u8], tol: u8, limit: u64) -> bool {
        assert_eq!(a.len(), b.len(), "diff kernels need equal-length slices");
        let mut over = 0u64;
        for (p, q) in a.iter().zip(b) {
            if p.abs_diff(*q) > tol {
                over += 1;
                if over > limit {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little deterministic byte generator for exhaustive-ish coverage.
    fn splat(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn swar_sub_matches_per_byte_wrapping_sub() {
        for (sa, sb) in [(1u64, 2u64), (3, 5), (8, 13), (21, 34)] {
            let a = load(&splat(sa, 8));
            let b = load(&splat(sb, 8));
            let got = swar_sub(a, b).to_le_bytes();
            for (i, lane) in got.into_iter().enumerate() {
                assert_eq!(lane, a.to_le_bytes()[i].wrapping_sub(b.to_le_bytes()[i]));
            }
        }
    }

    #[test]
    fn swar_lt_matches_per_byte_unsigned_lt() {
        for (sa, sb) in [(2u64, 7u64), (9, 4), (11, 11), (100, 200)] {
            let a = load(&splat(sa, 8));
            let b = load(&splat(sb, 8));
            let got = swar_lt(a, b).to_le_bytes();
            for (i, lane) in got.into_iter().enumerate() {
                let expect = if a.to_le_bytes()[i] < b.to_le_bytes()[i] { 0x80 } else { 0 };
                assert_eq!(lane, expect, "lane {i} of {a:#x} < {b:#x}");
            }
        }
    }

    #[test]
    fn count_over_agrees_with_reference_on_awkward_lengths() {
        // Lengths straddling the word boundary, incl. head/tail-only.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            for tol in [0u8, 1, 3, 127, 128, 200, 254, 255] {
                let a = splat(len as u64 + 1, len);
                let b = splat(len as u64 * 31 + 7, len);
                assert_eq!(
                    count_over(&a, &b, tol),
                    reference::count_over(&a, &b, tol),
                    "len {len} tol {tol}"
                );
            }
        }
    }

    #[test]
    fn large_tolerance_does_not_false_positive() {
        // tol=200 with |a-b|=10: the naive wrapping-sub-in-both-directions
        // check would see 246 > 200 and miscount.
        let a = [100u8; 24];
        let b = [110u8; 24];
        assert_eq!(count_over(&a, &b, 200), 0);
        assert_eq!(count_over(&a, &b, 9), 24);
        assert!(!exceeds(&a, &b, 200, 0));
        assert!(exceeds(&a, &b, 9, 23));
        assert!(!exceeds(&a, &b, 10, 0));
    }

    #[test]
    fn exceeds_honours_limit_edges() {
        let a = splat(3, 100);
        let b = splat(4, 100);
        for tol in [0u8, 2, 50, 255] {
            let n = count_over(&a, &b, tol);
            for limit in [0, n.saturating_sub(1), n, n + 1] {
                assert_eq!(exceeds(&a, &b, tol, limit), n > limit, "tol {tol} limit {limit}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        count_over(&[0; 4], &[0; 5], 0);
    }

    /// The portable SWAR bodies are not dispatched to on x86-64 builds;
    /// pin them to the reference here so every architecture's path stays
    /// covered by the same suite.
    #[test]
    fn portable_swar_path_matches_reference() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            for tol in [0u8, 1, 3, 127, 128, 200, 254] {
                let a = splat(len as u64 + 13, len);
                let b = splat(len as u64 * 17 + 5, len);
                let n = reference::count_over(&a, &b, tol);
                assert_eq!(swar_count_over(&a, &b, tol), n, "len {len} tol {tol}");
                for limit in [0, n.saturating_sub(1), n, n + 1, u64::MAX - 1] {
                    assert_eq!(
                        swar_exceeds(&a, &b, tol, limit),
                        n > limit,
                        "len {len} tol {tol} limit {limit}"
                    );
                }
            }
        }
    }
}
