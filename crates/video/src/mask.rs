//! Image masks: handling legitimate non-determinism between executions.
//!
//! The matcher compares frames against annotated ending images, but parts
//! of the screen differ legitimately between runs — the status-bar clock,
//! a rotating advertisement, a blinking cursor (Figure 8 of the paper). A
//! [`Mask`] excludes such regions from comparison. Standard masks for the
//! common cases ship in [`Mask::status_bar`] and friends; fully custom
//! rectangle sets are supported, as in the paper's annotation GUI.

use serde::{Deserialize, Serialize};

use crate::frame::{FrameBuffer, Rect};
use crate::kernel;

/// A set of excluded rectangles: pixels inside any rectangle are ignored
/// when comparing frames.
///
/// # Examples
///
/// ```
/// use interlag_video::frame::{FrameBuffer, Rect};
/// use interlag_video::mask::Mask;
///
/// let mut a = FrameBuffer::new(32, 32);
/// let mut b = a.clone();
/// b.fill_rect(Rect::new(0, 0, 32, 4), 255); // clock area changed
/// let mask = Mask::new().with_excluded(Rect::new(0, 0, 32, 4));
/// assert_eq!(mask.count_diff(&a, &b, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mask {
    excluded: Vec<Rect>,
}

impl Mask {
    /// A mask that excludes nothing.
    pub fn new() -> Self {
        Mask::default()
    }

    /// Adds an excluded rectangle (builder style).
    pub fn with_excluded(mut self, rect: Rect) -> Self {
        self.excluded.push(rect);
        self
    }

    /// Adds an excluded rectangle.
    pub fn exclude(&mut self, rect: Rect) {
        self.excluded.push(rect);
    }

    /// The excluded rectangles.
    pub fn excluded(&self) -> &[Rect] {
        &self.excluded
    }

    /// `true` if the mask hides nothing.
    pub fn is_empty(&self) -> bool {
        self.excluded.is_empty()
    }

    /// `true` if `(x, y)` is hidden from comparison.
    pub fn is_excluded(&self, x: u32, y: u32) -> bool {
        self.excluded.iter().any(|r| r.contains(x, y))
    }

    /// The standard mask for a device's status bar (top `rows` pixel rows:
    /// clock, battery, signal indicators).
    pub fn status_bar(width: u32, rows: u32) -> Self {
        Mask::new().with_excluded(Rect::new(0, 0, width, rows))
    }

    /// Number of pixels differing by more than `value_tolerance` outside
    /// the mask.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    pub fn count_diff(&self, a: &FrameBuffer, b: &FrameBuffer, value_tolerance: u8) -> u64 {
        if self.is_empty() {
            return a.count_diff(b, value_tolerance);
        }
        assert_eq!(
            (a.width(), a.height()),
            (b.width(), b.height()),
            "cannot compare frames of different dimensions"
        );
        let mut count = 0u64;
        let (w, h) = (a.width(), a.height());
        let pa = a.pixels();
        let pb = b.pixels();
        for y in 0..h {
            // Precompute the excluded x-spans of this row to keep the
            // inner loop branch-light.
            let row = (y * w) as usize;
            'pixel: for x in 0..w {
                for r in &self.excluded {
                    if r.contains(x, y) {
                        continue 'pixel;
                    }
                }
                let i = row + x as usize;
                if pa[i].abs_diff(pb[i]) > value_tolerance {
                    count += 1;
                }
            }
        }
        count
    }

    /// `true` if more than `limit` unmasked pixels differ by more than
    /// `value_tolerance` — the early-exit form of [`Mask::count_diff`],
    /// scanning only until the verdict is decided.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    pub fn differs_more_than(
        &self,
        a: &FrameBuffer,
        b: &FrameBuffer,
        value_tolerance: u8,
        limit: u64,
    ) -> bool {
        if self.is_empty() {
            return a.differs_more_than(b, value_tolerance, limit);
        }
        self.compile(a.width(), a.height()).differs_more_than(a, b, value_tolerance, limit)
    }

    /// Compiles the rectangle list into per-row *included* pixel intervals
    /// for a `width × height` frame. The naive comparison asks "is this
    /// pixel inside any excluded rect?" once per pixel — O(rects) in the
    /// inner loop. The compiled form pays that cost once and then compares
    /// whole included spans with no per-pixel mask test at all. Compile
    /// once per annotation and reuse across every frame of every run.
    pub fn compile(&self, width: u32, height: u32) -> CompiledMask {
        let mut rows = Vec::with_capacity(height as usize);
        let mut visible = 0u64;
        for y in 0..height {
            // Clip the rects crossing this row to the frame, then merge.
            let mut excluded: Vec<(u32, u32)> = self
                .excluded
                .iter()
                .filter(|r| y >= r.y0 && y < r.y1)
                .map(|r| (r.x0.min(width), r.x1.min(width)))
                .filter(|(x0, x1)| x0 < x1)
                .collect();
            excluded.sort_unstable();
            // Complement into included spans.
            let mut included = Vec::new();
            let mut cursor = 0u32;
            for (x0, x1) in excluded {
                if x0 > cursor {
                    included.push((cursor, x0));
                }
                cursor = cursor.max(x1);
            }
            if cursor < width {
                included.push((cursor, width));
            }
            visible += included.iter().map(|&(x0, x1)| (x1 - x0) as u64).sum::<u64>();
            rows.push(included);
        }
        CompiledMask { width, height, rows, visible }
    }

    /// Pixel count left visible by the mask for a `width × height` frame.
    pub fn visible_area(&self, width: u32, height: u32) -> u64 {
        let mut n = 0u64;
        for y in 0..height {
            for x in 0..width {
                if !self.is_excluded(x, y) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Paints the excluded regions of `frame` black; annotation databases
    /// store ending images with their mask burned in so the stored image
    /// never leaks masked content.
    pub fn apply(&self, frame: &mut FrameBuffer) {
        for r in &self.excluded {
            frame.fill_rect(*r, 0);
        }
    }
}

impl FromIterator<Rect> for Mask {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Mask { excluded: iter.into_iter().collect() }
    }
}

/// A [`Mask`] compiled for one frame size: per-row lists of *included*
/// `[x0, x1)` pixel intervals (see [`Mask::compile`]). Comparison walks
/// the included spans directly, so the per-pixel work is identical to an
/// unmasked compare regardless of how many rectangles the mask holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledMask {
    width: u32,
    height: u32,
    rows: Vec<Vec<(u32, u32)>>,
    visible: u64,
}

impl CompiledMask {
    /// Width of the frames this mask was compiled for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height of the frames this mask was compiled for.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel count left visible by the mask.
    pub fn visible_area(&self) -> u64 {
        self.visible
    }

    /// `true` if the mask hides no pixel of the frame, in which case whole-
    /// frame fast paths (digest compare, memcmp) are sound.
    pub fn is_unobstructed(&self) -> bool {
        self.visible == self.width as u64 * self.height as u64
    }

    fn check_dims(&self, a: &FrameBuffer, b: &FrameBuffer) {
        assert_eq!(
            (self.width, self.height),
            (a.width(), a.height()),
            "frame does not match compiled mask dimensions"
        );
        assert_eq!(
            (a.width(), a.height()),
            (b.width(), b.height()),
            "cannot compare frames of different dimensions"
        );
    }

    /// Number of unmasked pixels differing by more than `value_tolerance`;
    /// agrees exactly with [`Mask::count_diff`] on the mask it was compiled
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if either frame's dimensions differ from the compiled size.
    pub fn count_diff(&self, a: &FrameBuffer, b: &FrameBuffer, value_tolerance: u8) -> u64 {
        self.check_dims(a, b);
        self.count_diff_pixels(a.pixels(), b.pixels(), value_tolerance)
    }

    /// [`CompiledMask::count_diff`] over raw row-major pixel slices — the
    /// form arena-backed matching uses, where the candidate frame is a
    /// slice of one big allocation rather than a [`FrameBuffer`]. Each
    /// included span runs through the word kernels ([`crate::kernel`]).
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from the compiled
    /// `width × height`.
    pub fn count_diff_pixels(&self, a: &[u8], b: &[u8], value_tolerance: u8) -> u64 {
        self.check_len(a, b);
        let mut count = 0u64;
        for (y, spans) in self.rows.iter().enumerate() {
            let row = y * self.width as usize;
            for &(x0, x1) in spans {
                let (s, e) = (row + x0 as usize, row + x1 as usize);
                count += kernel::count_over(&a[s..e], &b[s..e], value_tolerance);
            }
        }
        count
    }

    /// Early-exit form of [`CompiledMask::count_diff`]: `true` as soon as
    /// more than `limit` unmasked pixels differ by more than
    /// `value_tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if either frame's dimensions differ from the compiled size.
    pub fn differs_more_than(
        &self,
        a: &FrameBuffer,
        b: &FrameBuffer,
        value_tolerance: u8,
        limit: u64,
    ) -> bool {
        self.check_dims(a, b);
        self.differs_more_than_pixels(a.pixels(), b.pixels(), value_tolerance, limit)
    }

    /// [`CompiledMask::differs_more_than`] over raw row-major pixel
    /// slices; see [`CompiledMask::count_diff_pixels`].
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from the compiled
    /// `width × height`.
    pub fn differs_more_than_pixels(
        &self,
        a: &[u8],
        b: &[u8],
        value_tolerance: u8,
        limit: u64,
    ) -> bool {
        self.check_len(a, b);
        if value_tolerance == 0 && limit == 0 {
            // Bit-exact with zero budget: one memcmp per included span.
            for (y, spans) in self.rows.iter().enumerate() {
                let row = y * self.width as usize;
                for &(x0, x1) in spans {
                    let (s, e) = (row + x0 as usize, row + x1 as usize);
                    if a[s..e] != b[s..e] {
                        return true;
                    }
                }
            }
            return false;
        }
        let mut over = 0u64;
        for (y, spans) in self.rows.iter().enumerate() {
            let row = y * self.width as usize;
            for &(x0, x1) in spans {
                let (s, e) = (row + x0 as usize, row + x1 as usize);
                over += kernel::count_over(&a[s..e], &b[s..e], value_tolerance);
                if over > limit {
                    return true;
                }
            }
        }
        false
    }

    fn check_len(&self, a: &[u8], b: &[u8]) {
        let expect = self.width as usize * self.height as usize;
        assert_eq!(a.len(), expect, "pixel slice does not match compiled mask dimensions");
        assert_eq!(b.len(), expect, "pixel slice does not match compiled mask dimensions");
    }
}

/// Frame-comparison tolerances used together with a [`Mask`].
///
/// `value_tolerance` absorbs capture noise (each pixel may deviate by this
/// much and still match); `pixel_budget` absorbs sparse artifacts (this many
/// pixels may mismatch outright). HDMI captures are clean and work with
/// `EXACT`; camera captures need looser settings — quantified in the
/// `capture_noise` ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchTolerance {
    /// Maximum per-pixel value difference that still counts as equal.
    pub value_tolerance: u8,
    /// Maximum number of (unmasked) mismatching pixels.
    pub pixel_budget: u64,
}

impl MatchTolerance {
    /// Bit-exact comparison: what a clean HDMI capture allows.
    pub const EXACT: MatchTolerance = MatchTolerance { value_tolerance: 0, pixel_budget: 0 };

    /// A tolerance suitable for mild sensor noise.
    pub const CAMERA: MatchTolerance = MatchTolerance { value_tolerance: 8, pixel_budget: 64 };

    /// `true` if this tolerance is bit-exact with zero budget, for which
    /// digest comparison is a sound negative filter.
    fn is_exact(&self) -> bool {
        self.value_tolerance == 0 && self.pixel_budget == 0
    }

    /// `true` if `a` matches `b` under `mask` within this tolerance.
    ///
    /// Exact-tolerance unmasked matching is digest-gated: a cached 64-bit
    /// content digest ([`FrameBuffer::digest`]) is compared first, and the
    /// pixels are only verified in full when the digests agree — so the
    /// overwhelmingly common non-matching frame costs two word compares.
    pub fn matches(&self, mask: &Mask, a: &FrameBuffer, b: &FrameBuffer) -> bool {
        if self.is_exact() && mask.is_empty() {
            assert_eq!(
                (a.width(), a.height()),
                (b.width(), b.height()),
                "cannot compare frames of different dimensions"
            );
            if a.digest() != b.digest() {
                return false;
            }
            // Digest hit: verify, since 64-bit digests can collide.
            return a.pixels() == b.pixels();
        }
        !mask.differs_more_than(a, b, self.value_tolerance, self.pixel_budget)
    }

    /// [`MatchTolerance::matches`] against a precompiled mask — the form
    /// the matcher's inner loop uses so the rectangle list is compiled once
    /// per annotation instead of once per frame.
    ///
    /// # Panics
    ///
    /// Panics if either frame's dimensions differ from the compiled size.
    pub fn matches_compiled(&self, mask: &CompiledMask, a: &FrameBuffer, b: &FrameBuffer) -> bool {
        if self.is_exact() && mask.is_unobstructed() {
            mask.check_dims(a, b);
            if a.digest() != b.digest() {
                return false;
            }
            return a.pixels() == b.pixels();
        }
        !mask.differs_more_than(a, b, self.value_tolerance, self.pixel_budget)
    }

    /// [`MatchTolerance::matches_compiled`] where the candidate is a raw
    /// pixel slice with a precomputed content digest — the arena-backed
    /// matcher compares annotation images against
    /// [`FrameArena`](crate::arena::FrameArena) slots without ever
    /// materialising a `FrameBuffer`. Agrees exactly with
    /// `matches_compiled` on the same content.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimensions or `b`'s length differ from the
    /// compiled size.
    pub fn matches_pixels(
        &self,
        mask: &CompiledMask,
        a: &FrameBuffer,
        b: &[u8],
        b_digest: u64,
    ) -> bool {
        if self.is_exact() && mask.is_unobstructed() {
            assert_eq!(
                (mask.width, mask.height),
                (a.width(), a.height()),
                "frame does not match compiled mask dimensions"
            );
            mask.check_len(a.pixels(), b);
            if a.digest() != b_digest {
                return false;
            }
            return a.pixels() == b;
        }
        !mask.differs_more_than_pixels(a.pixels(), b, self.value_tolerance, self.pixel_budget)
    }
}

impl Default for MatchTolerance {
    fn default() -> Self {
        MatchTolerance::EXACT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_counts_everything() {
        let mut a = FrameBuffer::new(8, 8);
        let b = FrameBuffer::new(8, 8);
        a.fill(9);
        assert_eq!(Mask::new().count_diff(&a, &b, 0), 64);
    }

    #[test]
    fn excluded_region_is_ignored() {
        let a = FrameBuffer::new(16, 16);
        let mut b = a.clone();
        b.fill_rect(Rect::new(4, 4, 4, 4), 255);
        let mask = Mask::new().with_excluded(Rect::new(4, 4, 4, 4));
        assert_eq!(mask.count_diff(&a, &b, 0), 0);
        // One pixel outside the mask still trips it.
        b.set(0, 0, 255);
        assert_eq!(mask.count_diff(&a, &b, 0), 1);
    }

    #[test]
    fn overlapping_excluded_rects_do_not_double_count() {
        let mask =
            Mask::new().with_excluded(Rect::new(0, 0, 4, 4)).with_excluded(Rect::new(2, 2, 4, 4));
        assert_eq!(mask.visible_area(8, 8), 64 - (16 + 16 - 4));
    }

    #[test]
    fn status_bar_mask_covers_top_rows() {
        let mask = Mask::status_bar(32, 3);
        assert!(mask.is_excluded(31, 2));
        assert!(!mask.is_excluded(0, 3));
    }

    #[test]
    fn apply_burns_mask_into_frame() {
        let mut f = FrameBuffer::new(8, 8);
        f.fill(200);
        let mask = Mask::status_bar(8, 2);
        mask.apply(&mut f);
        assert_eq!(f.get(0, 0), 0);
        assert_eq!(f.get(0, 2), 200);
    }

    #[test]
    fn tolerance_budget_and_value() {
        let a = FrameBuffer::new(8, 8);
        let mut b = a.clone();
        b.set(1, 1, 5);
        b.set(2, 2, 5);
        let mask = Mask::new();
        assert!(!MatchTolerance::EXACT.matches(&mask, &a, &b));
        let loose = MatchTolerance { value_tolerance: 4, pixel_budget: 0 };
        assert!(!loose.matches(&mask, &a, &b));
        let looser = MatchTolerance { value_tolerance: 0, pixel_budget: 2 };
        assert!(looser.matches(&mask, &a, &b));
        assert!(MatchTolerance::CAMERA.matches(&mask, &a, &b));
    }

    #[test]
    fn compiled_mask_agrees_with_naive() {
        let mask = Mask::new()
            .with_excluded(Rect::new(0, 0, 16, 2))
            .with_excluded(Rect::new(4, 1, 6, 10)) // overlaps the bar
            .with_excluded(Rect::new(12, 6, 20, 4)); // clipped at x = 16
        let cm = mask.compile(16, 12);
        assert_eq!(cm.visible_area(), mask.visible_area(16, 12));
        assert!(!cm.is_unobstructed());
        assert!(Mask::new().compile(16, 12).is_unobstructed());

        let mut a = FrameBuffer::new(16, 12);
        let mut b = FrameBuffer::new(16, 12);
        a.hash_paint(Rect::new(0, 0, 16, 12), 5);
        b.hash_paint(Rect::new(0, 0, 16, 12), 6);
        for tol in [0u8, 8, 128] {
            let naive = mask.count_diff(&a, &b, tol);
            assert_eq!(cm.count_diff(&a, &b, tol), naive);
            for limit in [0u64, naive.saturating_sub(1), naive, naive + 5] {
                assert_eq!(cm.differs_more_than(&a, &b, tol, limit), naive > limit);
                assert_eq!(mask.differs_more_than(&a, &b, tol, limit), naive > limit);
            }
        }
    }

    #[test]
    fn fully_excluded_row_has_no_spans() {
        let mask = Mask::new().with_excluded(Rect::new(0, 0, 8, 8));
        let cm = mask.compile(8, 8);
        assert_eq!(cm.visible_area(), 0);
        let mut a = FrameBuffer::new(8, 8);
        let b = FrameBuffer::new(8, 8);
        a.fill(255);
        assert_eq!(cm.count_diff(&a, &b, 0), 0);
        assert!(!cm.differs_more_than(&a, &b, 0, 0));
    }

    #[test]
    fn digest_gate_agrees_with_full_compare() {
        let mut a = FrameBuffer::new(16, 16);
        a.hash_paint(Rect::new(0, 0, 16, 16), 3);
        let same = a.clone();
        let mut other = a.clone();
        other.set(5, 5, a.get(5, 5).wrapping_add(1));

        let mask = Mask::new();
        let cm = mask.compile(16, 16);
        assert!(MatchTolerance::EXACT.matches(&mask, &a, &same));
        assert!(!MatchTolerance::EXACT.matches(&mask, &a, &other));
        assert!(MatchTolerance::EXACT.matches_compiled(&cm, &a, &same));
        assert!(!MatchTolerance::EXACT.matches_compiled(&cm, &a, &other));
    }

    #[test]
    fn matches_compiled_agrees_with_matches() {
        let mask = Mask::status_bar(16, 2);
        let cm = mask.compile(16, 16);
        let mut a = FrameBuffer::new(16, 16);
        a.hash_paint(Rect::new(0, 0, 16, 16), 11);
        let mut b = a.clone();
        b.fill_rect(Rect::new(0, 0, 16, 2), 123); // only the masked bar
        for tol in [MatchTolerance::EXACT, MatchTolerance::CAMERA] {
            assert_eq!(tol.matches(&mask, &a, &b), tol.matches_compiled(&cm, &a, &b));
            assert!(tol.matches_compiled(&cm, &a, &b));
        }
        b.set(8, 8, b.get(8, 8).wrapping_add(50)); // outside the mask
        assert!(!MatchTolerance::EXACT.matches_compiled(&cm, &a, &b));
    }

    #[test]
    fn mask_from_iterator() {
        let mask: Mask = vec![Rect::new(0, 0, 1, 1), Rect::new(2, 2, 1, 1)].into_iter().collect();
        assert_eq!(mask.excluded().len(), 2);
    }
}
