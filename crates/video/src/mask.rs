//! Image masks: handling legitimate non-determinism between executions.
//!
//! The matcher compares frames against annotated ending images, but parts
//! of the screen differ legitimately between runs — the status-bar clock,
//! a rotating advertisement, a blinking cursor (Figure 8 of the paper). A
//! [`Mask`] excludes such regions from comparison. Standard masks for the
//! common cases ship in [`Mask::status_bar`] and friends; fully custom
//! rectangle sets are supported, as in the paper's annotation GUI.

use serde::{Deserialize, Serialize};

use crate::frame::{FrameBuffer, Rect};

/// A set of excluded rectangles: pixels inside any rectangle are ignored
/// when comparing frames.
///
/// # Examples
///
/// ```
/// use interlag_video::frame::{FrameBuffer, Rect};
/// use interlag_video::mask::Mask;
///
/// let mut a = FrameBuffer::new(32, 32);
/// let mut b = a.clone();
/// b.fill_rect(Rect::new(0, 0, 32, 4), 255); // clock area changed
/// let mask = Mask::new().with_excluded(Rect::new(0, 0, 32, 4));
/// assert_eq!(mask.count_diff(&a, &b, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mask {
    excluded: Vec<Rect>,
}

impl Mask {
    /// A mask that excludes nothing.
    pub fn new() -> Self {
        Mask::default()
    }

    /// Adds an excluded rectangle (builder style).
    pub fn with_excluded(mut self, rect: Rect) -> Self {
        self.excluded.push(rect);
        self
    }

    /// Adds an excluded rectangle.
    pub fn exclude(&mut self, rect: Rect) {
        self.excluded.push(rect);
    }

    /// The excluded rectangles.
    pub fn excluded(&self) -> &[Rect] {
        &self.excluded
    }

    /// `true` if the mask hides nothing.
    pub fn is_empty(&self) -> bool {
        self.excluded.is_empty()
    }

    /// `true` if `(x, y)` is hidden from comparison.
    pub fn is_excluded(&self, x: u32, y: u32) -> bool {
        self.excluded.iter().any(|r| r.contains(x, y))
    }

    /// The standard mask for a device's status bar (top `rows` pixel rows:
    /// clock, battery, signal indicators).
    pub fn status_bar(width: u32, rows: u32) -> Self {
        Mask::new().with_excluded(Rect::new(0, 0, width, rows))
    }

    /// Number of pixels differing by more than `value_tolerance` outside
    /// the mask.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different dimensions.
    pub fn count_diff(&self, a: &FrameBuffer, b: &FrameBuffer, value_tolerance: u8) -> u64 {
        if self.is_empty() {
            return a.count_diff(b, value_tolerance);
        }
        assert_eq!(
            (a.width(), a.height()),
            (b.width(), b.height()),
            "cannot compare frames of different dimensions"
        );
        let mut count = 0u64;
        let (w, h) = (a.width(), a.height());
        let pa = a.pixels();
        let pb = b.pixels();
        for y in 0..h {
            // Precompute the excluded x-spans of this row to keep the
            // inner loop branch-light.
            let row = (y * w) as usize;
            'pixel: for x in 0..w {
                for r in &self.excluded {
                    if r.contains(x, y) {
                        continue 'pixel;
                    }
                }
                let i = row + x as usize;
                if pa[i].abs_diff(pb[i]) > value_tolerance {
                    count += 1;
                }
            }
        }
        count
    }

    /// Pixel count left visible by the mask for a `width × height` frame.
    pub fn visible_area(&self, width: u32, height: u32) -> u64 {
        let mut n = 0u64;
        for y in 0..height {
            for x in 0..width {
                if !self.is_excluded(x, y) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Paints the excluded regions of `frame` black; annotation databases
    /// store ending images with their mask burned in so the stored image
    /// never leaks masked content.
    pub fn apply(&self, frame: &mut FrameBuffer) {
        for r in &self.excluded {
            frame.fill_rect(*r, 0);
        }
    }
}

impl FromIterator<Rect> for Mask {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Mask { excluded: iter.into_iter().collect() }
    }
}

/// Frame-comparison tolerances used together with a [`Mask`].
///
/// `value_tolerance` absorbs capture noise (each pixel may deviate by this
/// much and still match); `pixel_budget` absorbs sparse artifacts (this many
/// pixels may mismatch outright). HDMI captures are clean and work with
/// `EXACT`; camera captures need looser settings — quantified in the
/// `capture_noise` ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchTolerance {
    /// Maximum per-pixel value difference that still counts as equal.
    pub value_tolerance: u8,
    /// Maximum number of (unmasked) mismatching pixels.
    pub pixel_budget: u64,
}

impl MatchTolerance {
    /// Bit-exact comparison: what a clean HDMI capture allows.
    pub const EXACT: MatchTolerance = MatchTolerance { value_tolerance: 0, pixel_budget: 0 };

    /// A tolerance suitable for mild sensor noise.
    pub const CAMERA: MatchTolerance = MatchTolerance { value_tolerance: 8, pixel_budget: 64 };

    /// `true` if `a` matches `b` under `mask` within this tolerance.
    pub fn matches(&self, mask: &Mask, a: &FrameBuffer, b: &FrameBuffer) -> bool {
        mask.count_diff(a, b, self.value_tolerance) <= self.pixel_budget
    }
}

impl Default for MatchTolerance {
    fn default() -> Self {
        MatchTolerance::EXACT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_counts_everything() {
        let mut a = FrameBuffer::new(8, 8);
        let b = FrameBuffer::new(8, 8);
        a.fill(9);
        assert_eq!(Mask::new().count_diff(&a, &b, 0), 64);
    }

    #[test]
    fn excluded_region_is_ignored() {
        let a = FrameBuffer::new(16, 16);
        let mut b = a.clone();
        b.fill_rect(Rect::new(4, 4, 4, 4), 255);
        let mask = Mask::new().with_excluded(Rect::new(4, 4, 4, 4));
        assert_eq!(mask.count_diff(&a, &b, 0), 0);
        // One pixel outside the mask still trips it.
        b.set(0, 0, 255);
        assert_eq!(mask.count_diff(&a, &b, 0), 1);
    }

    #[test]
    fn overlapping_excluded_rects_do_not_double_count() {
        let mask = Mask::new()
            .with_excluded(Rect::new(0, 0, 4, 4))
            .with_excluded(Rect::new(2, 2, 4, 4));
        assert_eq!(mask.visible_area(8, 8), 64 - (16 + 16 - 4));
    }

    #[test]
    fn status_bar_mask_covers_top_rows() {
        let mask = Mask::status_bar(32, 3);
        assert!(mask.is_excluded(31, 2));
        assert!(!mask.is_excluded(0, 3));
    }

    #[test]
    fn apply_burns_mask_into_frame() {
        let mut f = FrameBuffer::new(8, 8);
        f.fill(200);
        let mask = Mask::status_bar(8, 2);
        mask.apply(&mut f);
        assert_eq!(f.get(0, 0), 0);
        assert_eq!(f.get(0, 2), 200);
    }

    #[test]
    fn tolerance_budget_and_value() {
        let a = FrameBuffer::new(8, 8);
        let mut b = a.clone();
        b.set(1, 1, 5);
        b.set(2, 2, 5);
        let mask = Mask::new();
        assert!(!MatchTolerance::EXACT.matches(&mask, &a, &b));
        let loose = MatchTolerance { value_tolerance: 4, pixel_budget: 0 };
        assert!(!loose.matches(&mask, &a, &b));
        let looser = MatchTolerance { value_tolerance: 0, pixel_budget: 2 };
        assert!(looser.matches(&mask, &a, &b));
        assert!(MatchTolerance::CAMERA.matches(&mask, &a, &b));
    }

    #[test]
    fn mask_from_iterator() {
        let mask: Mask = vec![Rect::new(0, 0, 1, 1), Rect::new(2, 2, 1, 1)]
            .into_iter()
            .collect();
        assert_eq!(mask.excluded().len(), 2);
    }
}
