//! Capture paths: how the device's screen becomes an analysable video.
//!
//! The paper first tried pointing a camera at the phone and found the
//! artifacts made frame comparison impractical; the final setup taps the
//! HDMI output into an Elgato Game Capture HD for a pixel-exact stream
//! (§II-C). Both paths are modelled:
//!
//! * [`HdmiCapture`] — lossless; consecutive identical frames share one
//!   allocation, which is what makes day-long captures affordable.
//! * [`CameraCapture`] — adds deterministic sensor noise and a slow
//!   brightness wobble, reproducing why exact matching fails without
//!   tolerances (the `capture_noise` ablation bench quantifies it).

use std::sync::Arc;

use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};

use crate::frame::FrameBuffer;
use crate::stream::{VideoError, VideoStream};

/// A device that turns screen contents into captured frames.
///
/// Implementations may transform the pixels (noise, rolling brightness) but
/// never drop or reorder frames; frame pacing is the recorder's job.
pub trait CaptureLink {
    /// Captures the screen contents `screen` at time `time`.
    fn capture(&mut self, time: SimTime, screen: &FrameBuffer) -> Arc<FrameBuffer>;
}

/// Lossless HDMI capture with identical-frame deduplication.
#[derive(Debug, Default)]
pub struct HdmiCapture {
    last: Option<Arc<FrameBuffer>>,
}

impl HdmiCapture {
    /// Creates the capture link.
    pub fn new() -> Self {
        HdmiCapture::default()
    }
}

impl CaptureLink for HdmiCapture {
    fn capture(&mut self, _time: SimTime, screen: &FrameBuffer) -> Arc<FrameBuffer> {
        if let Some(last) = &self.last {
            if last.as_ref() == screen {
                return last.clone();
            }
        }
        let shared = Arc::new(screen.clone());
        self.last = Some(shared.clone());
        shared
    }
}

/// Camera capture: per-pixel sensor noise plus a slow global brightness
/// wobble (auto-exposure hunting).
#[derive(Debug)]
pub struct CameraCapture {
    rng: SplitMix64,
    /// Peak per-pixel noise amplitude (uniform in `[-amp, +amp]`).
    noise_amplitude: u8,
    /// Peak brightness offset of the exposure wobble.
    wobble_amplitude: u8,
    /// Wobble period.
    wobble_period: SimDuration,
}

impl CameraCapture {
    /// Creates a camera link with typical smartphone-camera noise.
    pub fn new(seed: u64) -> Self {
        CameraCapture {
            rng: SplitMix64::new(seed),
            noise_amplitude: 3,
            wobble_amplitude: 4,
            wobble_period: SimDuration::from_secs(7),
        }
    }

    /// Overrides the per-pixel noise amplitude.
    pub fn with_noise_amplitude(mut self, amp: u8) -> Self {
        self.noise_amplitude = amp;
        self
    }
}

impl CaptureLink for CameraCapture {
    fn capture(&mut self, time: SimTime, screen: &FrameBuffer) -> Arc<FrameBuffer> {
        let mut out = screen.clone();
        // Triangle-wave exposure wobble.
        let phase = (time.as_micros() % self.wobble_period.as_micros()) as f64
            / self.wobble_period.as_micros() as f64;
        let tri = if phase < 0.5 { phase * 2.0 } else { 2.0 - phase * 2.0 };
        let offset = (tri * 2.0 - 1.0) * self.wobble_amplitude as f64;
        let amp = self.noise_amplitude as i64;
        for p in out.pixels_mut() {
            let noise = self.rng.next_range(-amp, amp);
            let v = *p as i64 + noise + offset.round() as i64;
            *p = v.clamp(0, 255) as u8;
        }
        Arc::new(out)
    }
}

/// Records a screen through a capture link into a [`VideoStream`] at a
/// fixed frame rate.
///
/// Drive it from the simulation loop with [`VideoRecorder::poll`]; it
/// samples the screen whenever a frame boundary has passed.
#[derive(Debug)]
pub struct VideoRecorder<L> {
    link: L,
    stream: VideoStream,
    frame_period: SimDuration,
    next_sample: SimTime,
}

impl<L: CaptureLink> VideoRecorder<L> {
    /// Creates a recorder sampling every `frame_period`.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(link: L, frame_period: SimDuration) -> Self {
        VideoRecorder {
            link,
            stream: VideoStream::new(frame_period),
            frame_period,
            next_sample: SimTime::ZERO,
        }
    }

    /// Samples the screen if one or more frame boundaries have passed.
    /// Call with monotonically non-decreasing `now`. If the loop stalls
    /// past several boundaries the *current* screen contents are recorded
    /// for each missed boundary, mirroring how a capture box repeats the
    /// live signal.
    ///
    /// # Errors
    ///
    /// Propagates [`VideoError`] from the underlying stream; the recorder
    /// samples on a strictly increasing grid, so this only fires if a
    /// caller rewound time between polls.
    pub fn poll(&mut self, now: SimTime, screen: &FrameBuffer) -> Result<(), VideoError> {
        while self.next_sample <= now {
            let t = self.next_sample;
            let frame = self.link.capture(t, screen);
            self.stream.push(t, frame)?;
            self.next_sample = t + self.frame_period;
        }
        Ok(())
    }

    /// When the next frame is due; lets event-driven loops sleep exactly
    /// until then.
    pub fn next_due(&self) -> SimTime {
        self.next_sample
    }

    /// The recording so far.
    pub fn stream(&self) -> &VideoStream {
        &self.stream
    }

    /// Stops recording and hands over the video file.
    pub fn into_stream(self) -> VideoStream {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::FRAME_PERIOD_30FPS;

    #[test]
    fn hdmi_capture_is_lossless_and_dedups() {
        let mut link = HdmiCapture::new();
        let mut screen = FrameBuffer::new(8, 8);
        screen.fill(42);
        let a = link.capture(SimTime::ZERO, &screen);
        let b = link.capture(SimTime::from_millis(33), &screen);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.as_ref(), &screen);
        screen.set(0, 0, 7);
        let c = link.capture(SimTime::from_millis(66), &screen);
        assert!(!Arc::ptr_eq(&b, &c));
        assert_eq!(c.get(0, 0), 7);
    }

    #[test]
    fn camera_capture_is_noisy_but_bounded() {
        let mut link = CameraCapture::new(3);
        let mut screen = FrameBuffer::new(16, 16);
        screen.fill(128);
        let shot = link.capture(SimTime::from_secs(1), &screen);
        assert!(shot.count_diff(&screen, 0) > 0, "camera should add noise");
        assert_eq!(shot.count_diff(&screen, 8), 0, "noise bounded by amp+wobble");
    }

    #[test]
    fn camera_capture_is_deterministic_per_seed() {
        let mut screen = FrameBuffer::new(8, 8);
        screen.fill(90);
        let a = CameraCapture::new(11).capture(SimTime::from_secs(2), &screen);
        let b = CameraCapture::new(11).capture(SimTime::from_secs(2), &screen);
        assert_eq!(a.as_ref(), b.as_ref());
    }

    #[test]
    fn recorder_samples_at_frame_rate() {
        let mut rec = VideoRecorder::new(HdmiCapture::new(), FRAME_PERIOD_30FPS);
        let screen = FrameBuffer::new(4, 4);
        // Advance one second in 1 ms steps.
        for ms in 0..=1_000 {
            rec.poll(SimTime::from_millis(ms), &screen).unwrap();
        }
        let n = rec.stream().len();
        assert!((30..=32).contains(&n), "expected ~31 frames, got {n}");
        assert_eq!(rec.stream().unique_frames(), 1);
    }

    #[test]
    fn recorder_catches_up_after_a_stall() {
        let mut rec = VideoRecorder::new(HdmiCapture::new(), FRAME_PERIOD_30FPS);
        let screen = FrameBuffer::new(4, 4);
        rec.poll(SimTime::ZERO, &screen).unwrap();
        rec.poll(SimTime::from_secs(1), &screen).unwrap(); // a 1 s stall
        assert!(rec.stream().len() >= 30);
        // Timestamps stay on the frame grid.
        for f in rec.stream().iter() {
            assert_eq!(f.time.as_micros() % FRAME_PERIOD_30FPS.as_micros(), 0);
        }
    }
}
