//! Text manifests for video streams: an importable description of a
//! capture, hardened against truncated and corrupted files.
//!
//! The capture box writes its recordings to disk as a frame directory
//! plus a manifest naming the frames and their presentation times. When a
//! study ingests such a recording, the manifest is the trust boundary:
//! multi-hour batch runs meet files cut short by full disks, frames that
//! were never flushed, and timestamps mangled by clock steps. The loader
//! therefore never panics — every defect becomes a typed
//! [`ManifestError`] with the 1-based line it was found on — and offers a
//! salvage mode that drops defective frame references instead of failing.
//!
//! # Format
//!
//! ```text
//! interlag-video-manifest v1
//! period_us 33333
//! frame splash 64x48 1234abcd
//! at 0 splash
//! at 33333 splash
//! ```
//!
//! `frame <id> <w>x<h> <seed>` declares a frame rendered deterministically
//! from its seed; `at <time_us> <id>` schedules a presentation of it.
//! Presentations must be strictly monotonic and may only reference
//! declared frames.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use interlag_evdev::time::{SimDuration, SimTime};

use crate::frame::FrameBuffer;
use crate::stream::VideoStream;

/// The header every manifest must start with.
pub const MANIFEST_HEADER: &str = "interlag-video-manifest v1";

/// What was wrong with a manifest line.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ManifestDefect {
    /// The first line was not [`MANIFEST_HEADER`] (or the file was empty).
    BadHeader,
    /// The `period_us` line was missing, malformed, or zero.
    BadPeriod,
    /// A line was not a `frame` or `at` directive.
    UnknownDirective(String),
    /// A `frame` or `at` line had missing or malformed fields.
    BadField(String),
    /// Two `frame` directives declared the same id.
    DuplicateFrame(String),
    /// An `at` directive referenced a frame never declared.
    MissingFrame(String),
    /// An `at` timestamp was at or before its predecessor.
    NonMonotonicTimestamp,
}

impl fmt::Display for ManifestDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestDefect::BadHeader => write!(f, "missing '{MANIFEST_HEADER}' header"),
            ManifestDefect::BadPeriod => write!(f, "missing or invalid period_us"),
            ManifestDefect::UnknownDirective(d) => write!(f, "unknown directive {d:?}"),
            ManifestDefect::BadField(what) => write!(f, "{what}"),
            ManifestDefect::DuplicateFrame(id) => write!(f, "frame {id:?} declared twice"),
            ManifestDefect::MissingFrame(id) => {
                write!(f, "presentation references undeclared frame {id:?}")
            }
            ManifestDefect::NonMonotonicTimestamp => {
                write!(f, "presentation timestamps must be strictly increasing")
            }
        }
    }
}

/// A manifest defect located on its line.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ManifestError {
    /// 1-based line the defect was found on.
    pub line: usize,
    /// The defect itself.
    pub defect: ManifestDefect,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.defect)
    }
}

impl std::error::Error for ManifestError {}

/// What salvage-mode parsing recovered.
#[derive(Debug, Clone)]
pub struct SalvagedStream {
    /// The stream built from every intact presentation.
    pub stream: VideoStream,
    /// The defects that were dropped, in file order.
    pub dropped: Vec<ManifestError>,
}

/// Parses a manifest strictly: the first defect aborts the load.
///
/// # Errors
///
/// The first [`ManifestError`] encountered, with its line number.
pub fn parse_manifest(text: &str) -> Result<VideoStream, ManifestError> {
    let (stream, defects) = parse_inner(text, true)?;
    debug_assert!(defects.is_empty(), "strict mode returns Err on the first defect");
    Ok(stream)
}

/// Parses a manifest in salvage mode: structural defects (a bad header or
/// period, without which no stream can be built) still fail, but each
/// defective `frame`/`at` line is dropped and recorded instead.
///
/// # Errors
///
/// Only [`ManifestDefect::BadHeader`] / [`ManifestDefect::BadPeriod`]; any
/// other defect is salvaged.
pub fn parse_manifest_salvage(text: &str) -> Result<SalvagedStream, ManifestError> {
    let (stream, dropped) = parse_inner(text, false)?;
    Ok(SalvagedStream { stream, dropped })
}

fn parse_inner(
    text: &str,
    strict: bool,
) -> Result<(VideoStream, Vec<ManifestError>), ManifestError> {
    let mut lines = text.lines().enumerate();

    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some(MANIFEST_HEADER) {
        return Err(ManifestError { line: 1, defect: ManifestDefect::BadHeader });
    }
    let period = lines.next().and_then(|(_, l)| {
        let rest = l.trim().strip_prefix("period_us")?;
        rest.trim().parse::<u64>().ok().filter(|&p| p > 0)
    });
    let Some(period) = period else {
        return Err(ManifestError { line: 2, defect: ManifestDefect::BadPeriod });
    };

    let mut frames: BTreeMap<String, Arc<FrameBuffer>> = BTreeMap::new();
    let mut stream = VideoStream::new(SimDuration::from_micros(period));
    let mut last_time: Option<SimTime> = None;
    let mut dropped = Vec::new();

    for (idx, raw_line) in lines {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_directive(line, &mut frames, &mut last_time) {
            Ok(Some((time, buf))) => {
                // `last_time` already enforced monotonicity, so this
                // cannot fail; keep the error path anyway.
                if stream.push(time, buf).is_err() {
                    let err = ManifestError {
                        line: line_no,
                        defect: ManifestDefect::NonMonotonicTimestamp,
                    };
                    if strict {
                        return Err(err);
                    }
                    dropped.push(err);
                }
            }
            Ok(None) => {}
            Err(defect) => {
                let err = ManifestError { line: line_no, defect };
                if strict {
                    return Err(err);
                }
                dropped.push(err);
            }
        }
    }
    Ok((stream, dropped))
}

/// Parses one non-blank body line. `Ok(Some(_))` is a presentation to
/// push; `Ok(None)` declared a frame.
fn parse_directive(
    line: &str,
    frames: &mut BTreeMap<String, Arc<FrameBuffer>>,
    last_time: &mut Option<SimTime>,
) -> Result<Option<(SimTime, Arc<FrameBuffer>)>, ManifestDefect> {
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some("frame") => {
            let id = fields
                .next()
                .ok_or_else(|| ManifestDefect::BadField("frame: missing id".into()))?;
            let dims = fields
                .next()
                .ok_or_else(|| ManifestDefect::BadField("frame: missing dimensions".into()))?;
            let seed = fields
                .next()
                .ok_or_else(|| ManifestDefect::BadField("frame: missing seed".into()))?;
            if fields.next().is_some() {
                return Err(ManifestDefect::BadField("frame: trailing fields".into()));
            }
            let (w, h) = dims
                .split_once('x')
                .and_then(|(w, h)| Some((w.parse::<u32>().ok()?, h.parse::<u32>().ok()?)))
                .filter(|&(w, h)| w > 0 && h > 0 && (w as u64) * (h as u64) <= 1 << 26)
                .ok_or_else(|| {
                    ManifestDefect::BadField(format!("frame: bad dimensions {dims:?}"))
                })?;
            let seed = u64::from_str_radix(seed, 16)
                .map_err(|_| ManifestDefect::BadField(format!("frame: bad seed {seed:?}")))?;
            if frames.contains_key(id) {
                return Err(ManifestDefect::DuplicateFrame(id.to_string()));
            }
            let mut buf = FrameBuffer::new(w, h);
            buf.hash_paint(buf.bounds(), seed);
            frames.insert(id.to_string(), Arc::new(buf));
            Ok(None)
        }
        Some("at") => {
            let time = fields
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| ManifestDefect::BadField("at: bad timestamp".into()))?;
            let id = fields
                .next()
                .ok_or_else(|| ManifestDefect::BadField("at: missing frame id".into()))?;
            if fields.next().is_some() {
                return Err(ManifestDefect::BadField("at: trailing fields".into()));
            }
            let buf = frames.get(id).ok_or_else(|| ManifestDefect::MissingFrame(id.to_string()))?;
            let time = SimTime::from_micros(time);
            if last_time.is_some_and(|prev| time <= prev) {
                return Err(ManifestDefect::NonMonotonicTimestamp);
            }
            *last_time = Some(time);
            Ok(Some((time, buf.clone())))
        }
        Some(other) => Err(ManifestDefect::UnknownDirective(other.to_string())),
        None => Ok(None),
    }
}

/// Serialises a stream to manifest text, deduplicating identical frames by
/// their digest. Round-trips through [`parse_manifest`] up to timing and
/// frame-identity structure: presentation times and which presentations
/// share a frame are preserved exactly, while pixel content is re-rendered
/// deterministically from the digest used as a seed.
pub fn to_manifest_text(stream: &VideoStream) -> String {
    let mut out = format!("{MANIFEST_HEADER}\nperiod_us {}\n", stream.frame_period().as_micros());
    let mut declared: BTreeMap<u64, String> = BTreeMap::new();
    for frame in stream.frames() {
        let digest = frame.buf.digest();
        if !declared.contains_key(&digest) {
            let id = format!("f{}", declared.len());
            out.push_str(&format!(
                "frame {id} {}x{} {digest:016x}\n",
                frame.buf.width(),
                frame.buf.height()
            ));
            declared.insert(digest, id);
        }
    }
    for frame in stream.frames() {
        out.push_str(&format!("at {} {}\n", frame.time.as_micros(), declared[&frame.buf.digest()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "interlag-video-manifest v1\nperiod_us 33333\n\
        frame a 8x8 00000000000000aa\nframe b 8x8 00000000000000bb\n\
        at 0 a\nat 33333 a\nat 66666 b\n";

    #[test]
    fn parses_a_clean_manifest() {
        let stream = parse_manifest(GOOD).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.frame_period(), SimDuration::from_micros(33_333));
        assert_eq!(stream.unique_frames(), 2);
        assert_eq!(stream.frames()[2].time, SimTime::from_micros(66_666));
    }

    #[test]
    fn strict_mode_reports_the_defect_with_its_line() {
        let cases: &[(&str, usize)] = &[
            ("", 1),
            ("not a manifest\nperiod_us 1\n", 1),
            ("interlag-video-manifest v1\nperiod_us zero\n", 2),
            ("interlag-video-manifest v1\nperiod_us 33333\nat 0 ghost\n", 3),
            ("interlag-video-manifest v1\nperiod_us 33333\nframe a 8x8 00\nat 5 a\nat 5 a\n", 5),
            ("interlag-video-manifest v1\nperiod_us 33333\nframe a 8x8 zz\n", 3),
            ("interlag-video-manifest v1\nperiod_us 33333\nbogus directive\n", 3),
            ("interlag-video-manifest v1\nperiod_us 33333\nframe a 8x8 00\nframe a 4x4 00\n", 4),
        ];
        for (text, line) in cases {
            let err = parse_manifest(text).unwrap_err();
            assert_eq!(err.line, *line, "{text:?} -> {err}");
        }
    }

    #[test]
    fn salvage_mode_drops_defective_lines_and_keeps_the_rest() {
        let text = "interlag-video-manifest v1\nperiod_us 33333\n\
            frame a 8x8 00000000000000aa\n\
            at 0 a\nat 10 ghost\nat 33333 a\nat 20 a\n";
        let salvaged = parse_manifest_salvage(text).unwrap();
        assert_eq!(salvaged.stream.len(), 2, "the two intact presentations survive");
        assert_eq!(salvaged.dropped.len(), 2);
        assert_eq!(salvaged.dropped[0].defect, ManifestDefect::MissingFrame("ghost".into()));
        assert_eq!(salvaged.dropped[1].defect, ManifestDefect::NonMonotonicTimestamp);
    }

    #[test]
    fn salvage_mode_still_requires_a_header() {
        assert!(parse_manifest_salvage("garbage\n").is_err());
    }

    #[test]
    fn truncation_at_every_byte_offset_never_panics() {
        for cut in 0..GOOD.len() {
            let prefix = &GOOD[..cut];
            if !prefix.is_char_boundary(cut) {
                continue;
            }
            // Strict parse may fail, salvage may drop lines; neither panics.
            let _ = parse_manifest(prefix);
            if let Ok(s) = parse_manifest_salvage(prefix) {
                assert!(s.stream.len() <= 3);
            }
        }
    }

    #[test]
    fn manifest_text_round_trips_timing_and_sharing() {
        let stream = parse_manifest(GOOD).unwrap();
        let text = to_manifest_text(&stream);
        let again = parse_manifest(&text).unwrap();
        assert_eq!(again.len(), stream.len());
        assert_eq!(again.unique_frames(), stream.unique_frames());
        assert_eq!(again.frame_period(), stream.frame_period());
        for (x, y) in again.frames().iter().zip(stream.frames()) {
            assert_eq!(x.time, y.time);
        }
        // Presentations sharing pixels before still share after.
        assert_eq!(again.frames()[0].buf.digest(), again.frames()[1].buf.digest());
        assert_ne!(again.frames()[0].buf.digest(), again.frames()[2].buf.digest());
    }
}
