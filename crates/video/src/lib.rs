//! # interlag-video — frame buffers, masks and capture paths
//!
//! The QoE methodology of *Seeker et al., IISWC 2014* decides when an
//! interaction has been serviced by looking at what the screen shows: the
//! device's video output is captured over HDMI, and analysis algorithms
//! compare frames under masks and tolerances. This crate provides that
//! entire imaging layer:
//!
//! * [`frame`] — 8-bit grayscale [`FrameBuffer`](frame::FrameBuffer)s and
//!   rectangle arithmetic;
//! * [`mask`] — excluded-region masks and match tolerances (clock,
//!   advertisements, blinking cursors — Figure 8 of the paper);
//! * [`stream`] — timed frame sequences with identical-frame sharing;
//! * [`capture`] — the lossless HDMI path and a noisy camera model.
//!
//! # Examples
//!
//! Record a changing screen and check that the mask hides the clock:
//!
//! ```
//! use interlag_evdev::time::SimTime;
//! use interlag_video::capture::{CaptureLink, HdmiCapture, VideoRecorder};
//! use interlag_video::frame::{FrameBuffer, Rect};
//! use interlag_video::mask::{Mask, MatchTolerance};
//! use interlag_video::stream::FRAME_PERIOD_30FPS;
//!
//! let mut rec = VideoRecorder::new(HdmiCapture::new(), FRAME_PERIOD_30FPS);
//! let mut screen = FrameBuffer::new(64, 96);
//! for ms in (0..2_000u64).step_by(10) {
//!     // The top row is a clock that redraws every second.
//!     screen.fill_rect(Rect::new(0, 0, 64, 4), (ms / 1_000) as u8 + 10);
//!     rec.poll(SimTime::from_millis(ms), &screen).unwrap();
//! }
//! let video = rec.into_stream();
//! let mask = Mask::status_bar(64, 4);
//! let first = &video.frames()[0].buf;
//! let last = &video.frames().last().unwrap().buf;
//! assert!(MatchTolerance::EXACT.matches(&mask, first, last));
//! assert!(!MatchTolerance::EXACT.matches(&Mask::new(), first, last));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod capture;
pub mod frame;
pub mod kernel;
pub mod manifest;
pub mod mask;
pub mod stream;

pub use arena::{FrameArena, FrameRun, PackedVideo};
pub use frame::{FrameBuffer, Rect};
pub use manifest::{parse_manifest, parse_manifest_salvage, ManifestDefect, ManifestError};
pub use mask::{Mask, MatchTolerance};
pub use stream::{VideoError, VideoFrame, VideoStream, FRAME_PERIOD_30FPS};
