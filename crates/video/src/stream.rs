//! Timed frame sequences: the "video file" of a workload execution.
//!
//! A [`VideoStream`] is what the capture box writes to the analysis
//! machine: frames at a fixed rate, each stamped with its presentation
//! time. Still periods dominate interactive workloads, so frames are held
//! behind [`Arc`]s and consecutive identical frames share one allocation —
//! a 10-minute capture costs megabytes, not gigabytes.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};

use crate::frame::FrameBuffer;

/// Why the capture path rejected an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoError {
    /// A frame arrived stamped at or before its predecessor. Accepting it
    /// would corrupt the binary-search invariants of
    /// [`VideoStream::frame_at`] and
    /// [`VideoStream::first_frame_at_or_after`], and a duplicate
    /// timestamp would hand downstream walkers two frames claiming the
    /// same instant.
    NonMonotonicTimestamp {
        /// Timestamp of the previously pushed frame.
        prev: SimTime,
        /// The offending timestamp.
        time: SimTime,
    },
}

impl std::fmt::Display for VideoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VideoError::NonMonotonicTimestamp { prev, time } => {
                write!(f, "frame timestamps must be monotonic ({time} after {prev})")
            }
        }
    }
}

impl std::error::Error for VideoError {}

/// One captured frame with its presentation timestamp.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoFrame {
    /// Zero-based frame number.
    pub index: u32,
    /// Presentation time.
    pub time: SimTime,
    /// The pixels. Shared with neighbouring identical frames.
    pub buf: Arc<FrameBuffer>,
}

/// The standard capture rate of the paper's setup (Elgato at 30 fps).
pub const FRAME_PERIOD_30FPS: SimDuration = SimDuration::from_micros(33_333);

/// A captured sequence of frames at a fixed rate.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use interlag_video::frame::FrameBuffer;
/// use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
/// use interlag_evdev::time::SimTime;
///
/// let mut video = VideoStream::new(FRAME_PERIOD_30FPS);
/// let frame = Arc::new(FrameBuffer::new(8, 8));
/// video.push(SimTime::ZERO, frame.clone()).unwrap();
/// video.push(SimTime::from_micros(33_333), frame).unwrap();
/// assert_eq!(video.len(), 2);
/// assert_eq!(video.frame_at(SimTime::from_millis(20)).unwrap().index, 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoStream {
    frame_period: SimDuration,
    frames: Vec<VideoFrame>,
}

impl VideoStream {
    /// Creates an empty stream with the given frame period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(frame_period: SimDuration) -> Self {
        assert!(!frame_period.is_zero(), "frame period must be positive");
        VideoStream { frame_period, frames: Vec::new() }
    }

    /// The nominal interval between frames.
    pub fn frame_period(&self) -> SimDuration {
        self.frame_period
    }

    /// Frames per second, rounded to the nearest integer.
    pub fn fps(&self) -> u32 {
        (1.0 / self.frame_period.as_secs_f64()).round() as u32
    }

    /// Appends a frame captured at `time`.
    ///
    /// # Errors
    ///
    /// [`VideoError::NonMonotonicTimestamp`] if `time` is at or before the
    /// previous frame: capture hardware timestamps are strictly monotonic,
    /// a backwards frame would corrupt the binary-search invariants of
    /// [`VideoStream::frame_at`], and a duplicate timestamp would make the
    /// suggester and matcher walk two frames claiming the same instant (a
    /// stalled capture box re-presents the previous *buffer* at the next
    /// slot, never the same timestamp twice). The stream is left unchanged.
    pub fn push(&mut self, time: SimTime, buf: Arc<FrameBuffer>) -> Result<(), VideoError> {
        if let Some(last) = self.frames.last() {
            if time <= last.time {
                return Err(VideoError::NonMonotonicTimestamp { prev: last.time, time });
            }
        }
        let index = self.frames.len() as u32;
        self.frames.push(VideoFrame { index, time, buf });
        Ok(())
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// All frames in order.
    pub fn frames(&self) -> &[VideoFrame] {
        &self.frames
    }

    /// Iterates over the frames.
    pub fn iter(&self) -> std::slice::Iter<'_, VideoFrame> {
        self.frames.iter()
    }

    /// The frame with a given index.
    pub fn get(&self, index: u32) -> Option<&VideoFrame> {
        self.frames.get(index as usize)
    }

    /// The frame being displayed at `time`: the last frame presented at or
    /// before it. `None` before the first frame.
    pub fn frame_at(&self, time: SimTime) -> Option<&VideoFrame> {
        match self.frames.binary_search_by_key(&time, |f| f.time) {
            Ok(i) => Some(&self.frames[i]),
            Err(0) => None,
            Err(i) => Some(&self.frames[i - 1]),
        }
    }

    /// Index of the first frame presented at or after `time`; `len()` if
    /// the capture ended earlier. This is where the matcher starts walking
    /// when a lag begins at `time`.
    pub fn first_frame_at_or_after(&self, time: SimTime) -> u32 {
        self.frames.partition_point(|f| f.time < time) as u32
    }

    /// Capture length from first to last frame.
    pub fn duration(&self) -> SimDuration {
        match (self.frames.first(), self.frames.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => SimDuration::ZERO,
        }
    }

    /// Number of distinct frame allocations; still periods make this far
    /// smaller than `len()`.
    pub fn unique_frames(&self) -> usize {
        let mut n = 0;
        let mut prev: Option<&Arc<FrameBuffer>> = None;
        for f in &self.frames {
            if prev.is_none_or(|p| !Arc::ptr_eq(p, &f.buf)) {
                n += 1;
            }
            prev = Some(&f.buf);
        }
        n
    }
}

impl<'a> IntoIterator for &'a VideoStream {
    type Item = &'a VideoFrame;
    type IntoIter = std::slice::Iter<'a, VideoFrame>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(v: u8) -> Arc<FrameBuffer> {
        let mut f = FrameBuffer::new(4, 4);
        f.fill(v);
        Arc::new(f)
    }

    fn stream_of(n: u64) -> VideoStream {
        let mut s = VideoStream::new(FRAME_PERIOD_30FPS);
        let shared = frame(1);
        for i in 0..n {
            s.push(SimTime::from_micros(i * 33_333), shared.clone()).unwrap();
        }
        s
    }

    #[test]
    fn fps_rounding() {
        assert_eq!(VideoStream::new(FRAME_PERIOD_30FPS).fps(), 30);
        assert_eq!(VideoStream::new(SimDuration::from_millis(16)).fps(), 63);
    }

    #[test]
    fn frame_at_picks_displayed_frame() {
        let s = stream_of(10);
        assert!(s.frame_at(SimTime::ZERO).is_some());
        assert_eq!(s.frame_at(SimTime::from_micros(33_332)).unwrap().index, 0);
        assert_eq!(s.frame_at(SimTime::from_micros(33_333)).unwrap().index, 1);
        assert_eq!(s.frame_at(SimTime::from_secs(100)).unwrap().index, 9);
    }

    #[test]
    fn frame_at_before_start_is_none() {
        let mut s = VideoStream::new(FRAME_PERIOD_30FPS);
        s.push(SimTime::from_secs(1), frame(0)).unwrap();
        assert!(s.frame_at(SimTime::from_millis(999)).is_none());
    }

    #[test]
    fn first_frame_at_or_after_boundaries() {
        let s = stream_of(3);
        assert_eq!(s.first_frame_at_or_after(SimTime::ZERO), 0);
        assert_eq!(s.first_frame_at_or_after(SimTime::from_micros(1)), 1);
        assert_eq!(s.first_frame_at_or_after(SimTime::from_secs(1)), 3);
    }

    #[test]
    fn unique_frames_counts_allocations() {
        let mut s = VideoStream::new(FRAME_PERIOD_30FPS);
        let a = frame(1);
        s.push(SimTime::from_micros(0), a.clone()).unwrap();
        s.push(SimTime::from_micros(33_333), a.clone()).unwrap();
        s.push(SimTime::from_micros(66_666), frame(2)).unwrap();
        s.push(SimTime::from_micros(99_999), a).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.unique_frames(), 3);
    }

    #[test]
    fn push_rejects_backwards_time_and_leaves_stream_intact() {
        let mut s = VideoStream::new(FRAME_PERIOD_30FPS);
        s.push(SimTime::from_secs(2), frame(0)).unwrap();
        let err = s.push(SimTime::from_secs(1), frame(0)).unwrap_err();
        assert_eq!(
            err,
            VideoError::NonMonotonicTimestamp {
                prev: SimTime::from_secs(2),
                time: SimTime::from_secs(1),
            }
        );
        assert!(err.to_string().contains("monotonic"));
        // The rejected frame must not have corrupted the stream.
        assert_eq!(s.len(), 1);
        assert_eq!(s.first_frame_at_or_after(SimTime::from_secs(1)), 0);
        // A duplicate timestamp is rejected too: a stalled capture box
        // repeats the previous *buffer* at the next slot, never the same
        // timestamp twice, and downstream walkers assume strict order.
        let dup = s.push(SimTime::from_secs(2), frame(1)).unwrap_err();
        assert_eq!(
            dup,
            VideoError::NonMonotonicTimestamp {
                prev: SimTime::from_secs(2),
                time: SimTime::from_secs(2),
            }
        );
        assert_eq!(s.len(), 1);
        // Strictly later frames still append.
        s.push(SimTime::from_secs(2) + SimDuration::from_micros(1), frame(1)).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn duration_spans_first_to_last() {
        let s = stream_of(31);
        assert_eq!(s.duration(), SimDuration::from_micros(30 * 33_333));
    }
}
