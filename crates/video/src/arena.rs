//! Arena-backed frame storage: every distinct frame of a stream in one
//! contiguous allocation.
//!
//! A [`VideoStream`] shares still-period frames behind `Arc`s, which keeps
//! memory small but scatters the distinct frames across the heap and makes
//! the matcher chase pointers. [`PackedVideo::pack`] walks the stream once
//! and rebuilds it as:
//!
//! * a [`FrameArena`] — one `Vec<u8>` holding every *distinct* frame
//!   content back to back (slot-major, row-major within a slot), with
//!   row-slice accessors so hot loops never do per-pixel `get`/`set`;
//! * a run-length encoding of the stream — maximal runs of consecutive
//!   frames with identical content, each pointing at its arena slot.
//!
//! Deduplication is by *content* (digest-gated, pixel-verified), which is
//! strictly stronger than the stream's pointer sharing: a blinking cursor
//! that re-renders the same two screens into fresh allocations still
//! collapses to two slots. The batched matcher walks the runs — O(runs)
//! per lag instead of O(frames) — and compares against contiguous arena
//! rows with the word kernels.

use std::collections::HashMap;
use std::sync::Arc;

use crate::frame::FrameBuffer;
use crate::stream::VideoStream;

/// A contiguous store of equally-sized frames ("slots").
///
/// # Examples
///
/// ```
/// use interlag_video::arena::FrameArena;
/// use interlag_video::frame::FrameBuffer;
///
/// let mut arena = FrameArena::new(8, 4);
/// let mut f = FrameBuffer::new(8, 4);
/// f.fill(9);
/// let slot = arena.push(&f);
/// assert_eq!(arena.pixels(slot), f.pixels());
/// assert_eq!(arena.row(slot, 2), &[9u8; 8][..]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameArena {
    width: u32,
    height: u32,
    /// Slot-major, row-major pixel storage: slot `s` occupies
    /// `[s * frame_len, (s + 1) * frame_len)`.
    pixels: Vec<u8>,
    /// Per-slot content digest ([`FrameBuffer::digest`] of the slot).
    digests: Vec<u64>,
}

impl FrameArena {
    /// Creates an empty arena for `width × height` frames.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        FrameArena { width, height, pixels: Vec::new(), digests: Vec::new() }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixels per frame.
    pub fn frame_len(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Number of stored frames.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// `true` if no frame is stored.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// Copies a frame into the arena, returning its slot index.
    ///
    /// # Panics
    ///
    /// Panics if the frame's dimensions differ from the arena's.
    pub fn push(&mut self, frame: &FrameBuffer) -> u32 {
        assert_eq!(
            (frame.width(), frame.height()),
            (self.width, self.height),
            "arena frames must share one geometry"
        );
        let slot = self.digests.len() as u32;
        self.pixels.extend_from_slice(frame.pixels());
        self.digests.push(frame.digest());
        slot
    }

    /// The full pixel slice of one slot, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[inline]
    pub fn pixels(&self, slot: u32) -> &[u8] {
        let len = self.frame_len();
        let start = slot as usize * len;
        &self.pixels[start..start + len]
    }

    /// One row of one slot as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if the slot or row is out of range.
    #[inline]
    pub fn row(&self, slot: u32, y: u32) -> &[u8] {
        assert!(y < self.height, "row out of range");
        let start = slot as usize * self.frame_len() + (y * self.width) as usize;
        &self.pixels[start..start + self.width as usize]
    }

    /// The content digest of one slot — identical to what
    /// [`FrameBuffer::digest`] returns for the same pixels, so digests are
    /// comparable across the arena/buffer boundary.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range.
    #[inline]
    pub fn digest(&self, slot: u32) -> u64 {
        self.digests[slot as usize]
    }
}

/// One maximal run of consecutive video frames with identical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRun {
    /// Index of the run's first frame in the original stream.
    pub first_frame: u32,
    /// Number of consecutive frames in the run.
    pub len: u32,
    /// Arena slot holding the run's pixel content.
    pub slot: u32,
}

/// A [`VideoStream`] repacked for matching: distinct contents in a
/// [`FrameArena`], the frame sequence as content runs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use interlag_evdev::time::SimTime;
/// use interlag_video::arena::PackedVideo;
/// use interlag_video::frame::FrameBuffer;
/// use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
///
/// let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
/// let still = Arc::new(FrameBuffer::new(4, 4));
/// for i in 0..5u64 {
///     v.push(SimTime::from_micros(i * 33_333), still.clone()).unwrap();
/// }
/// let packed = PackedVideo::pack(&v);
/// assert_eq!(packed.runs().len(), 1);
/// assert_eq!(packed.arena().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PackedVideo {
    arena: FrameArena,
    runs: Vec<FrameRun>,
    /// Total frame count of the source stream.
    frames: u32,
}

impl PackedVideo {
    /// Packs a stream: one forward walk deduplicating frame contents into
    /// the arena and run-length encoding the sequence. Pointer-identical
    /// neighbours are recognised without touching pixels; new pointers are
    /// deduplicated by digest and verified by memcmp before reusing a
    /// slot, so two slots never hold equal content.
    ///
    /// # Panics
    ///
    /// Panics if the stream mixes frame geometries.
    pub fn pack(video: &VideoStream) -> Self {
        let frames = video.frames();
        let Some(first) = frames.first() else {
            return PackedVideo {
                arena: FrameArena { width: 0, height: 0, pixels: Vec::new(), digests: Vec::new() },
                runs: Vec::new(),
                frames: 0,
            };
        };
        let mut arena = FrameArena::new(first.buf.width(), first.buf.height());
        let mut runs: Vec<FrameRun> = Vec::new();
        // Pointer cache: a blinking UI oscillates between a handful of
        // shared buffers, so most frames resolve without hashing.
        let mut slot_of_ptr: HashMap<*const FrameBuffer, u32> = HashMap::new();
        let mut by_digest: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut last: Option<(*const FrameBuffer, u32)> = None;
        for frame in frames {
            let ptr = Arc::as_ptr(&frame.buf);
            let slot = match last {
                Some((prev, slot)) if prev == ptr => slot,
                _ => *slot_of_ptr.entry(ptr).or_insert_with(|| {
                    let digest = frame.buf.digest();
                    let slots = by_digest.entry(digest).or_default();
                    match slots.iter().find(|&&s| arena.pixels(s) == frame.buf.pixels()) {
                        Some(&slot) => slot,
                        None => {
                            let slot = arena.push(&frame.buf);
                            slots.push(slot);
                            slot
                        }
                    }
                }),
            };
            last = Some((ptr, slot));
            match runs.last_mut() {
                Some(run) if run.slot == slot => run.len += 1,
                _ => runs.push(FrameRun { first_frame: frame.index, len: 1, slot }),
            }
        }
        PackedVideo { arena, runs, frames: frames.len() as u32 }
    }

    /// The deduplicated frame store.
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    /// The content runs, in stream order.
    pub fn runs(&self) -> &[FrameRun] {
        &self.runs
    }

    /// Total frame count of the source stream.
    pub fn frame_count(&self) -> u32 {
        self.frames
    }

    /// Index (into [`PackedVideo::runs`]) of the run containing `frame`;
    /// `runs().len()` if the frame index is past the stream's end.
    pub fn run_of_frame(&self, frame: u32) -> usize {
        self.runs.partition_point(|r| r.first_frame + r.len <= frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::FRAME_PERIOD_30FPS;
    use interlag_evdev::time::SimTime;

    fn frame(v: u8) -> Arc<FrameBuffer> {
        let mut f = FrameBuffer::new(8, 8);
        f.fill(v);
        Arc::new(f)
    }

    fn video_of(pattern: &[u8]) -> VideoStream {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        for (i, &c) in pattern.iter().enumerate() {
            // Fresh allocation per frame: dedup must work by content.
            v.push(SimTime::from_micros(i as u64 * 33_333), frame(c)).unwrap();
        }
        v
    }

    #[test]
    fn packs_runs_and_dedups_by_content() {
        let packed = PackedVideo::pack(&video_of(b"aaabbaaa"));
        assert_eq!(packed.frame_count(), 8);
        // Three runs (aaa, bb, aaa) over two distinct contents.
        assert_eq!(packed.runs().len(), 3);
        assert_eq!(packed.arena().len(), 2);
        assert_eq!(packed.runs()[0].slot, packed.runs()[2].slot);
        assert_eq!(packed.runs()[1].len, 2);
        assert_eq!(packed.arena().pixels(packed.runs()[1].slot), &[b'b'; 64][..]);
    }

    #[test]
    fn run_of_frame_finds_the_containing_run() {
        let packed = PackedVideo::pack(&video_of(b"aabbbc"));
        assert_eq!(packed.run_of_frame(0), 0);
        assert_eq!(packed.run_of_frame(1), 0);
        assert_eq!(packed.run_of_frame(2), 1);
        assert_eq!(packed.run_of_frame(4), 1);
        assert_eq!(packed.run_of_frame(5), 2);
        assert_eq!(packed.run_of_frame(6), 3, "past the end");
    }

    #[test]
    fn arena_digests_match_framebuffer_digests() {
        let packed = PackedVideo::pack(&video_of(b"xyz"));
        for run in packed.runs() {
            let mut f = FrameBuffer::new(8, 8);
            f.pixels_mut().copy_from_slice(packed.arena().pixels(run.slot));
            assert_eq!(packed.arena().digest(run.slot), f.digest());
        }
    }

    #[test]
    fn empty_stream_packs_empty() {
        let packed = PackedVideo::pack(&VideoStream::new(FRAME_PERIOD_30FPS));
        assert!(packed.runs().is_empty());
        assert!(packed.arena().is_empty());
        assert_eq!(packed.run_of_frame(0), 0);
    }

    #[test]
    fn rows_are_contiguous_slices() {
        let mut f = FrameBuffer::new(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                f.set(x, y, (y * 10 + x) as u8);
            }
        }
        let mut arena = FrameArena::new(4, 3);
        let s = arena.push(&f);
        assert_eq!(arena.row(s, 1), &[10, 11, 12, 13]);
        assert_eq!(arena.frame_len(), 12);
    }
}
