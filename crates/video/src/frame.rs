//! Frame buffers: the pixel rectangles the suggester and matcher compare.
//!
//! Frames are 8-bit grayscale. The methodology only ever asks "do these two
//! frames differ, outside the masked regions, by more than a tolerance?",
//! for which luminance is sufficient and cheap — the real pipeline decodes
//! HDMI captures to full colour but the comparison logic is identical.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::kernel;

/// An axis-aligned pixel rectangle, `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x0: u32,
    /// Top edge (inclusive).
    pub y0: u32,
    /// Right edge (exclusive).
    pub x1: u32,
    /// Bottom edge (exclusive).
    pub y1: u32,
}

impl Rect {
    /// Creates a rectangle from corner and size.
    pub fn new(x0: u32, y0: u32, width: u32, height: u32) -> Self {
        Rect { x0, y0, x1: x0 + width, y1: y0 + height }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.x1 - self.x0
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.y1 - self.y0
    }

    /// Pixel count.
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// `true` if `(x, y)` lies inside.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// The intersection with another rectangle, if non-empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        (x0 < x1 && y0 < y1).then_some(Rect { x0, y0, x1, y1 })
    }
}

/// An owned 8-bit grayscale image.
///
/// # Examples
///
/// ```
/// use interlag_video::frame::{FrameBuffer, Rect};
///
/// let mut fb = FrameBuffer::new(64, 48);
/// fb.fill_rect(Rect::new(10, 10, 20, 20), 200);
/// assert_eq!(fb.get(15, 15), 200);
/// assert_eq!(fb.get(5, 5), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameBuffer {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
    /// Lazily computed content digest; see [`FrameBuffer::digest`]. Not
    /// part of the frame's identity: ignored by equality/hashing and never
    /// serialised (rebuilt on demand after deserialisation).
    #[serde(skip)]
    digest: DigestCell,
}

/// Cache slot for a frame's content digest.
///
/// Equality and hashing ignore the cache so two `FrameBuffer`s with the
/// same pixels compare equal regardless of which has been digested.
#[derive(Debug, Default)]
struct DigestCell(OnceLock<u64>);

impl Clone for DigestCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(&v) = self.0.get() {
            let _ = cell.set(v);
        }
        DigestCell(cell)
    }
}

impl PartialEq for DigestCell {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for DigestCell {}

impl Hash for DigestCell {
    fn hash<H: Hasher>(&self, _state: &mut H) {}
}

impl FrameBuffer {
    /// Creates a black frame of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        FrameBuffer {
            width,
            height,
            pixels: vec![0; (width * height) as usize],
            digest: DigestCell::default(),
        }
    }

    /// Creates a frame from raw pixels in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert_eq!(pixels.len(), (width * height) as usize, "pixel count mismatch");
        FrameBuffer { width, height, pixels, digest: DigestCell::default() }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The full-frame rectangle.
    pub fn bounds(&self) -> Rect {
        Rect { x0: 0, y0: 0, x1: self.width, y1: self.height }
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable raw pixels, row-major.
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        self.digest = DigestCell::default();
        &mut self.pixels
    }

    /// One row as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: u32) -> &[u8] {
        assert!(y < self.height, "row out of range");
        let start = (y * self.width) as usize;
        &self.pixels[start..start + self.width as usize]
    }

    /// One row as a mutable contiguous slice; hot loops write whole rows
    /// instead of calling [`FrameBuffer::set`] per pixel.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, y: u32) -> &mut [u8] {
        assert!(y < self.height, "row out of range");
        self.digest = DigestCell::default();
        let start = (y * self.width) as usize;
        let width = self.width as usize;
        &mut self.pixels[start..start + width]
    }

    /// The frame's 64-bit content digest, computed on first use and cached
    /// (every `&mut` method drops the cache). The digest is a pure function
    /// of `(width, height, pixels)`, so equal frames always have equal
    /// digests; unequal digests prove frames differ without touching a
    /// single pixel — the fast path behind exact-tolerance matching.
    pub fn digest(&self) -> u64 {
        *self.digest.0.get_or_init(|| {
            let mut h: u64 =
                0xcbf2_9ce4_8422_2325 ^ ((self.width as u64) << 32) ^ self.height as u64;
            let mut chunks = self.pixels.chunks_exact(8);
            for c in &mut chunks {
                let v = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
                h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
                h ^= h >> 47;
            }
            for &b in chunks.remainder() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^ (h >> 33)
        })
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) as usize
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        self.pixels[self.idx(x, y)]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: u8) {
        let i = self.idx(x, y);
        self.digest = DigestCell::default();
        self.pixels[i] = value;
    }

    /// Fills the whole frame with one value.
    pub fn fill(&mut self, value: u8) {
        self.digest = DigestCell::default();
        self.pixels.fill(value);
    }

    /// Fills `rect` (clipped to the frame) with one value.
    pub fn fill_rect(&mut self, rect: Rect, value: u8) {
        let Some(r) = rect.intersect(&self.bounds()) else { return };
        self.digest = DigestCell::default();
        for y in r.y0..r.y1 {
            let row = (y * self.width) as usize;
            self.pixels[row + r.x0 as usize..row + r.x1 as usize].fill(value);
        }
    }

    /// Paints `rect` with a deterministic texture derived from `seed`: a
    /// cheap way to give each UI element a distinctive, reproducible look
    /// without shipping image assets. Different seeds produce textures that
    /// differ in almost every pixel.
    pub fn hash_paint(&mut self, rect: Rect, seed: u64) {
        let Some(r) = rect.intersect(&self.bounds()) else { return };
        self.digest = DigestCell::default();
        // The per-x hash chain shares its first multiply across the row.
        let row_base = (seed ^ 0xcbf2_9ce4_8422_2325).wrapping_mul(0x1000_0000_01b3);
        for y in r.y0..r.y1 {
            let start = (y * self.width + r.x0) as usize;
            let row = &mut self.pixels[start..start + (r.x1 - r.x0) as usize];
            for (dx, p) in row.iter_mut().enumerate() {
                // FNV-ish position hash mixed with the seed.
                let mut h = row_base ^ (r.x0 + dx as u32) as u64;
                h = h.wrapping_mul(0x1000_0000_01b3) ^ (y as u64);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                *p = (h & 0xff) as u8;
            }
        }
    }

    /// Number of pixels whose values differ by more than `value_tolerance`
    /// between `self` and `other`. Runs on the word-wide SWAR kernels
    /// ([`crate::kernel`]), eight pixels per compare.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ — comparing frames of different
    /// sizes is always a pipeline bug.
    pub fn count_diff(&self, other: &FrameBuffer, value_tolerance: u8) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "cannot compare frames of different dimensions"
        );
        kernel::count_over(&self.pixels, &other.pixels, value_tolerance)
    }

    /// `true` if more than `limit` pixels differ by more than
    /// `value_tolerance` — the early-exit form of [`count_diff`]: the scan
    /// stops at mismatch `limit + 1` instead of visiting every pixel, which
    /// is what frame matching actually needs (`count <= budget` is
    /// `!differs_more_than(budget)`).
    ///
    /// [`count_diff`]: FrameBuffer::count_diff
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn differs_more_than(&self, other: &FrameBuffer, value_tolerance: u8, limit: u64) -> bool {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "cannot compare frames of different dimensions"
        );
        kernel::exceeds(&self.pixels, &other.pixels, value_tolerance, limit)
    }

    /// Copies the pixels of `rect` (clipped to the frame) into a new
    /// buffer; jank analysis compares the animation region across frames.
    ///
    /// # Panics
    ///
    /// Panics if `rect` does not intersect the frame at all.
    pub fn crop(&self, rect: Rect) -> FrameBuffer {
        let r = rect.intersect(&self.bounds()).expect("crop rectangle must intersect the frame");
        let mut pixels = Vec::with_capacity(r.area() as usize);
        for y in r.y0..r.y1 {
            let row = (y * self.width) as usize;
            pixels.extend_from_slice(&self.pixels[row + r.x0 as usize..row + r.x1 as usize]);
        }
        FrameBuffer::from_pixels(r.width(), r.height(), pixels)
    }

    /// Shares the buffer behind an [`Arc`]; still periods reuse one
    /// allocation across thousands of video frames.
    pub fn into_shared(self) -> Arc<FrameBuffer> {
        Arc::new(self)
    }
}

impl fmt::Debug for FrameBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameBuffer")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("checksum", &self.pixels.iter().map(|&p| p as u64).sum::<u64>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_rect_clips_to_bounds() {
        let mut fb = FrameBuffer::new(10, 10);
        fb.fill_rect(Rect::new(8, 8, 10, 10), 77);
        assert_eq!(fb.get(9, 9), 77);
        assert_eq!(fb.get(7, 7), 0);
        // Entirely outside: no-op, no panic.
        fb.fill_rect(Rect::new(20, 20, 5, 5), 1);
    }

    #[test]
    fn hash_paint_is_deterministic_and_seed_sensitive() {
        let r = Rect::new(0, 0, 16, 16);
        let mut a = FrameBuffer::new(16, 16);
        let mut b = FrameBuffer::new(16, 16);
        a.hash_paint(r, 1234);
        b.hash_paint(r, 1234);
        assert_eq!(a, b);
        let mut c = FrameBuffer::new(16, 16);
        c.hash_paint(r, 1235);
        assert!(a.count_diff(&c, 0) > 200, "textures should differ almost everywhere");
    }

    #[test]
    fn count_diff_with_tolerance() {
        let mut a = FrameBuffer::new(4, 4);
        let mut b = FrameBuffer::new(4, 4);
        a.fill(100);
        b.fill(103);
        assert_eq!(a.count_diff(&b, 0), 16);
        assert_eq!(a.count_diff(&b, 3), 0);
        b.set(0, 0, 200);
        assert_eq!(a.count_diff(&b, 3), 1);
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn count_diff_rejects_mismatched_sizes() {
        let a = FrameBuffer::new(4, 4);
        let b = FrameBuffer::new(5, 4);
        let _ = a.count_diff(&b, 0);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect { x0: 5, y0: 5, x1: 10, y1: 10 }));
        let c = Rect::new(20, 20, 2, 2);
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.area(), 100);
        assert!(a.contains(9, 9));
        assert!(!a.contains(10, 9));
    }

    #[test]
    fn crop_extracts_the_rect() {
        let mut f = FrameBuffer::new(10, 10);
        f.fill_rect(Rect::new(2, 3, 4, 4), 99);
        let c = f.crop(Rect::new(2, 3, 4, 4));
        assert_eq!((c.width(), c.height()), (4, 4));
        assert!(c.pixels().iter().all(|&p| p == 99));
        // Clips to bounds.
        let edge = f.crop(Rect::new(8, 8, 5, 5));
        assert_eq!((edge.width(), edge.height()), (2, 2));
    }

    #[test]
    #[should_panic(expected = "intersect")]
    fn crop_outside_bounds_panics() {
        FrameBuffer::new(4, 4).crop(Rect::new(10, 10, 2, 2));
    }

    #[test]
    fn digest_tracks_content_not_cache_state() {
        let mut a = FrameBuffer::new(16, 16);
        let mut b = FrameBuffer::new(16, 16);
        a.hash_paint(Rect::new(0, 0, 16, 16), 7);
        b.hash_paint(Rect::new(0, 0, 16, 16), 7);
        assert_eq!(a.digest(), b.digest(), "equal content, equal digest");
        // A digested frame still compares equal to an undigested clone.
        let undigested = b.clone();
        assert_eq!(a, undigested);

        // Every mutator drops the cache.
        let before = a.digest();
        a.set(3, 3, a.get(3, 3).wrapping_add(1));
        assert_ne!(a.digest(), before);
        let before = a.digest();
        a.fill_rect(Rect::new(0, 0, 4, 4), 250);
        assert_ne!(a.digest(), before);
        let before = a.digest();
        a.fill(9);
        assert_ne!(a.digest(), before);
        let before = a.digest();
        a.pixels_mut()[0] = 10;
        assert_ne!(a.digest(), before);
        let before = a.digest();
        a.hash_paint(Rect::new(0, 0, 16, 16), 99);
        assert_ne!(a.digest(), before);
    }

    /// Regression for the cache-invalidation bug class: after *any*
    /// mutation path the cached digest must equal the digest a fresh
    /// buffer computes from the same pixels — stale-cache bugs show up as
    /// an inequality here even when the pre/post digests happen to differ.
    #[test]
    fn digest_is_never_stale_after_mutation() {
        let fresh_digest = |f: &FrameBuffer| {
            FrameBuffer::from_pixels(f.width(), f.height(), f.pixels().to_vec()).digest()
        };
        type Mutation = Box<dyn Fn(&mut FrameBuffer)>;
        let mut f = FrameBuffer::new(16, 16);
        f.hash_paint(Rect::new(0, 0, 16, 16), 42);
        let mutations: Vec<Mutation> = vec![
            Box::new(|f| f.set(3, 7, 201)),
            Box::new(|f| f.fill_rect(Rect::new(2, 2, 5, 5), 9)),
            Box::new(|f| f.fill(17)),
            Box::new(|f| f.pixels_mut()[31] ^= 0xa5),
            Box::new(|f| f.row_mut(4)[0] = 250),
            Box::new(|f| f.hash_paint(Rect::new(1, 1, 10, 10), 77)),
        ];
        for (i, mutate) in mutations.iter().enumerate() {
            let _ = f.digest(); // force the cache warm before mutating
            mutate(&mut f);
            assert_eq!(f.digest(), fresh_digest(&f), "mutation {i} left a stale digest");
        }
    }

    #[test]
    fn row_accessors_view_row_major_pixels() {
        let mut f = FrameBuffer::new(4, 3);
        f.fill_rect(Rect::new(0, 1, 4, 1), 8);
        assert_eq!(f.row(1), &[8, 8, 8, 8]);
        assert_eq!(f.row(0), &[0, 0, 0, 0]);
        f.row_mut(2).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(f.get(2, 2), 3);
    }

    #[test]
    fn digest_depends_on_dimensions() {
        // Same bytes, different shape: digests must differ.
        let a = FrameBuffer::from_pixels(4, 2, vec![1; 8]);
        let b = FrameBuffer::from_pixels(2, 4, vec![1; 8]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn differs_more_than_agrees_with_count_diff() {
        let mut a = FrameBuffer::new(8, 8);
        let mut b = FrameBuffer::new(8, 8);
        a.hash_paint(Rect::new(0, 0, 8, 8), 1);
        b.hash_paint(Rect::new(0, 0, 8, 8), 2);
        for tol in [0u8, 4, 64, 255] {
            let count = a.count_diff(&b, tol);
            for limit in [0u64, 1, count.saturating_sub(1), count, count + 1] {
                assert_eq!(a.differs_more_than(&b, tol, limit), count > limit);
            }
        }
        assert!(!a.differs_more_than(&a.clone(), 0, 0));
    }

    #[test]
    fn debug_is_nonempty_and_compact() {
        let fb = FrameBuffer::new(8, 8);
        let s = format!("{fb:?}");
        assert!(s.contains("FrameBuffer"));
        assert!(s.contains("checksum"));
    }
}
