//! Property-based tests for the input-event substrate.
//!
//! The record/replay contribution of the paper rests on two invariants:
//! traces survive serialisation byte-exactly, and the encode→decode path
//! through the multi-touch protocol loses nothing. Both are checked here
//! over randomly generated gesture scripts.

use proptest::prelude::*;

use interlag_evdev::classify::{classify_trace, count_inputs, ClassifierConfig, InputClass};
use interlag_evdev::event::{EventType, InputEvent, TimedEvent};
use interlag_evdev::gesture::{Gesture, GestureSynth, HardKey};
use interlag_evdev::mt::{ContactEvent, MtDecoder, Point};
use interlag_evdev::replay::{ReplayAgent, Replayer};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_evdev::trace::EventTrace;

fn arb_point() -> impl Strategy<Value = Point> {
    (0..720i32, 0..1280i32).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_gesture() -> impl Strategy<Value = Gesture> {
    prop_oneof![
        (arb_point(), 40u64..200)
            .prop_map(|(pos, ms)| Gesture::Tap { pos, hold: SimDuration::from_millis(ms) }),
        (arb_point(), arb_point(), 100u64..600).prop_map(|(from, to, ms)| Gesture::Swipe {
            from,
            to,
            duration: SimDuration::from_millis(ms),
        }),
        (arb_point(), 500u64..1200)
            .prop_map(|(pos, ms)| Gesture::LongPress { pos, hold: SimDuration::from_millis(ms) }),
        (
            prop_oneof![
                Just(HardKey::Power),
                Just(HardKey::Home),
                Just(HardKey::Back),
                Just(HardKey::VolumeUp),
                Just(HardKey::VolumeDown),
            ],
            30u64..150
        )
            .prop_map(|(key, ms)| Gesture::Key { key, hold: SimDuration::from_millis(ms) }),
    ]
}

/// A script of gestures with strictly increasing, non-overlapping start
/// times (2 s apart, which exceeds every generated gesture duration).
fn arb_script() -> impl Strategy<Value = Vec<(SimTime, Gesture)>> {
    prop::collection::vec(arb_gesture(), 0..20).prop_map(|gs| {
        gs.into_iter()
            .enumerate()
            .map(|(i, g)| (SimTime::from_millis(100 + 2_000 * i as u64), g))
            .collect()
    })
}

fn synthesize(script: &[(SimTime, Gesture)]) -> EventTrace {
    let mut synth = GestureSynth::new(1, 4);
    let mut trace = EventTrace::new();
    for (t, g) in script {
        trace.extend_events(synth.lower(*t, g));
    }
    trace
}

proptest! {
    /// getevent text serialisation is lossless for any synthesised trace.
    #[test]
    fn trace_text_roundtrip(script in arb_script()) {
        let trace = synthesize(&script);
        let text = trace.to_getevent_text();
        let parsed: EventTrace = text.parse().unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Raw event triples round-trip through the getevent line format for
    /// arbitrary code/value payloads, including negative values.
    #[test]
    fn raw_line_roundtrip(kind in 0u16..=5, code in proptest::num::u16::ANY, value in proptest::num::i32::ANY) {
        let kind = EventType::from_raw(kind).unwrap();
        let ev = TimedEvent::new(SimTime::from_micros(1), 1, InputEvent::new(kind, code, value));
        let text = format!("{ev}\n");
        let parsed: EventTrace = text.parse().unwrap();
        prop_assert_eq!(parsed.events()[0], ev);
    }

    /// Every touch gesture decodes to exactly one Down and one Up, with
    /// matching endpoint positions.
    #[test]
    fn mt_decode_recovers_contacts(script in arb_script()) {
        let trace = synthesize(&script);
        let contacts = MtDecoder::decode_stream(trace.iter(), 1);
        let downs: Vec<_> = contacts.iter().filter(|c| matches!(c, ContactEvent::Down { .. })).collect();
        let ups: Vec<_> = contacts.iter().filter(|c| matches!(c, ContactEvent::Up { .. })).collect();
        let touch_gestures: Vec<_> = script
            .iter()
            .filter(|(_, g)| !matches!(g, Gesture::Key { .. }))
            .collect();
        prop_assert_eq!(downs.len(), touch_gestures.len());
        prop_assert_eq!(ups.len(), touch_gestures.len());
        for (down, (t, g)) in downs.iter().zip(&touch_gestures) {
            prop_assert_eq!(down.time(), *t);
            prop_assert_eq!(down.pos(), g.start_pos().unwrap());
        }
    }

    /// The classifier recovers the gesture class for gestures whose travel
    /// is decisive (taps, long presses, keys; swipes beyond the slop).
    #[test]
    fn classifier_recovers_classes(script in arb_script()) {
        let trace = synthesize(&script);
        let cfg = ClassifierConfig::default();
        let inputs = classify_trace(&trace, &cfg);
        prop_assert_eq!(inputs.len(), script.len());
        for (input, (t, g)) in inputs.iter().zip(&script) {
            prop_assert_eq!(input.time, *t);
            match g {
                Gesture::Tap { .. } | Gesture::LongPress { .. } => {
                    prop_assert_eq!(input.class, InputClass::Tap)
                }
                Gesture::Swipe { from, to, .. } => {
                    let expected = if from.distance(*to) <= cfg.tap_slop_px {
                        InputClass::Tap
                    } else {
                        InputClass::Swipe
                    };
                    prop_assert_eq!(input.class, expected);
                }
                Gesture::Key { .. } => prop_assert_eq!(input.class, InputClass::Key),
            }
        }
        let counts = count_inputs(&inputs);
        prop_assert_eq!(counts.total(), script.len());
    }

    /// The replay agent releases every event exactly once, in order, with
    /// its recorded timestamp, regardless of the polling cadence.
    #[test]
    fn replay_is_exact_for_any_polling_cadence(
        script in arb_script(),
        poll_step_us in 100u64..50_000,
    ) {
        let trace = synthesize(&script);
        let mut agent = ReplayAgent::new(trace.clone());
        let mut released = Vec::new();
        let mut now = SimTime::ZERO;
        while !agent.is_finished() {
            released.extend(agent.poll(now));
            now += SimDuration::from_micros(poll_step_us);
        }
        prop_assert_eq!(released.len(), trace.len());
        for (got, want) in released.iter().zip(trace.iter()) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(agent.stats().max_drift < SimDuration::from_micros(poll_step_us));
    }

    /// Rebasing preserves relative timing.
    #[test]
    fn rebase_preserves_gaps(script in arb_script(), origin_ms in 0u64..10_000) {
        let trace = synthesize(&script);
        let rebased = trace.rebased(SimTime::from_millis(origin_ms));
        prop_assert_eq!(rebased.len(), trace.len());
        prop_assert_eq!(rebased.span(), trace.span());
        for (a, b) in rebased.iter().zip(trace.iter()) {
            prop_assert_eq!(a.event, b.event);
            prop_assert_eq!(a.device, b.device);
        }
    }
}
