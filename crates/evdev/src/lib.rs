//! # interlag-evdev — a simulated Linux input subsystem
//!
//! The record-and-replay methodology of *Seeker et al., IISWC 2014* works at
//! the level of the Linux input subsystem: user interactions are captured as
//! raw `(type, code, value)` event triples from `/dev/input/eventN` (with
//! `getevent`) and re-issued later by a timing-accurate replay agent. This
//! crate reproduces that whole layer in simulation:
//!
//! * [`time`] — the microsecond timebase shared by every interlag crate;
//! * [`event`] — the Linux input-event vocabulary and `getevent` formatting;
//! * [`mt`] — multi-touch protocol B encoding/decoding;
//! * [`gesture`] — lowering taps/swipes/keys into raw event streams;
//! * [`trace`] — recordings, with a byte-compatible `getevent -t` text form;
//! * [`replay`] — the custom replay agent and a model of the inaccurate
//!   stock `sendevent` tool;
//! * [`classify`] — reconstructing tap/swipe/key inputs from raw traces
//!   (Figure 10 of the paper).
//!
//! # Examples
//!
//! Record two gestures, serialise the trace, and replay it:
//!
//! ```
//! use interlag_evdev::gesture::{Gesture, GestureSynth};
//! use interlag_evdev::mt::Point;
//! use interlag_evdev::replay::{Replayer, ReplayAgent};
//! use interlag_evdev::time::SimTime;
//! use interlag_evdev::trace::EventTrace;
//!
//! # fn main() -> Result<(), interlag_evdev::trace::ParseTraceError> {
//! let mut synth = GestureSynth::new(1, 4);
//! let mut trace = EventTrace::new();
//! trace.extend_events(synth.lower(SimTime::from_millis(100), &Gesture::tap(Point::new(363, 419))));
//! trace.extend_events(synth.lower(
//!     SimTime::from_millis(900),
//!     &Gesture::swipe(Point::new(360, 1000), Point::new(360, 200)),
//! ));
//!
//! // Round-trip through the getevent text format.
//! let restored: EventTrace = trace.to_getevent_text().parse()?;
//! assert_eq!(restored, trace);
//!
//! // Replay with accurate timings.
//! let mut agent = ReplayAgent::new(restored);
//! let replayed = agent.poll(SimTime::from_secs(5));
//! assert_eq!(replayed.len(), trace.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod event;
pub mod gesture;
pub mod mt;
pub mod replay;
pub mod rng;
pub mod time;
pub mod trace;

pub use event::{EventType, InputEvent, TimedEvent};
pub use time::{SimDuration, SimTime};
pub use trace::EventTrace;
