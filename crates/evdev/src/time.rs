//! The shared simulation timebase.
//!
//! Every interlag crate stamps data — input events, video frames, frequency
//! transitions, energy samples — with the same monotonic clock so that the
//! matcher can line up inputs against frames and the oracle builder can line
//! up lags against frequency traces. [`SimTime`] is an absolute instant in
//! microseconds since simulated boot; [`SimDuration`] is a span between two
//! instants.
//!
//! Microsecond resolution matches the Linux input subsystem (`struct
//! input_event` carries a `timeval`), and is fine enough to express the
//! paper's "millisecond accuracy" replay requirement with headroom.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated monotonic clock, in microseconds
/// since boot.
///
/// # Examples
///
/// ```
/// use interlag_evdev::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_millis(1_500);
/// assert_eq!(t + SimDuration::from_millis(500), SimTime::from_secs(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in microseconds.
///
/// # Examples
///
/// ```
/// use interlag_evdev::time::SimDuration;
///
/// let d = SimDuration::from_millis(150);
/// assert_eq!(d.as_micros(), 150_000);
/// assert_eq!(d * 2, SimDuration::from_millis(300));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated clock (boot).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after boot.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after boot.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after boot.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since boot.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since boot (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since boot as a float; convenient for plotting and reports.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after `self`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked subtraction: `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from a floating-point number of seconds, rounding to
    /// the nearest microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span in milliseconds as a float; lag lengths are conventionally
    /// reported in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that stops at zero instead of underflowing; irritation
    /// penalties are computed as `lag.saturating_sub(threshold)`.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// microsecond. Used for the oracle's "110 % of the fastest lag" rule.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`; handy for frame indices.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    /// Formats as `seconds.micros`, matching `getevent -t` timestamps.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

impl From<u64> for SimDuration {
    /// Interprets a raw integer as microseconds.
    fn from(micros: u64) -> Self {
        SimDuration(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(1_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_millis(100);
        let d = SimDuration::from_millis(40);
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(30);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(20));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn duration_ratio_and_remainder() {
        let frame = SimDuration::from_micros(33_333);
        let span = SimDuration::from_secs(1);
        assert_eq!(span / frame, 30);
        assert_eq!(span % frame, SimDuration::from_micros(10));
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.1), SimDuration::from_millis(110));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_matches_getevent_style() {
        let t = SimTime::from_micros(1_234_567_890);
        assert_eq!(t.to_string(), "1234.567890");
        assert_eq!(SimDuration::from_millis(150).to_string(), "150.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
