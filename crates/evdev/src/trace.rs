//! Recorded input-event traces and the `getevent` text format.
//!
//! A workload recording is an [`EventTrace`]: the time-ordered sequence of
//! every raw event the device's input nodes delivered while the volunteer
//! used the phone. Traces serialise to the same text format `getevent -t`
//! prints (one event per line, hex triples), so recordings made on real
//! hardware can be imported unchanged.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::event::{EventType, InputEvent, TimedEvent};
use crate::time::{SimDuration, SimTime};

/// A time-ordered recording of raw input events.
///
/// # Examples
///
/// ```
/// use interlag_evdev::event::{codes, EventType, InputEvent, TimedEvent};
/// use interlag_evdev::time::SimTime;
/// use interlag_evdev::trace::EventTrace;
///
/// let mut trace = EventTrace::new();
/// trace.push(TimedEvent::new(
///     SimTime::from_millis(10),
///     1,
///     InputEvent::new(EventType::Key, codes::BTN_TOUCH, 1),
/// ));
/// let text = trace.to_getevent_text();
/// let parsed: EventTrace = text.parse()?;
/// assert_eq!(parsed, trace);
/// # Ok::<(), interlag_evdev::trace::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventTrace {
    events: Vec<TimedEvent>,
}

impl EventTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        EventTrace { events: Vec::new() }
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is earlier than the last event already in the
    /// trace; the input subsystem delivers events in order and every
    /// producer in this workspace must too.
    pub fn push(&mut self, event: TimedEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.time >= last.time,
                "events must be pushed in chronological order ({} after {})",
                event.time,
                last.time
            );
        }
        self.events.push(event);
    }

    /// Appends every event of `batch`, which must itself be ordered and
    /// not precede the trace tail.
    pub fn extend_events<I: IntoIterator<Item = TimedEvent>>(&mut self, batch: I) {
        for ev in batch {
            self.push(ev);
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, TimedEvent> {
        self.events.iter()
    }

    /// Number of raw events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the first event.
    pub fn start(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.time)
    }

    /// Timestamp of the last event.
    pub fn end(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.time)
    }

    /// Recording length from first to last event.
    pub fn span(&self) -> SimDuration {
        match (self.start(), self.end()) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// A copy with every timestamp shifted so the first event lands on
    /// `origin`; replaying on a freshly-booted device wants traces that
    /// start near zero.
    pub fn rebased(&self, origin: SimTime) -> EventTrace {
        let Some(start) = self.start() else {
            return EventTrace::new();
        };
        let events = self
            .events
            .iter()
            .map(|e| TimedEvent::new(origin + (e.time - start), e.device, e.event))
            .collect();
        EventTrace { events }
    }

    /// Serialises the trace to `getevent -t` text.
    pub fn to_getevent_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

impl FromIterator<TimedEvent> for EventTrace {
    fn from_iter<I: IntoIterator<Item = TimedEvent>>(iter: I) -> Self {
        let mut t = EventTrace::new();
        t.extend_events(iter);
        t
    }
}

impl Extend<TimedEvent> for EventTrace {
    fn extend<I: IntoIterator<Item = TimedEvent>>(&mut self, iter: I) {
        self.extend_events(iter);
    }
}

impl<'a> IntoIterator for &'a EventTrace {
    type Item = &'a TimedEvent;
    type IntoIter = std::slice::Iter<'a, TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for EventTrace {
    type Item = TimedEvent;
    type IntoIter = std::vec::IntoIter<TimedEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

/// Error parsing `getevent` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for EventTrace {
    type Err = ParseTraceError;

    /// Parses `getevent -t` style text. Blank lines and lines starting with
    /// `#` are ignored. Both the timestamped form
    /// `[ 1234.567890] /dev/input/event1: 0003 0035 0000016b` and the bare
    /// form `/dev/input/event1: 0003 0035 0000016b` (timestamp 0) are
    /// accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut trace = EventTrace::new();
        for (idx, raw_line) in s.lines().enumerate() {
            let line_no = idx + 1;
            if let Some(ev) = parse_getevent_line(raw_line)
                .map_err(|reason| ParseTraceError { line: line_no, reason })?
            {
                // Parsing tolerates out-of-order lines (clock adjustments
                // happen on real devices); sort once at the end instead of
                // panicking.
                trace.events.push(ev);
            }
        }
        trace.events.sort_by_key(|e| e.time);
        Ok(trace)
    }
}

/// Parses one `getevent -t` line. `Ok(None)` for blank and `#`-comment
/// lines; `Err` carries the reason a malformed line was rejected, so
/// salvage-mode ingestion can drop the line and keep the reason while
/// strict ingestion attaches a location and fails.
///
/// # Errors
///
/// A human-readable reason string for any malformed line.
pub fn parse_getevent_line(raw_line: &str) -> Result<Option<TimedEvent>, String> {
    let line = raw_line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }

    let (time, rest) = if let Some(stripped) = line.strip_prefix('[') {
        let close = stripped.find(']').ok_or("missing ']' after timestamp")?;
        let ts = stripped[..close].trim();
        let time = parse_timestamp(ts).ok_or_else(|| format!("bad timestamp {ts:?}"))?;
        (time, stripped[close + 1..].trim())
    } else {
        (SimTime::ZERO, line)
    };

    let rest = rest.strip_prefix("/dev/input/event").ok_or("missing device node prefix")?;
    let colon = rest.find(':').ok_or("missing ':' after device node")?;
    let device: u8 =
        rest[..colon].parse().map_err(|_| format!("bad device index {:?}", &rest[..colon]))?;

    let mut fields = rest[colon + 1..].split_whitespace();
    let mut next_hex = |what: &str| -> Result<u32, String> {
        let f = fields.next().ok_or_else(|| format!("missing {what} field"))?;
        u32::from_str_radix(f, 16).map_err(|_| format!("bad hex {what} {f:?}"))
    };
    let kind_raw = next_hex("type")?;
    let code = next_hex("code")?;
    let value = next_hex("value")? as i32;
    if fields.next().is_some() {
        return Err("trailing fields after value".into());
    }
    let kind = EventType::from_raw(kind_raw as u16)
        .ok_or_else(|| format!("unknown event type {kind_raw:#06x}"))?;

    Ok(Some(TimedEvent::new(time, device, InputEvent::new(kind, code as u16, value))))
}

fn parse_timestamp(s: &str) -> Option<SimTime> {
    let (secs, micros) = s.split_once('.')?;
    let secs: u64 = secs.trim().parse().ok()?;
    if micros.len() != 6 {
        return None;
    }
    let micros: u64 = micros.parse().ok()?;
    // A 20-digit seconds field fits a u64 but not the microsecond clock:
    // reject out-of-range timestamps instead of wrapping them into the
    // middle of the recording.
    let total = secs.checked_mul(1_000_000)?.checked_add(micros)?;
    Some(SimTime::from_micros(total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::codes;

    fn sample_trace() -> EventTrace {
        let mut t = EventTrace::new();
        t.push(TimedEvent::new(
            SimTime::from_micros(1_500_000),
            1,
            InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, 3),
        ));
        t.push(TimedEvent::new(
            SimTime::from_micros(1_500_000),
            1,
            InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_X, 0x16b),
        ));
        t.push(TimedEvent::new(SimTime::from_micros(1_500_000), 1, InputEvent::syn_report()));
        t.push(TimedEvent::new(
            SimTime::from_micros(1_580_000),
            1,
            InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, -1),
        ));
        t.push(TimedEvent::new(SimTime::from_micros(1_580_000), 1, InputEvent::syn_report()));
        t
    }

    #[test]
    fn getevent_text_roundtrip() {
        let t = sample_trace();
        let text = t.to_getevent_text();
        assert!(text.contains("0003 0039 00000003"));
        assert!(text.contains("0003 0039 ffffffff"));
        let parsed: EventTrace = text.parse().unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_accepts_untimestamped_lines() {
        let text = "/dev/input/event1: 0003 0039 00000003\n/dev/input/event1: 0000 0000 00000000\n";
        let t: EventTrace = text.parse().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].time, SimTime::ZERO);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let text =
            "# recorded on dragonboard\n\n[ 0.000001] /dev/input/event1: 0000 0000 00000000\n";
        let t: EventTrace = text.parse().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "[ 0.000001] /dev/input/event1: 0000 0000 00000000\nnot an event\n";
        let err = text.parse::<EventTrace>().unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_rejects_bad_hex_and_unknown_type() {
        assert!("/dev/input/event1: zz 0 0".parse::<EventTrace>().is_err());
        assert!("/dev/input/event1: 0015 0000 00000000".parse::<EventTrace>().is_err());
        assert!("/dev/input/eventX: 0000 0000 00000000".parse::<EventTrace>().is_err());
        assert!("[ 1.23 ] /dev/input/event1: 0000 0000 00000000".parse::<EventTrace>().is_err());
    }

    #[test]
    fn parse_rejects_overflowing_timestamps() {
        // 18446744073709.551616 s × 10⁶ would wrap a u64 microsecond clock.
        let text = "[ 18446744073709.551616 ] /dev/input/event1: 0000 0000 00000000\n";
        let err = text.parse::<EventTrace>().unwrap_err();
        assert!(err.reason.contains("bad timestamp"), "{}", err.reason);
    }

    #[test]
    fn line_parser_classifies_lines() {
        assert_eq!(parse_getevent_line("  # comment"), Ok(None));
        assert_eq!(parse_getevent_line(""), Ok(None));
        assert!(parse_getevent_line("/dev/input/event1: 0000 0000 00000000").unwrap().is_some());
        assert!(parse_getevent_line("garbage").is_err());
    }

    #[test]
    fn rebase_shifts_all_events() {
        let t = sample_trace();
        let r = t.rebased(SimTime::from_secs(10));
        assert_eq!(r.start(), Some(SimTime::from_secs(10)));
        assert_eq!(r.span(), t.span());
        assert_eq!(r.len(), t.len());
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn push_rejects_time_travel() {
        let mut t = EventTrace::new();
        t.push(TimedEvent::new(SimTime::from_secs(2), 1, InputEvent::syn_report()));
        t.push(TimedEvent::new(SimTime::from_secs(1), 1, InputEvent::syn_report()));
    }

    #[test]
    fn collect_from_iterator() {
        let evs = [
            TimedEvent::new(SimTime::from_secs(1), 1, InputEvent::syn_report()),
            TimedEvent::new(SimTime::from_secs(2), 1, InputEvent::syn_report()),
        ];
        let t: EventTrace = evs.iter().copied().collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.span(), SimDuration::from_secs(1));
    }
}
