//! The Linux input-event model.
//!
//! The kernel's input subsystem reports every peripheral action as a stream
//! of `(type, code, value)` triples; a single touch is a burst of several
//! events terminated by a `SYN_REPORT` (see Figure 5 of the paper). This
//! module reproduces the subset of that vocabulary a touchscreen device
//! emits, in exactly the shape `getevent` prints, so that recorded traces
//! are byte-compatible with the paper's tooling.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// The `type` field of a Linux input event.
///
/// Discriminants match `linux/input-event-codes.h`, so raw traces
/// round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum EventType {
    /// `EV_SYN`: synchronisation markers separating event packets.
    Syn = 0x00,
    /// `EV_KEY`: keys and buttons, including `BTN_TOUCH`.
    Key = 0x01,
    /// `EV_REL`: relative axes (mice); unused by touchscreens but kept for
    /// trace compatibility.
    Rel = 0x02,
    /// `EV_ABS`: absolute axes — the multi-touch protocol lives here.
    Abs = 0x03,
    /// `EV_MSC`: miscellaneous (scan codes, timestamps).
    Msc = 0x04,
    /// `EV_SW`: binary switches (lid, headphone detect).
    Sw = 0x05,
}

impl EventType {
    /// Decodes a raw type value as found in a `getevent` trace.
    pub fn from_raw(raw: u16) -> Option<EventType> {
        Some(match raw {
            0x00 => EventType::Syn,
            0x01 => EventType::Key,
            0x02 => EventType::Rel,
            0x03 => EventType::Abs,
            0x04 => EventType::Msc,
            0x05 => EventType::Sw,
            _ => return None,
        })
    }

    /// The raw on-the-wire value.
    pub fn as_raw(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EventType::Syn => "EV_SYN",
            EventType::Key => "EV_KEY",
            EventType::Rel => "EV_REL",
            EventType::Abs => "EV_ABS",
            EventType::Msc => "EV_MSC",
            EventType::Sw => "EV_SW",
        };
        f.write_str(name)
    }
}

/// Event codes used by the simulated devices.
///
/// Values match `linux/input-event-codes.h`. Only the codes a Galaxy
/// Nexus-class touchscreen, its hardware buttons and its light sensor
/// produce are defined; traces may still carry arbitrary codes.
pub mod codes {
    /// `SYN_REPORT`: end of one event packet.
    pub const SYN_REPORT: u16 = 0x00;
    /// `SYN_MT_REPORT`: end of one contact in (type A) multi-touch.
    pub const SYN_MT_REPORT: u16 = 0x02;

    /// `BTN_TOUCH`: at least one finger on the screen.
    pub const BTN_TOUCH: u16 = 0x14a;
    /// `KEY_POWER`.
    pub const KEY_POWER: u16 = 0x74;
    /// `KEY_VOLUMEDOWN`.
    pub const KEY_VOLUMEDOWN: u16 = 0x72;
    /// `KEY_VOLUMEUP`.
    pub const KEY_VOLUMEUP: u16 = 0x73;
    /// `KEY_HOMEPAGE` (the Android home key).
    pub const KEY_HOMEPAGE: u16 = 0xac;
    /// `KEY_BACK`.
    pub const KEY_BACK: u16 = 0x9e;

    /// `ABS_MT_SLOT`: selects the contact slot subsequent events apply to.
    pub const ABS_MT_SLOT: u16 = 0x2f;
    /// `ABS_MT_TOUCH_MAJOR`: major axis of the contact ellipse.
    pub const ABS_MT_TOUCH_MAJOR: u16 = 0x30;
    /// `ABS_MT_WIDTH_MAJOR`: approaching-tool width.
    pub const ABS_MT_WIDTH_MAJOR: u16 = 0x32;
    /// `ABS_MT_POSITION_X`: contact X position.
    pub const ABS_MT_POSITION_X: u16 = 0x35;
    /// `ABS_MT_POSITION_Y`: contact Y position.
    pub const ABS_MT_POSITION_Y: u16 = 0x36;
    /// `ABS_MT_TRACKING_ID`: unique id while a contact persists; -1 lifts it.
    pub const ABS_MT_TRACKING_ID: u16 = 0x39;
    /// `ABS_MT_PRESSURE`: contact pressure.
    pub const ABS_MT_PRESSURE: u16 = 0x3a;

    /// `ABS_MISC`: used here by the ambient light sensor.
    pub const ABS_MISC: u16 = 0x28;
}

/// The tracking-id value that releases a multi-touch slot.
pub const TRACKING_ID_NONE: i32 = -1;

/// One `(type, code, value)` triple, as delivered by `/dev/input/eventN`.
///
/// # Examples
///
/// ```
/// use interlag_evdev::event::{codes, EventType, InputEvent};
///
/// let ev = InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_X, 0x16b);
/// assert_eq!(ev.raw_line(), "0003 0035 0000016b");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InputEvent {
    /// Event class.
    pub kind: EventType,
    /// Axis / key / marker code within the class.
    pub code: u16,
    /// The payload: position, pressure, key state, …
    pub value: i32,
}

impl InputEvent {
    /// Creates an event triple.
    pub fn new(kind: EventType, code: u16, value: i32) -> Self {
        InputEvent { kind, code, value }
    }

    /// The `SYN_REPORT` packet terminator.
    pub fn syn_report() -> Self {
        InputEvent::new(EventType::Syn, codes::SYN_REPORT, 0)
    }

    /// `true` if this event ends an input packet.
    pub fn is_syn_report(self) -> bool {
        self.kind == EventType::Syn && self.code == codes::SYN_REPORT
    }

    /// Formats the triple the way `getevent` prints it: three groups of
    /// zero-padded hex, the value in two's complement.
    pub fn raw_line(self) -> String {
        format!("{:04x} {:04x} {:08x}", self.kind.as_raw(), self.code, self.value as u32)
    }
}

impl fmt::Display for InputEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw_line())
    }
}

/// An [`InputEvent`] paired with its delivery timestamp and source device.
///
/// This is the unit a recorded trace stores and the replay agent re-issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the kernel delivered the event.
    pub time: SimTime,
    /// Index into the device registry (e.g. 1 for `/dev/input/event1`).
    pub device: u8,
    /// The event triple.
    pub event: InputEvent,
}

impl TimedEvent {
    /// Creates a timestamped event for device node `device`.
    pub fn new(time: SimTime, device: u8, event: InputEvent) -> Self {
        TimedEvent { time, device, event }
    }
}

impl fmt::Display for TimedEvent {
    /// Formats one `getevent -t` output line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>14}] /dev/input/event{}: {}", self.time.to_string(), self.device, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrip() {
        for raw in 0..=5u16 {
            let t = EventType::from_raw(raw).unwrap();
            assert_eq!(t.as_raw(), raw);
        }
        assert_eq!(EventType::from_raw(0x15), None);
    }

    #[test]
    fn raw_line_matches_paper_figure5() {
        // Figure 5 shows "0003 0039 00000003" (tracking id) and
        // "0003 0039 ffffffff" (lift).
        let id = InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, 3);
        assert_eq!(id.raw_line(), "0003 0039 00000003");
        let lift = InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, TRACKING_ID_NONE);
        assert_eq!(lift.raw_line(), "0003 0039 ffffffff");
        let syn = InputEvent::syn_report();
        assert_eq!(syn.raw_line(), "0000 0000 00000000");
        assert!(syn.is_syn_report());
    }

    #[test]
    fn timed_event_display() {
        let te = TimedEvent::new(
            SimTime::from_micros(1_234_567),
            1,
            InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_X, 0x16b),
        );
        assert_eq!(te.to_string(), "[      1.234567] /dev/input/event1: 0003 0035 0000016b");
    }
}
