//! Input classification: from raw traces back to user-level inputs.
//!
//! Figure 10 of the paper counts, for every dataset, how many recorded
//! inputs were taps and how many were swipes. That classification starts
//! from the raw event trace: contacts are reconstructed with the
//! [`MtDecoder`](crate::mt::MtDecoder) and each contact's travel distance
//! decides tap vs swipe. Hardware key presses are reported separately.

use serde::{Deserialize, Serialize};

use crate::event::{codes, EventType, TimedEvent};
use crate::mt::{ContactEvent, MtDecoder, Point};
use crate::time::{SimDuration, SimTime};

/// The kind of one user-level input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputClass {
    /// Press and release without significant travel.
    Tap,
    /// A drag: travel beyond the tap slop.
    Swipe,
    /// A hardware key press.
    Key,
}

/// One user-level input reconstructed from the raw trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserInput {
    /// Tap, swipe or key.
    pub class: InputClass,
    /// When the finger landed / the key went down. This is the instant an
    /// interaction lag *begins*.
    pub time: SimTime,
    /// Where the finger landed (keys report `(0, 0)`).
    pub pos: Point,
    /// Contact time (down to up).
    pub duration: SimDuration,
    /// Straight-line travel in pixels.
    pub travel: f64,
}

/// Tunables of the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Travel below this many pixels still counts as a tap (Android's
    /// "touch slop" is 8 dp ≈ 16 px on an xhdpi panel).
    pub tap_slop_px: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig { tap_slop_px: 16.0 }
    }
}

/// Per-class input counts, the left bars of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InputCounts {
    /// Number of taps.
    pub taps: usize,
    /// Number of swipes.
    pub swipes: usize,
    /// Number of hardware key presses.
    pub keys: usize,
}

impl InputCounts {
    /// All inputs together.
    pub fn total(&self) -> usize {
        self.taps + self.swipes + self.keys
    }
}

/// Classifies every user input in `trace`.
///
/// Touch contacts are reconstructed per device node; a contact is one
/// input. Key inputs are taken from `EV_KEY` press events on non-touch
/// codes.
///
/// # Examples
///
/// ```
/// use interlag_evdev::classify::{classify_trace, ClassifierConfig, InputClass};
/// use interlag_evdev::gesture::{Gesture, GestureSynth};
/// use interlag_evdev::mt::Point;
/// use interlag_evdev::time::SimTime;
/// use interlag_evdev::trace::EventTrace;
///
/// let mut synth = GestureSynth::new(1, 4);
/// let mut trace = EventTrace::new();
/// trace.extend_events(synth.lower(SimTime::from_secs(1), &Gesture::tap(Point::new(5, 5))));
/// trace.extend_events(synth.lower(
///     SimTime::from_secs(2),
///     &Gesture::swipe(Point::new(0, 400), Point::new(0, 100)),
/// ));
/// let inputs = classify_trace(&trace, &ClassifierConfig::default());
/// assert_eq!(inputs[0].class, InputClass::Tap);
/// assert_eq!(inputs[1].class, InputClass::Swipe);
/// ```
pub fn classify_trace(
    trace: &crate::trace::EventTrace,
    config: &ClassifierConfig,
) -> Vec<UserInput> {
    let mut inputs = Vec::new();

    // Touch contacts, one decoder per device node seen in the trace.
    let mut devices: Vec<u8> = trace.iter().map(|e| e.device).collect();
    devices.sort_unstable();
    devices.dedup();
    for dev in devices {
        inputs.extend(classify_touch_device(trace.events(), dev, config));
    }

    // Hardware keys: every key-down on a non-touch code is one input.
    for ev in trace.iter() {
        if ev.event.kind == EventType::Key
            && ev.event.code != codes::BTN_TOUCH
            && ev.event.value == 1
        {
            let release = trace
                .iter()
                .find(|e| {
                    e.time >= ev.time
                        && e.event.kind == EventType::Key
                        && e.event.code == ev.event.code
                        && e.event.value == 0
                })
                .map(|e| e.time)
                .unwrap_or(ev.time);
            inputs.push(UserInput {
                class: InputClass::Key,
                time: ev.time,
                pos: Point::new(0, 0),
                duration: release - ev.time,
                travel: 0.0,
            });
        }
    }

    inputs.sort_by_key(|i| i.time);
    inputs
}

fn classify_touch_device(
    events: &[TimedEvent],
    device: u8,
    config: &ClassifierConfig,
) -> Vec<UserInput> {
    #[derive(Clone, Copy)]
    struct Open {
        start: SimTime,
        start_pos: Point,
        last_pos: Point,
    }

    let mut dec = MtDecoder::new();
    let mut open: Vec<Option<Open>> = Vec::new();
    let mut out = Vec::new();

    for te in events.iter().filter(|e| e.device == device) {
        for contact in dec.push(te.time, te.event) {
            let slot = contact.slot();
            if open.len() <= slot {
                open.resize(slot + 1, None);
            }
            match contact {
                ContactEvent::Down { pos, time, .. } => {
                    open[slot] = Some(Open { start: time, start_pos: pos, last_pos: pos });
                }
                ContactEvent::Move { pos, .. } => {
                    if let Some(o) = open[slot].as_mut() {
                        o.last_pos = pos;
                    }
                }
                ContactEvent::Up { pos, time, .. } => {
                    if let Some(o) = open[slot].take() {
                        let end_pos = if pos == Point::new(0, 0) { o.last_pos } else { pos };
                        let travel = o.start_pos.distance(end_pos);
                        out.push(UserInput {
                            class: if travel <= config.tap_slop_px {
                                InputClass::Tap
                            } else {
                                InputClass::Swipe
                            },
                            time: o.start,
                            pos: o.start_pos,
                            duration: time - o.start,
                            travel,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Tallies classified inputs into [`InputCounts`].
pub fn count_inputs(inputs: &[UserInput]) -> InputCounts {
    let mut c = InputCounts::default();
    for i in inputs {
        match i.class {
            InputClass::Tap => c.taps += 1,
            InputClass::Swipe => c.swipes += 1,
            InputClass::Key => c.keys += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesture::{Gesture, GestureSynth, HardKey};
    use crate::trace::EventTrace;

    fn trace_of(gestures: &[(u64, Gesture)]) -> EventTrace {
        let mut synth = GestureSynth::new(1, 4);
        let mut trace = EventTrace::new();
        for &(ms, ref g) in gestures {
            trace.extend_events(synth.lower(SimTime::from_millis(ms), g));
        }
        trace
    }

    #[test]
    fn counts_taps_swipes_and_keys() {
        let trace = trace_of(&[
            (0, Gesture::tap(Point::new(10, 10))),
            (500, Gesture::swipe(Point::new(0, 300), Point::new(0, 100))),
            (1_000, Gesture::tap(Point::new(20, 20))),
            (1_500, Gesture::Key { key: HardKey::Home, hold: SimDuration::from_millis(70) }),
        ]);
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        let counts = count_inputs(&inputs);
        assert_eq!(counts, InputCounts { taps: 2, swipes: 1, keys: 1 });
        assert_eq!(counts.total(), 4);
    }

    #[test]
    fn short_drag_within_slop_is_a_tap() {
        // 10 px travel is under the 16 px slop.
        let trace = trace_of(&[(
            0,
            Gesture::Swipe {
                from: Point::new(100, 100),
                to: Point::new(106, 108),
                duration: SimDuration::from_millis(120),
            },
        )]);
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        assert_eq!(inputs[0].class, InputClass::Tap);
        assert!(inputs[0].travel < 16.0);
    }

    #[test]
    fn input_time_is_finger_down_time() {
        let trace = trace_of(&[(250, Gesture::tap(Point::new(1, 2)))]);
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        assert_eq!(inputs[0].time, SimTime::from_millis(250));
        assert_eq!(inputs[0].duration, SimDuration::from_millis(80));
        assert_eq!(inputs[0].pos, Point::new(1, 2));
    }

    #[test]
    fn inputs_sorted_across_devices() {
        let trace = trace_of(&[
            (100, Gesture::Key { key: HardKey::Back, hold: SimDuration::from_millis(50) }),
            (300, Gesture::tap(Point::new(1, 1))),
        ]);
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        assert_eq!(inputs[0].class, InputClass::Key);
        assert_eq!(inputs[1].class, InputClass::Tap);
        assert!(inputs[0].time < inputs[1].time);
    }

    #[test]
    fn empty_trace_yields_no_inputs() {
        let inputs = classify_trace(&EventTrace::new(), &ClassifierConfig::default());
        assert!(inputs.is_empty());
        assert_eq!(count_inputs(&inputs).total(), 0);
    }
}
