//! Replay agents: re-issuing a recorded trace with accurate timings.
//!
//! The paper found Android's stock `sendevent` tool too slow and too coarse
//! to reproduce a recording faithfully, and built a custom replay agent
//! instead. Both live here:
//!
//! * [`ReplayAgent`] — the custom agent. It is driven by the simulation
//!   loop (`poll` with the current time) and releases every event at
//!   exactly its recorded timestamp.
//! * [`SendeventReplayer`] — a model of the stock tool: every event costs a
//!   fixed per-event overhead (fork/exec + write path), so dense packets
//!   smear out in time. Used by the ablation bench to quantify why the
//!   custom agent was necessary.

use crate::event::TimedEvent;
use crate::time::{SimDuration, SimTime};
use crate::trace::EventTrace;

/// Cumulative timing-accuracy statistics of one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplayStats {
    /// Events released so far.
    pub events_replayed: usize,
    /// Sum of per-event release lateness.
    pub total_drift: SimDuration,
    /// Worst single-event lateness.
    pub max_drift: SimDuration,
}

impl ReplayStats {
    /// Mean lateness per event, zero if nothing replayed.
    pub fn mean_drift(&self) -> SimDuration {
        if self.events_replayed == 0 {
            SimDuration::ZERO
        } else {
            self.total_drift / self.events_replayed as u64
        }
    }

    fn record(&mut self, drift: SimDuration) {
        self.events_replayed += 1;
        self.total_drift += drift;
        self.max_drift = self.max_drift.max(drift);
    }
}

/// Common interface of the replay back-ends, so experiments can swap them.
pub trait Replayer {
    /// Events due at or before `now`, in order. Call with monotonically
    /// non-decreasing times.
    fn poll(&mut self, now: SimTime) -> Vec<TimedEvent>;

    /// `true` once every recorded event has been released.
    fn is_finished(&self) -> bool;

    /// Timing statistics accumulated so far.
    fn stats(&self) -> ReplayStats;

    /// The time the next event wants to be released, if any; lets the
    /// simulation loop skip ahead through idle stretches.
    fn next_due(&self) -> Option<SimTime>;
}

/// The custom timing-accurate replay agent.
///
/// # Examples
///
/// ```
/// use interlag_evdev::event::{InputEvent, TimedEvent};
/// use interlag_evdev::replay::{Replayer, ReplayAgent};
/// use interlag_evdev::time::SimTime;
/// use interlag_evdev::trace::EventTrace;
///
/// let trace: EventTrace = vec![
///     TimedEvent::new(SimTime::from_millis(5), 1, InputEvent::syn_report()),
///     TimedEvent::new(SimTime::from_millis(9), 1, InputEvent::syn_report()),
/// ].into_iter().collect();
/// let mut agent = ReplayAgent::new(trace);
/// assert!(agent.poll(SimTime::from_millis(4)).is_empty());
/// assert_eq!(agent.poll(SimTime::from_millis(5)).len(), 1);
/// assert_eq!(agent.poll(SimTime::from_millis(20)).len(), 1);
/// assert!(agent.is_finished());
/// assert_eq!(agent.stats().max_drift.as_micros(), 11_000);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayAgent {
    trace: EventTrace,
    cursor: usize,
    stats: ReplayStats,
}

impl ReplayAgent {
    /// Creates an agent that will replay `trace` at its recorded
    /// timestamps.
    pub fn new(trace: EventTrace) -> Self {
        ReplayAgent { trace, cursor: 0, stats: ReplayStats::default() }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }
}

impl Replayer for ReplayAgent {
    fn poll(&mut self, now: SimTime) -> Vec<TimedEvent> {
        let events = self.trace.events();
        let mut out = Vec::new();
        while self.cursor < events.len() && events[self.cursor].time <= now {
            let ev = events[self.cursor];
            self.stats.record(now.saturating_since(ev.time));
            // The agent releases the event with its *intended* timestamp;
            // lateness only shows up in the stats. The quality of the
            // simulation loop's step size bounds the drift.
            out.push(ev);
            self.cursor += 1;
        }
        out
    }

    fn is_finished(&self) -> bool {
        self.cursor >= self.trace.len()
    }

    fn stats(&self) -> ReplayStats {
        self.stats
    }

    fn next_due(&self) -> Option<SimTime> {
        self.trace.events().get(self.cursor).map(|e| e.time)
    }
}

/// Default per-event overhead of the stock `sendevent` tool.
///
/// Each `sendevent` invocation is a separate process: fork/exec plus an
/// open/write/close of the device node. ~2 ms per event is what the paper's
/// authors observed made the tool unusable for dense multi-touch packets.
pub const SENDEVENT_PER_EVENT_OVERHEAD: SimDuration = SimDuration::from_millis(2);

/// A model of replaying through the stock `sendevent` tool.
///
/// Events are issued sequentially; each one costs
/// [`SENDEVENT_PER_EVENT_OVERHEAD`], so an event can never be released
/// earlier than the completion of its predecessor. Released events carry
/// their *actual* (late) timestamps, which is exactly how the inaccuracy
/// corrupts a replayed workload.
#[derive(Debug, Clone)]
pub struct SendeventReplayer {
    trace: EventTrace,
    cursor: usize,
    busy_until: SimTime,
    overhead: SimDuration,
    stats: ReplayStats,
}

impl SendeventReplayer {
    /// Creates a replayer with the default overhead.
    pub fn new(trace: EventTrace) -> Self {
        Self::with_overhead(trace, SENDEVENT_PER_EVENT_OVERHEAD)
    }

    /// Creates a replayer with an explicit per-event overhead.
    pub fn with_overhead(trace: EventTrace, overhead: SimDuration) -> Self {
        SendeventReplayer {
            trace,
            cursor: 0,
            busy_until: SimTime::ZERO,
            overhead,
            stats: ReplayStats::default(),
        }
    }
}

impl Replayer for SendeventReplayer {
    fn poll(&mut self, now: SimTime) -> Vec<TimedEvent> {
        let events = self.trace.events();
        let mut out = Vec::new();
        while self.cursor < events.len() {
            let ev = events[self.cursor];
            // The tool cannot start writing an event before its recorded
            // time, nor before it finished writing the previous one.
            let start = ev.time.max(self.busy_until);
            let done = start + self.overhead;
            if done > now {
                break;
            }
            self.busy_until = done;
            self.stats.record(done - ev.time);
            out.push(TimedEvent::new(done, ev.device, ev.event));
            self.cursor += 1;
        }
        out
    }

    fn is_finished(&self) -> bool {
        self.cursor >= self.trace.len()
    }

    fn stats(&self) -> ReplayStats {
        self.stats
    }

    fn next_due(&self) -> Option<SimTime> {
        self.trace.events().get(self.cursor).map(|e| {
            let start = e.time.max(self.busy_until);
            start + self.overhead
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::InputEvent;

    fn dense_trace(n: u64, spacing_us: u64) -> EventTrace {
        (0..n)
            .map(|i| {
                TimedEvent::new(SimTime::from_micros(i * spacing_us), 1, InputEvent::syn_report())
            })
            .collect()
    }

    #[test]
    fn agent_releases_at_recorded_times() {
        let mut agent = ReplayAgent::new(dense_trace(100, 1_000));
        let mut released = Vec::new();
        let mut t = SimTime::ZERO;
        while !agent.is_finished() {
            released.extend(agent.poll(t));
            t += SimDuration::from_micros(500);
        }
        assert_eq!(released.len(), 100);
        for (i, ev) in released.iter().enumerate() {
            assert_eq!(ev.time, SimTime::from_micros(i as u64 * 1_000));
        }
        // Polling every 500 µs bounds drift below 500 µs.
        assert!(agent.stats().max_drift < SimDuration::from_micros(500));
    }

    #[test]
    fn agent_next_due_allows_skipping_idle() {
        let trace: EventTrace =
            vec![TimedEvent::new(SimTime::from_secs(100), 1, InputEvent::syn_report())]
                .into_iter()
                .collect();
        let mut agent = ReplayAgent::new(trace);
        assert_eq!(agent.next_due(), Some(SimTime::from_secs(100)));
        assert!(agent.poll(SimTime::from_secs(99)).is_empty());
        assert_eq!(agent.poll(SimTime::from_secs(100)).len(), 1);
        assert_eq!(agent.next_due(), None);
    }

    #[test]
    fn sendevent_smears_dense_packets() {
        // 10 events recorded in the same millisecond: the real agent
        // replays them ~simultaneously, sendevent spreads them over 20 ms.
        let trace = dense_trace(10, 100);
        let mut tool = SendeventReplayer::new(trace.clone());
        let released = tool.poll(SimTime::from_secs(1));
        assert_eq!(released.len(), 10);
        let spread = released.last().unwrap().time - released[0].time;
        assert_eq!(spread, SimDuration::from_millis(18));
        assert!(tool.stats().max_drift >= SimDuration::from_millis(18));

        let mut agent = ReplayAgent::new(trace);
        let released = agent.poll(SimTime::from_secs(1));
        let spread = released.last().unwrap().time - released[0].time;
        assert_eq!(spread, SimDuration::from_micros(900));
    }

    #[test]
    fn sendevent_respects_recorded_times_when_sparse() {
        let trace = dense_trace(3, 1_000_000); // one per second
        let mut tool = SendeventReplayer::new(trace);
        let released = tool.poll(SimTime::from_secs(10));
        assert_eq!(released[1].time, SimTime::from_micros(1_002_000));
        assert_eq!(tool.stats().mean_drift(), SENDEVENT_PER_EVENT_OVERHEAD);
    }

    #[test]
    fn empty_trace_is_immediately_finished() {
        let mut agent = ReplayAgent::new(EventTrace::new());
        assert!(agent.is_finished());
        assert!(agent.poll(SimTime::from_secs(1)).is_empty());
        assert_eq!(agent.stats().events_replayed, 0);
    }
}
