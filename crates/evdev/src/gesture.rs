//! High-level gesture synthesis.
//!
//! Workload generators describe user behaviour as taps, swipes and key
//! presses; this module lowers a [`Gesture`] into the exact timed
//! protocol-B event stream the touchscreen driver would have produced, via
//! the [`MtEncoder`]. The inverse direction (classifying a raw trace back
//! into taps and swipes, as Figure 10 of the paper requires) lives in
//! [`classify`](crate::classify).

use serde::{Deserialize, Serialize};

use crate::event::{codes, EventType, InputEvent, TimedEvent};
use crate::mt::{MtEncoder, Point};
use crate::time::{SimDuration, SimTime};

/// A hardware key a gesture can press.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardKey {
    /// The power button.
    Power,
    /// Volume up.
    VolumeUp,
    /// Volume down.
    VolumeDown,
    /// The home key.
    Home,
    /// The back key.
    Back,
}

impl HardKey {
    /// The Linux key code this key reports.
    pub fn code(self) -> u16 {
        match self {
            HardKey::Power => codes::KEY_POWER,
            HardKey::VolumeUp => codes::KEY_VOLUMEUP,
            HardKey::VolumeDown => codes::KEY_VOLUMEDOWN,
            HardKey::Home => codes::KEY_HOMEPAGE,
            HardKey::Back => codes::KEY_BACK,
        }
    }
}

/// One user gesture, the unit of workload scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gesture {
    /// A short press-and-release at one position.
    Tap {
        /// Touch position.
        pos: Point,
        /// Finger-down time (a human tap is ~60–120 ms).
        hold: SimDuration,
    },
    /// A straight drag from one position to another.
    Swipe {
        /// Where the finger lands.
        from: Point,
        /// Where it lifts.
        to: Point,
        /// Total finger-down time.
        duration: SimDuration,
    },
    /// A press held long enough for a context menu (ordinary tap encoding,
    /// longer hold).
    LongPress {
        /// Touch position.
        pos: Point,
        /// Hold time (≥ 500 ms on Android).
        hold: SimDuration,
    },
    /// A hardware key press.
    Key {
        /// Which key.
        key: HardKey,
        /// Press-to-release time.
        hold: SimDuration,
    },
}

impl Gesture {
    /// A tap with the default 80 ms hold.
    pub fn tap(pos: Point) -> Self {
        Gesture::Tap { pos, hold: SimDuration::from_millis(80) }
    }

    /// A swipe with the default 250 ms duration.
    pub fn swipe(from: Point, to: Point) -> Self {
        Gesture::Swipe { from, to, duration: SimDuration::from_millis(250) }
    }

    /// The first position the gesture touches, if it touches the screen.
    pub fn start_pos(&self) -> Option<Point> {
        match *self {
            Gesture::Tap { pos, .. } | Gesture::LongPress { pos, .. } => Some(pos),
            Gesture::Swipe { from, .. } => Some(from),
            Gesture::Key { .. } => None,
        }
    }

    /// How long a finger or key is held down.
    pub fn contact_duration(&self) -> SimDuration {
        match *self {
            Gesture::Tap { hold, .. }
            | Gesture::LongPress { hold, .. }
            | Gesture::Key { hold, .. } => hold,
            Gesture::Swipe { duration, .. } => duration,
        }
    }
}

/// Interval between successive move packets during a swipe. Touch panels
/// scan at 60–120 Hz; 8 ms ≈ 120 Hz, matching a Galaxy Nexus-class digitizer.
pub const SWIPE_SAMPLE_PERIOD: SimDuration = SimDuration::from_millis(8);

/// Lowers gestures into timed event streams for one device pair.
///
/// # Examples
///
/// ```
/// use interlag_evdev::gesture::{Gesture, GestureSynth};
/// use interlag_evdev::mt::Point;
/// use interlag_evdev::time::SimTime;
///
/// let mut synth = GestureSynth::new(1, 2);
/// let events = synth.lower(SimTime::from_secs(1), &Gesture::tap(Point::new(50, 60)));
/// assert!(events.len() >= 8); // down packet + up packet
/// assert_eq!(events[0].time, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone)]
pub struct GestureSynth {
    encoder: MtEncoder,
    touch_device: u8,
    key_device: u8,
    pressure: i32,
}

impl GestureSynth {
    /// Creates a synthesiser emitting touches on device node
    /// `touch_device` and hardware keys on `key_device`.
    pub fn new(touch_device: u8, key_device: u8) -> Self {
        GestureSynth { encoder: MtEncoder::new(), touch_device, key_device, pressure: 58 }
    }

    /// The device node touch events are emitted on.
    pub fn touch_device(&self) -> u8 {
        self.touch_device
    }

    fn emit(&self, out: &mut Vec<TimedEvent>, time: SimTime, device: u8, body: Vec<InputEvent>) {
        for ev in body {
            out.push(TimedEvent::new(time, device, ev));
        }
        out.push(TimedEvent::new(time, device, MtEncoder::sync()));
    }

    /// Produces the full timed event stream for `gesture` starting at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if the internal slot table is corrupt, which cannot happen
    /// through this API (the synthesiser always uses slot 0 and pairs every
    /// down with an up).
    pub fn lower(&mut self, start: SimTime, gesture: &Gesture) -> Vec<TimedEvent> {
        let mut out = Vec::new();
        match *gesture {
            Gesture::Tap { pos, hold } | Gesture::LongPress { pos, hold } => {
                let body = self
                    .encoder
                    .touch_down(0, pos, self.pressure)
                    .expect("slot 0 free: gestures are strictly sequential");
                self.emit(&mut out, start, self.touch_device, body);
                let body = self.encoder.touch_up(0).expect("slot 0 was just pressed");
                self.emit(&mut out, start + hold, self.touch_device, body);
            }
            Gesture::Swipe { from, to, duration } => {
                let body = self
                    .encoder
                    .touch_down(0, from, self.pressure)
                    .expect("slot 0 free: gestures are strictly sequential");
                self.emit(&mut out, start, self.touch_device, body);
                let steps = (duration / SWIPE_SAMPLE_PERIOD).max(1);
                for i in 1..=steps {
                    let t = start + SWIPE_SAMPLE_PERIOD * i;
                    let frac = i as f64 / steps as f64;
                    let pos = from.lerp(to, frac);
                    let body =
                        self.encoder.touch_move(0, pos).expect("slot 0 still down during swipe");
                    self.emit(&mut out, t, self.touch_device, body);
                }
                let body = self.encoder.touch_up(0).expect("slot 0 still down");
                self.emit(&mut out, start + duration, self.touch_device, body);
            }
            Gesture::Key { key, hold } => {
                out.push(TimedEvent::new(
                    start,
                    self.key_device,
                    InputEvent::new(EventType::Key, key.code(), 1),
                ));
                out.push(TimedEvent::new(start, self.key_device, MtEncoder::sync()));
                out.push(TimedEvent::new(
                    start + hold,
                    self.key_device,
                    InputEvent::new(EventType::Key, key.code(), 0),
                ));
                out.push(TimedEvent::new(start + hold, self.key_device, MtEncoder::sync()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mt::{ContactEvent, MtDecoder};

    #[test]
    fn tap_lowers_to_down_and_up() {
        let mut synth = GestureSynth::new(1, 4);
        let evs = synth.lower(SimTime::from_millis(100), &Gesture::tap(Point::new(5, 6)));
        let contacts = MtDecoder::decode_stream(evs.iter(), 1);
        assert_eq!(contacts.len(), 2);
        assert!(matches!(contacts[0], ContactEvent::Down { .. }));
        assert!(matches!(contacts[1], ContactEvent::Up { .. }));
        assert_eq!(contacts[1].time() - contacts[0].time(), SimDuration::from_millis(80));
    }

    #[test]
    fn swipe_duration_and_path() {
        let mut synth = GestureSynth::new(1, 4);
        let g = Gesture::Swipe {
            from: Point::new(0, 400),
            to: Point::new(0, 80),
            duration: SimDuration::from_millis(240),
        };
        let evs = synth.lower(SimTime::ZERO, &g);
        let contacts = MtDecoder::decode_stream(evs.iter(), 1);
        let downs = contacts.iter().filter(|c| matches!(c, ContactEvent::Down { .. })).count();
        let moves = contacts.iter().filter(|c| matches!(c, ContactEvent::Move { .. })).count();
        assert_eq!(downs, 1);
        assert_eq!(moves, 240 / 8);
        assert_eq!(contacts.last().unwrap().pos(), Point::new(0, 80));
        assert_eq!(
            contacts.last().unwrap().time() - contacts[0].time(),
            SimDuration::from_millis(240)
        );
    }

    #[test]
    fn key_press_uses_key_device() {
        let mut synth = GestureSynth::new(1, 4);
        let g = Gesture::Key { key: HardKey::Back, hold: SimDuration::from_millis(60) };
        let evs = synth.lower(SimTime::ZERO, &g);
        assert!(evs.iter().all(|e| e.device == 4));
        assert_eq!(evs[0].event.code, codes::KEY_BACK);
        assert_eq!(evs[0].event.value, 1);
        let release = evs.iter().find(|e| e.event.value == 0 && e.event.kind == EventType::Key);
        assert_eq!(release.unwrap().time, SimTime::from_millis(60));
    }

    #[test]
    fn sequential_gestures_share_encoder_state() {
        let mut synth = GestureSynth::new(1, 4);
        let a = synth.lower(SimTime::ZERO, &Gesture::tap(Point::new(1, 1)));
        let b = synth.lower(SimTime::from_secs(1), &Gesture::tap(Point::new(2, 2)));
        // Tracking ids must keep increasing across gestures.
        let id_of = |evs: &[TimedEvent]| {
            evs.iter()
                .find(|e| e.event.code == codes::ABS_MT_TRACKING_ID && e.event.value >= 0)
                .unwrap()
                .event
                .value
        };
        assert!(id_of(&b) > id_of(&a));
    }
}
