//! A small deterministic PRNG shared by the whole workspace.
//!
//! Every interlag experiment must be bit-reproducible from a seed: the
//! workload generators, the camera-noise model and the jitter injected
//! into synthetic recordings all draw from this [`SplitMix64`] generator.
//! It lives in the base crate so the substrates above it (video, device,
//! workloads) share one implementation without an external dependency
//! whose streams could change between releases.

/// SplitMix64: a tiny, high-quality, splittable 64-bit generator
/// (Steele, Lea & Flood, OOPSLA 2014). Passes BigCrush when used as here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); the tiny modulo bias
        // of widening-multiply truncation is irrelevant for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below((hi - lo) as u64 + 1) as i64
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks an independent generator; the child's stream does not overlap
    /// the parent's continuation in practice.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x6a09_e667_f3bc_c909)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1_000 {
            let v = rng.next_below(13);
            assert!(v < 13);
            let r = rng.next_range(-5, 5);
            assert!((-5..=5).contains(&r));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SplitMix64::new(99);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b} too skewed");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
