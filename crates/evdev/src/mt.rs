//! Multi-touch protocol B encoding and decoding.
//!
//! Touchscreens report contacts through slotted absolute axes: an
//! `ABS_MT_SLOT` event selects a slot, `ABS_MT_TRACKING_ID` binds or releases
//! a contact in it, position/pressure events update it, and `SYN_REPORT`
//! publishes the batch. The [`MtEncoder`] turns high-level contact updates
//! into that wire form; the [`MtDecoder`] reconstructs contact lifecycles
//! from a raw stream. Both ends are exercised against each other by property
//! tests, which is what lets the replay agent guarantee a bit-identical
//! workload.

use serde::{Deserialize, Serialize};

use crate::event::{codes, EventType, InputEvent, TimedEvent, TRACKING_ID_NONE};
use crate::time::SimTime;

/// A contact position in screen coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal position in pixels.
    pub x: i32,
    /// Vertical position in pixels.
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in pixels.
    pub fn distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        (dx * dx + dy * dy).sqrt()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point {
            x: (self.x as f64 + (other.x - self.x) as f64 * t).round() as i32,
            y: (self.y as f64 + (other.y - self.y) as f64 * t).round() as i32,
        }
    }
}

/// Encodes contact changes into protocol-B event packets.
///
/// The encoder owns the slot table and tracking-id counter of one simulated
/// touchscreen. Each `touch_down` / `touch_move` / `touch_up` call produces
/// the events of one packet *without* the trailing `SYN_REPORT`, so multiple
/// contacts can change within a single packet; [`MtEncoder::sync`] ends the
/// packet.
///
/// # Examples
///
/// ```
/// use interlag_evdev::mt::{MtEncoder, Point};
///
/// let mut enc = MtEncoder::new();
/// let mut packet = enc.touch_down(0, Point::new(363, 419), 130).unwrap();
/// packet.push(MtEncoder::sync());
/// assert!(packet.last().unwrap().is_syn_report());
/// ```
#[derive(Debug, Clone)]
pub struct MtEncoder {
    slots: Vec<Option<i32>>,
    current_slot: usize,
    next_tracking_id: i32,
}

/// Error returned when a contact operation targets a slot in the wrong
/// state (double down, move/up without down, or slot out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotStateError {
    /// The offending slot.
    pub slot: usize,
    /// What the caller attempted.
    pub operation: &'static str,
}

impl std::fmt::Display for SlotStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {} on slot {}", self.operation, self.slot)
    }
}

impl std::error::Error for SlotStateError {}

/// Default number of contact slots (matches the Galaxy Nexus mXT224 panel).
pub const DEFAULT_SLOTS: usize = 10;

/// Hard upper bound on decoder slots. Real panels top out well below this;
/// a malformed `ABS_MT_SLOT` value (e.g. `i32::MAX` from a corrupted
/// trace) used to grow the slot table unboundedly — an allocation-abort
/// waiting to happen — and is now rejected instead.
pub const MAX_SLOTS: usize = 64;

/// A malformed event in a protocol-B stream, as detected by
/// [`MtDecoder::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtError {
    /// `ABS_MT_SLOT` selected a negative slot or one at/beyond
    /// [`MAX_SLOTS`].
    SlotOutOfRange {
        /// The raw slot value from the event.
        value: i32,
    },
    /// A tracking id landed in a slot that already holds a live contact
    /// (a finger went down twice without lifting — typically a lost `up`).
    DownOnOccupied {
        /// The slot with the live contact.
        slot: usize,
    },
    /// A tracking-id release arrived for an empty slot (an `up` without a
    /// preceding `down`).
    UpWithoutContact {
        /// The empty slot.
        slot: usize,
    },
}

impl std::fmt::Display for MtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtError::SlotOutOfRange { value } => {
                write!(f, "ABS_MT_SLOT value {value} outside 0..{MAX_SLOTS}")
            }
            MtError::DownOnOccupied { slot } => {
                write!(f, "tracking id assigned to occupied slot {slot}")
            }
            MtError::UpWithoutContact { slot } => {
                write!(f, "tracking id released on empty slot {slot}")
            }
        }
    }
}

impl std::error::Error for MtError {}

impl Default for MtEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MtEncoder {
    /// Creates an encoder with [`DEFAULT_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// Creates an encoder with an explicit slot count.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "a touchscreen needs at least one slot");
        MtEncoder { slots: vec![None; slots], current_slot: 0, next_tracking_id: 0 }
    }

    /// Number of currently active contacts.
    pub fn active_contacts(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn select_slot(&mut self, slot: usize, out: &mut Vec<InputEvent>) {
        if self.current_slot != slot {
            out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_SLOT, slot as i32));
            self.current_slot = slot;
        }
    }

    /// Puts a new contact down in `slot` at `pos` with `pressure`.
    ///
    /// Returns the events of the packet body. The first contact also
    /// presses `BTN_TOUCH`.
    ///
    /// # Errors
    ///
    /// [`SlotStateError`] if the slot is occupied or out of range.
    pub fn touch_down(
        &mut self,
        slot: usize,
        pos: Point,
        pressure: i32,
    ) -> Result<Vec<InputEvent>, SlotStateError> {
        if slot >= self.slots.len() || self.slots[slot].is_some() {
            return Err(SlotStateError { slot, operation: "touch_down" });
        }
        let first_contact = self.active_contacts() == 0;
        let id = self.next_tracking_id;
        self.next_tracking_id = self.next_tracking_id.wrapping_add(1) & 0xffff;
        self.slots[slot] = Some(id);

        let mut out = Vec::with_capacity(8);
        self.select_slot(slot, &mut out);
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, id));
        if first_contact {
            out.push(InputEvent::new(EventType::Key, codes::BTN_TOUCH, 1));
        }
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_X, pos.x));
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_Y, pos.y));
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_PRESSURE, pressure));
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_TOUCH_MAJOR, 5));
        Ok(out)
    }

    /// Moves the contact in `slot` to `pos`.
    ///
    /// # Errors
    ///
    /// [`SlotStateError`] if the slot is empty or out of range.
    pub fn touch_move(
        &mut self,
        slot: usize,
        pos: Point,
    ) -> Result<Vec<InputEvent>, SlotStateError> {
        if slot >= self.slots.len() || self.slots[slot].is_none() {
            return Err(SlotStateError { slot, operation: "touch_move" });
        }
        let mut out = Vec::with_capacity(3);
        self.select_slot(slot, &mut out);
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_X, pos.x));
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_POSITION_Y, pos.y));
        Ok(out)
    }

    /// Lifts the contact in `slot`. The last contact also releases
    /// `BTN_TOUCH`.
    ///
    /// # Errors
    ///
    /// [`SlotStateError`] if the slot is empty or out of range.
    pub fn touch_up(&mut self, slot: usize) -> Result<Vec<InputEvent>, SlotStateError> {
        if slot >= self.slots.len() || self.slots[slot].is_none() {
            return Err(SlotStateError { slot, operation: "touch_up" });
        }
        self.slots[slot] = None;
        let mut out = Vec::with_capacity(3);
        self.select_slot(slot, &mut out);
        out.push(InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, TRACKING_ID_NONE));
        if self.active_contacts() == 0 {
            out.push(InputEvent::new(EventType::Key, codes::BTN_TOUCH, 0));
        }
        Ok(out)
    }

    /// The packet terminator every batch must end with.
    pub fn sync() -> InputEvent {
        InputEvent::syn_report()
    }
}

/// A contact lifecycle change reconstructed by the [`MtDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContactEvent {
    /// A finger landed.
    Down {
        /// Slot the contact occupies.
        slot: usize,
        /// Kernel tracking id.
        tracking_id: i32,
        /// Landing position.
        pos: Point,
        /// Packet timestamp.
        time: SimTime,
    },
    /// A finger moved.
    Move {
        /// Slot of the moving contact.
        slot: usize,
        /// New position.
        pos: Point,
        /// Packet timestamp.
        time: SimTime,
    },
    /// A finger lifted.
    Up {
        /// Slot that was released.
        slot: usize,
        /// Lift position (last known).
        pos: Point,
        /// Packet timestamp.
        time: SimTime,
    },
}

impl ContactEvent {
    /// The packet timestamp, whatever the variant.
    pub fn time(&self) -> SimTime {
        match *self {
            ContactEvent::Down { time, .. }
            | ContactEvent::Move { time, .. }
            | ContactEvent::Up { time, .. } => time,
        }
    }

    /// The slot, whatever the variant.
    pub fn slot(&self) -> usize {
        match *self {
            ContactEvent::Down { slot, .. }
            | ContactEvent::Move { slot, .. }
            | ContactEvent::Up { slot, .. } => slot,
        }
    }

    /// The position, whatever the variant.
    pub fn pos(&self) -> Point {
        match *self {
            ContactEvent::Down { pos, .. }
            | ContactEvent::Move { pos, .. }
            | ContactEvent::Up { pos, .. } => pos,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    tracking_id: Option<i32>,
    pos: Point2,
    dirty_down: bool,
    dirty_move: bool,
    dirty_up: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Point2 {
    x: i32,
    y: i32,
}

/// Reconstructs [`ContactEvent`]s from a raw protocol-B stream.
///
/// Feed every event (from one device) in order with
/// [`MtDecoder::push`]; completed contact changes are emitted when the
/// `SYN_REPORT` arrives.
///
/// # Examples
///
/// ```
/// use interlag_evdev::mt::{ContactEvent, MtDecoder, MtEncoder, Point};
/// use interlag_evdev::time::SimTime;
///
/// let mut enc = MtEncoder::new();
/// let mut dec = MtDecoder::new();
/// let t = SimTime::from_millis(5);
/// let mut out = Vec::new();
/// for ev in enc.touch_down(0, Point::new(10, 20), 40).unwrap() {
///     out.extend(dec.push(t, ev));
/// }
/// out.extend(dec.push(t, MtEncoder::sync()));
/// assert!(matches!(out[0], ContactEvent::Down { slot: 0, .. }));
/// ```
#[derive(Debug, Clone)]
pub struct MtDecoder {
    slots: Vec<SlotState>,
    current_slot: usize,
}

impl Default for MtDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MtDecoder {
    /// Creates a decoder with [`DEFAULT_SLOTS`] slots.
    pub fn new() -> Self {
        MtDecoder { slots: vec![SlotState::default(); DEFAULT_SLOTS], current_slot: 0 }
    }

    fn slot_mut(&mut self, idx: usize) -> &mut SlotState {
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, SlotState::default);
        }
        &mut self.slots[idx]
    }

    /// Consumes one raw event stamped `time`; returns contact changes
    /// completed by it (non-empty only for `SYN_REPORT`). Malformed events
    /// are dropped silently; use [`MtDecoder::try_push`] to observe them.
    pub fn push(&mut self, time: SimTime, event: InputEvent) -> Vec<ContactEvent> {
        self.try_push(time, event).unwrap_or_default()
    }

    /// Consumes one raw event stamped `time`, reporting malformed slot
    /// sequences instead of silently tolerating (or, for wild
    /// `ABS_MT_SLOT` values, unboundedly growing the slot table on) them.
    ///
    /// The decoder stays usable after an error: a double `down` re-binds
    /// the slot (the usual recovery when an `up` was lost in transit), the
    /// other malformed events leave the state untouched.
    ///
    /// # Errors
    ///
    /// [`MtError`] for slot values outside `0..`[`MAX_SLOTS`], a tracking
    /// id assigned to an occupied slot, or a release on an empty slot.
    pub fn try_push(
        &mut self,
        time: SimTime,
        event: InputEvent,
    ) -> Result<Vec<ContactEvent>, MtError> {
        match (event.kind, event.code) {
            (EventType::Abs, codes::ABS_MT_SLOT) => {
                if event.value < 0 || event.value as usize >= MAX_SLOTS {
                    return Err(MtError::SlotOutOfRange { value: event.value });
                }
                self.current_slot = event.value as usize;
                self.slot_mut(self.current_slot);
            }
            (EventType::Abs, codes::ABS_MT_TRACKING_ID) => {
                let cur = self.current_slot;
                let s = self.slot_mut(cur);
                if event.value == TRACKING_ID_NONE {
                    if s.tracking_id.is_some() {
                        s.dirty_up = true;
                    } else {
                        return Err(MtError::UpWithoutContact { slot: cur });
                    }
                } else {
                    let occupied = s.tracking_id.is_some() && !s.dirty_up;
                    s.tracking_id = Some(event.value);
                    s.dirty_down = true;
                    if occupied {
                        return Err(MtError::DownOnOccupied { slot: cur });
                    }
                }
            }
            (EventType::Abs, codes::ABS_MT_POSITION_X) => {
                let cur = self.current_slot;
                let s = self.slot_mut(cur);
                s.pos.x = event.value;
                s.dirty_move = true;
            }
            (EventType::Abs, codes::ABS_MT_POSITION_Y) => {
                let cur = self.current_slot;
                let s = self.slot_mut(cur);
                s.pos.y = event.value;
                s.dirty_move = true;
            }
            (EventType::Syn, codes::SYN_REPORT) => return Ok(self.flush(time)),
            _ => {}
        }
        Ok(Vec::new())
    }

    fn flush(&mut self, time: SimTime) -> Vec<ContactEvent> {
        let mut out = Vec::new();
        for (slot, s) in self.slots.iter_mut().enumerate() {
            let pos = Point::new(s.pos.x, s.pos.y);
            if s.dirty_down {
                out.push(ContactEvent::Down {
                    slot,
                    tracking_id: s.tracking_id.unwrap_or(0),
                    pos,
                    time,
                });
                // A down and an up squeezed into one packet (lost
                // intermediate SYN): complete the lifecycle instead of
                // leaving the contact stuck down forever.
                if s.dirty_up {
                    out.push(ContactEvent::Up { slot, pos, time });
                    s.tracking_id = None;
                }
            } else if s.dirty_up {
                out.push(ContactEvent::Up { slot, pos, time });
                s.tracking_id = None;
            } else if s.dirty_move && s.tracking_id.is_some() {
                out.push(ContactEvent::Move { slot, pos, time });
            }
            s.dirty_down = false;
            s.dirty_move = false;
            s.dirty_up = false;
        }
        out
    }

    /// Decodes a whole timed-event stream in one call, ignoring events from
    /// devices other than `device`.
    pub fn decode_stream<'a, I>(events: I, device: u8) -> Vec<ContactEvent>
    where
        I: IntoIterator<Item = &'a TimedEvent>,
    {
        let mut dec = MtDecoder::new();
        let mut out = Vec::new();
        for te in events {
            if te.device == device {
                out.extend(dec.push(te.time, te.event));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_packets(enc_ops: Vec<Vec<InputEvent>>, times: Vec<SimTime>) -> Vec<ContactEvent> {
        let mut dec = MtDecoder::new();
        let mut out = Vec::new();
        for (body, t) in enc_ops.into_iter().zip(times) {
            for ev in body {
                out.extend(dec.push(t, ev));
            }
            out.extend(dec.push(t, MtEncoder::sync()));
        }
        out
    }

    #[test]
    fn tap_roundtrip() {
        let mut enc = MtEncoder::new();
        let down = enc.touch_down(0, Point::new(100, 200), 60).unwrap();
        let up = enc.touch_up(0).unwrap();
        let evs =
            run_packets(vec![down, up], vec![SimTime::from_millis(0), SimTime::from_millis(80)]);
        assert_eq!(evs.len(), 2);
        assert!(matches!(
            evs[0],
            ContactEvent::Down { slot: 0, pos: Point { x: 100, y: 200 }, .. }
        ));
        assert!(matches!(evs[1], ContactEvent::Up { slot: 0, .. }));
        assert_eq!(evs[1].time(), SimTime::from_millis(80));
    }

    #[test]
    fn swipe_emits_moves() {
        let mut enc = MtEncoder::new();
        let mut packets = vec![enc.touch_down(0, Point::new(0, 0), 55).unwrap()];
        for i in 1..=5 {
            packets.push(enc.touch_move(0, Point::new(i * 10, i * 20)).unwrap());
        }
        packets.push(enc.touch_up(0).unwrap());
        let times: Vec<SimTime> =
            (0..packets.len() as u64).map(|i| SimTime::from_millis(i * 16)).collect();
        let evs = run_packets(packets, times);
        assert_eq!(evs.len(), 7);
        let moves = evs.iter().filter(|e| matches!(e, ContactEvent::Move { .. })).count();
        assert_eq!(moves, 5);
        assert_eq!(evs[3].pos(), Point::new(30, 60));
    }

    #[test]
    fn two_finger_contacts_use_slots() {
        let mut enc = MtEncoder::new();
        let p1 = enc.touch_down(0, Point::new(10, 10), 40).unwrap();
        let p2 = enc.touch_down(1, Point::new(90, 90), 40).unwrap();
        assert_eq!(enc.active_contacts(), 2);
        // The second down must carry a slot-select event.
        assert!(p2
            .iter()
            .any(|e| e.kind == EventType::Abs && e.code == codes::ABS_MT_SLOT && e.value == 1));
        // BTN_TOUCH is only pressed once.
        let btn = |p: &Vec<InputEvent>| {
            p.iter().filter(|e| e.kind == EventType::Key && e.code == codes::BTN_TOUCH).count()
        };
        assert_eq!(btn(&p1), 1);
        assert_eq!(btn(&p2), 0);
        let up0 = enc.touch_up(0).unwrap();
        assert!(!up0.iter().any(|e| e.code == codes::BTN_TOUCH));
        let up1 = enc.touch_up(1).unwrap();
        assert!(up1.iter().any(|e| e.code == codes::BTN_TOUCH && e.value == 0));
    }

    #[test]
    fn invalid_slot_operations_error() {
        let mut enc = MtEncoder::new();
        assert!(enc.touch_move(0, Point::new(1, 1)).is_err());
        assert!(enc.touch_up(0).is_err());
        enc.touch_down(0, Point::new(1, 1), 30).unwrap();
        let err = enc.touch_down(0, Point::new(2, 2), 30).unwrap_err();
        assert_eq!(err.operation, "touch_down");
        assert!(enc.touch_down(DEFAULT_SLOTS, Point::new(1, 1), 30).is_err());
    }

    #[test]
    fn wild_slot_values_are_rejected_not_allocated() {
        // A corrupted trace selecting slot i32::MAX used to resize the
        // slot table to 2^31 entries; it must now be a typed error.
        let mut dec = MtDecoder::new();
        let ev = InputEvent::new(EventType::Abs, codes::ABS_MT_SLOT, i32::MAX);
        assert_eq!(
            dec.try_push(SimTime::ZERO, ev),
            Err(MtError::SlotOutOfRange { value: i32::MAX })
        );
        let neg = InputEvent::new(EventType::Abs, codes::ABS_MT_SLOT, -3);
        assert_eq!(dec.try_push(SimTime::ZERO, neg), Err(MtError::SlotOutOfRange { value: -3 }));
        // The tolerant path drops the event and the decoder keeps working.
        assert!(dec.push(SimTime::ZERO, ev).is_empty());
        let mut enc = MtEncoder::new();
        for e in enc.touch_down(0, Point::new(5, 6), 30).unwrap() {
            assert!(dec.try_push(SimTime::ZERO, e).is_ok());
        }
        let out = dec.push(SimTime::ZERO, MtEncoder::sync());
        assert!(matches!(out[0], ContactEvent::Down { slot: 0, .. }));
    }

    #[test]
    fn double_down_is_reported_but_rebinds_the_slot() {
        let mut dec = MtDecoder::new();
        let id = |v| InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, v);
        assert!(dec.try_push(SimTime::ZERO, id(7)).is_ok());
        dec.push(SimTime::ZERO, MtEncoder::sync());
        // Second down without an up: the lost-up recovery case.
        let t = SimTime::from_millis(50);
        assert_eq!(dec.try_push(t, id(8)), Err(MtError::DownOnOccupied { slot: 0 }));
        let out = dec.push(t, MtEncoder::sync());
        assert!(
            matches!(out[0], ContactEvent::Down { slot: 0, tracking_id: 8, .. }),
            "recovered contact: {out:?}"
        );
    }

    #[test]
    fn up_without_down_is_reported_and_ignored() {
        let mut dec = MtDecoder::new();
        let up = InputEvent::new(EventType::Abs, codes::ABS_MT_TRACKING_ID, TRACKING_ID_NONE);
        assert_eq!(dec.try_push(SimTime::ZERO, up), Err(MtError::UpWithoutContact { slot: 0 }));
        assert!(dec.push(SimTime::ZERO, MtEncoder::sync()).is_empty());
    }

    #[test]
    fn down_and_up_merged_into_one_packet_complete_the_lifecycle() {
        // A lost SYN_REPORT merges a tap's down and up packets; the
        // decoder must not leave the contact stuck down forever.
        let mut enc = MtEncoder::new();
        let mut dec = MtDecoder::new();
        let mut body = enc.touch_down(0, Point::new(40, 50), 30).unwrap();
        body.extend(enc.touch_up(0).unwrap());
        let mut out = Vec::new();
        for ev in body {
            out.extend(dec.push(SimTime::ZERO, ev));
        }
        out.extend(dec.push(SimTime::ZERO, MtEncoder::sync()));
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], ContactEvent::Down { slot: 0, .. }));
        assert!(matches!(out[1], ContactEvent::Up { slot: 0, .. }));
        // The slot is free again for the next tap.
        let down2 = enc.touch_down(0, Point::new(1, 2), 30).unwrap();
        for ev in down2 {
            assert!(dec.try_push(SimTime::from_millis(9), ev).is_ok());
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0, 0);
        let b = Point::new(100, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(50, 25));
        assert_eq!(a.lerp(b, 2.0), b); // clamps
    }

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(Point::new(0, 0).distance(Point::new(3, 4)), 5.0);
    }
}
