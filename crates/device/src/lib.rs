//! # interlag-device — the simulated Android device
//!
//! The paper's testbed is a Qualcomm Dragonboard APQ8074 running Android
//! 4.2.2 with one active core. This crate is its simulation: a single-core
//! CPU with the Snapdragon 8074 OPP table, a scripted app layer that turns
//! replayed input events into compute tasks, a renderer producing the
//! screen contents, and capture/trace taps for the analysis pipeline.
//!
//! * [`cluster`] — the heterogeneous big.LITTLE extension of the loop;
//! * [`scene`] — what the screen shows (elements, cursor, spinner);
//! * [`render`] — scenes + decorations (clock, blink, spinner) to pixels;
//! * [`task`] — phased compute work whose service time scales with DVFS;
//! * [`script`] — the app-side half of a recorded workload;
//! * [`dvfs`] — the governor interface and the fixed-frequency governor;
//! * [`device`] — the 1 ms-quantum execution loop tying it all together;
//! * [`error`] — the typed failures a run can surface instead of panicking.
//!
//! # Examples
//!
//! Record a one-tap workload, replay it at a fixed frequency, and check
//! that the captured video shows the app launch:
//!
//! ```
//! use interlag_device::device::{Device, DeviceConfig};
//! use interlag_device::dvfs::FixedGovernor;
//! use interlag_device::scene::{Scene, SceneUpdate};
//! use interlag_device::script::{DeviceScript, InteractionCategory, InteractionSpec};
//! use interlag_device::task::TaskSpec;
//! use interlag_evdev::gesture::Gesture;
//! use interlag_evdev::mt::Point;
//! use interlag_evdev::replay::ReplayAgent;
//! use interlag_evdev::time::SimTime;
//! use interlag_power::opp::Frequency;
//! use interlag_video::frame::Rect;
//!
//! let script = DeviceScript {
//!     interactions: vec![InteractionSpec {
//!         label: "launch gallery".into(),
//!         start: SimTime::from_millis(500),
//!         gesture: Gesture::tap(Point::new(20, 40)),
//!         widget: Some(Rect::new(10, 30, 20, 20)),
//!         response: Some(TaskSpec::single(
//!             50_000_000,
//!             SceneUpdate::replace(Scene::new(7)),
//!         )),
//!         category: InteractionCategory::Common,
//!     }],
//!     background: Vec::new(),
//!     tick: None,
//! };
//!
//! let device = Device::new(DeviceConfig::default());
//! let trace = script.record_trace();
//! let mut governor = FixedGovernor::new(Frequency::from_mhz(960));
//! let run = device
//!     .run(&script, ReplayAgent::new(trace), &mut governor, SimTime::from_secs(3))
//!     .expect("clean run");
//!
//! let lag = run.interactions[0].true_lag().expect("interaction serviced");
//! assert!(lag.as_millis() > 30 && lag.as_millis() < 200);
//! assert!(run.video.unwrap().len() > 80); // ~3 s at 30 fps
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod device;
pub mod dvfs;
pub mod error;
pub mod render;
pub mod scene;
pub mod script;
pub mod task;

pub use cluster::{
    ClusterDevice, ClusterDeviceConfig, ClusterRunArtifacts, ClusterSpec, ClusterTopology,
    MigrationModel,
};
pub use device::{CaptureMode, Device, DeviceConfig, InteractionRecord, RunArtifacts};
pub use dvfs::{FixedGovernor, Governor, LoadSample};
pub use error::DeviceError;
pub use scene::{Element, Scene, SceneUpdate};
pub use script::{DeviceScript, InteractionCategory, InteractionSpec};
pub use task::{Phase, TaskKind, TaskSpec};
