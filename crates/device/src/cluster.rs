//! The heterogeneous big.LITTLE device and its execution loop.
//!
//! The paper's testbed is a single active Krait core, but the phones that
//! followed it are heterogeneous: clusters of efficiency and performance
//! cores with distinct OPP tables, a scheduler migrating tasks between
//! them on load thresholds, and a thermal envelope capping the big
//! cluster under sustained load. [`ClusterDevice`] extends the paper's
//! simulator to that shape: each cluster runs one active core under its
//! own [`Governor`] and [`OppTable`], foreground work is dispatched to a
//! pinned cluster, and an HMP-style [`MigrationModel`] moves unpinned
//! tasks up and down on the per-cluster load signal.
//!
//! The load-bearing invariant, pinned by tests here and in the
//! conformance suite: a [`ClusterTopology::single`] run is **bit-identical**
//! (interactions and activity trace) to [`Device::run`] with capture off —
//! the heterogeneous loop is the single-core loop, generalised, not a
//! second implementation of the device semantics. Thermal pressure is not
//! modelled here: wrap the big cluster's governor in the `interlag-faults`
//! thermal envelope, which composes through the [`Governor`] trait.

use std::collections::VecDeque;

use interlag_evdev::mt::MtDecoder;
use interlag_evdev::replay::{ReplayStats, Replayer};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::CancelToken;
use interlag_power::energy::{ActivitySample, ActivityTrace};
use interlag_power::opp::{Frequency, OppTable};

use crate::device::{Device, InteractionRecord, CANCEL_STRIDE};
use crate::dvfs::{Governor, LoadSample};
use crate::error::DeviceError;
use crate::scene::Scene;
use crate::script::DeviceScript;
use crate::task::{Task, TaskKind, TaskSpec};

/// One CPU cluster: a name, its core count and its OPP table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Cluster name (`"LITTLE"`, `"big"`, `"cpu"`).
    pub name: String,
    /// Cores in the cluster (descriptive; like the paper's testbed, one
    /// core per cluster is active in the simulation).
    pub cores: u32,
    /// The cluster's operating points.
    pub opps: OppTable,
}

/// The device's cluster layout, efficiency clusters first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTopology {
    clusters: Vec<ClusterSpec>,
}

impl ClusterTopology {
    /// A homogeneous single-cluster topology — the paper's device,
    /// expressed in cluster terms. Runs of this topology are
    /// bit-identical to [`Device::run`].
    pub fn single(opps: OppTable) -> Self {
        ClusterTopology { clusters: vec![ClusterSpec { name: "cpu".to_string(), cores: 1, opps }] }
    }

    /// The 4×LITTLE + 4×big reference topology: a Cortex-A7-class
    /// efficiency cluster (index 0) under the full Snapdragon table on
    /// the big cluster (index 1).
    pub fn big_little() -> Self {
        ClusterTopology {
            clusters: vec![
                ClusterSpec {
                    name: "LITTLE".to_string(),
                    cores: 4,
                    opps: OppTable::cortex_a7_little(),
                },
                ClusterSpec {
                    name: "big".to_string(),
                    cores: 4,
                    opps: OppTable::snapdragon_8074(),
                },
            ],
        }
    }

    /// The clusters, efficiency first.
    pub fn clusters(&self) -> &[ClusterSpec] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `false`: topologies always hold at least one cluster.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// HMP-style task migration thresholds on the per-cluster load signal.
///
/// Every `eval_period` the device computes each cluster's load over the
/// elapsed window; a cluster at or above `up_threshold` hands its oldest
/// migratable task to the next-bigger cluster, one at or below
/// `down_threshold` hands it to the next-smaller one. Pinned foreground
/// work and UI render passes never migrate. With a single cluster the
/// model is inert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Load percentage at or above which a task up-migrates.
    pub up_threshold: f64,
    /// Load percentage at or below which a task down-migrates.
    pub down_threshold: f64,
    /// How often migration is evaluated.
    pub eval_period: SimDuration,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            up_threshold: 80.0,
            down_threshold: 20.0,
            eval_period: SimDuration::from_millis(20),
        }
    }
}

/// Static configuration of the heterogeneous device.
#[derive(Debug, Clone)]
pub struct ClusterDeviceConfig {
    /// The cluster layout.
    pub topology: ClusterTopology,
    /// The migration thresholds.
    pub migration: MigrationModel,
    /// Simulation step.
    pub quantum: SimDuration,
    /// Kernel + framework cost of handling one input packet, in cycles.
    pub input_cost_cycles: u64,
    /// UI-thread cost of producing one animation frame, in cycles.
    pub ui_render_cycles: u64,
    /// Foreground pinning: `(interaction id, cluster index)` pairs.
    /// Unpinned interactions dispatch to cluster 0, like all background
    /// work, and may then migrate.
    pub pins: Vec<(usize, usize)>,
}

impl ClusterDeviceConfig {
    /// Defaults matching [`crate::device::DeviceConfig`] on the given
    /// topology: 1 ms quantum, the same input and render costs, no pins.
    pub fn new(topology: ClusterTopology) -> Self {
        ClusterDeviceConfig {
            topology,
            migration: MigrationModel::default(),
            quantum: SimDuration::from_millis(1),
            input_cost_cycles: 150_000,
            ui_render_cycles: 8_000_000,
            pins: Vec::new(),
        }
    }

    /// The cluster an interaction's foreground task is pinned to
    /// (cluster 0 when unpinned), clamped onto the topology.
    fn pin_of(&self, id: usize) -> usize {
        self.pins
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, c)| (*c).min(self.topology.len() - 1))
            .unwrap_or(0)
    }
}

/// Everything one heterogeneous workload execution produces.
#[derive(Debug, Clone)]
pub struct ClusterRunArtifacts {
    /// Per-cluster governor names, cluster order.
    pub governor_names: Vec<String>,
    /// Per-cluster frequency/busy traces for the energy model.
    pub activity: Vec<ActivityTrace>,
    /// Ground-truth interaction log (shared across clusters).
    pub interactions: Vec<InteractionRecord>,
    /// Replay-agent timing statistics.
    pub replay: ReplayStats,
    /// Malformed input events the device tolerated.
    pub input_faults: usize,
    /// Tasks moved between clusters by the migration model.
    pub migrations: u64,
    /// When the run ended.
    pub end_time: SimTime,
}

/// Mutable per-cluster execution state.
struct ClusterState {
    freq: Frequency,
    fg: VecDeque<Task>,
    bg: VecDeque<Task>,
    activity: ActivityTrace,
    busy_acc: SimDuration,
    last_sample_at: SimTime,
    next_sample_at: SimTime,
    parked: Vec<(SimTime, Task)>,
    mig_busy: SimDuration,
}

/// The simulated heterogeneous phone.
///
/// # Examples
///
/// ```
/// use interlag_device::cluster::{ClusterDevice, ClusterDeviceConfig, ClusterTopology};
/// use interlag_device::dvfs::FixedGovernor;
/// use interlag_device::scene::{Scene, SceneUpdate};
/// use interlag_device::script::{DeviceScript, InteractionCategory, InteractionSpec};
/// use interlag_device::task::TaskSpec;
/// use interlag_evdev::gesture::Gesture;
/// use interlag_evdev::mt::Point;
/// use interlag_evdev::replay::ReplayAgent;
/// use interlag_evdev::time::SimTime;
/// use interlag_video::frame::Rect;
///
/// let script = DeviceScript {
///     interactions: vec![InteractionSpec {
///         label: "launch".into(),
///         start: SimTime::from_millis(500),
///         gesture: Gesture::tap(Point::new(20, 40)),
///         widget: Some(Rect::new(10, 30, 20, 20)),
///         response: Some(TaskSpec::single(50_000_000, SceneUpdate::replace(Scene::new(7)))),
///         category: InteractionCategory::Common,
///     }],
///     background: Vec::new(),
///     tick: None,
/// };
/// let mut config = ClusterDeviceConfig::new(ClusterTopology::big_little());
/// config.pins = vec![(0, 1)]; // pin the launch to the big cluster
/// let device = ClusterDevice::new(config);
/// let trace = script.record_trace();
/// let mut little = FixedGovernor::new(interlag_power::opp::Frequency::from_mhz(300));
/// let mut big = FixedGovernor::new(interlag_power::opp::Frequency::from_mhz(2_150));
/// let run = device
///     .run(&script, ReplayAgent::new(trace), &mut [&mut little, &mut big], SimTime::from_secs(3))
///     .expect("clean run");
/// assert!(run.interactions[0].true_lag().expect("serviced").as_millis() < 100);
/// ```
#[derive(Debug)]
pub struct ClusterDevice {
    config: ClusterDeviceConfig,
}

impl ClusterDevice {
    /// Creates a heterogeneous device.
    ///
    /// # Panics
    ///
    /// Panics if the quantum is zero.
    pub fn new(config: ClusterDeviceConfig) -> Self {
        assert!(!config.quantum.is_zero(), "quantum must be positive");
        ClusterDevice { config }
    }

    /// The device configuration.
    pub fn config(&self) -> &ClusterDeviceConfig {
        &self.config
    }

    /// Executes one workload run from a freshly-booted state, one
    /// governor per cluster in cluster order.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] as for [`Device::run`] (without the capture
    /// family: the cluster device records ground truth, not video).
    ///
    /// # Panics
    ///
    /// Panics if `governors` does not match the topology's cluster count.
    pub fn run<R: Replayer>(
        &self,
        script: &DeviceScript,
        replayer: R,
        governors: &mut [&mut dyn Governor],
        until: SimTime,
    ) -> Result<ClusterRunArtifacts, DeviceError> {
        self.run_cancellable(script, replayer, governors, until, &CancelToken::none())
    }

    /// Like [`ClusterDevice::run`], with a watchdog token polled every
    /// [`CANCEL_STRIDE`] quanta.
    ///
    /// # Errors
    ///
    /// As for [`ClusterDevice::run`], plus [`DeviceError::Cancelled`] if
    /// the token fires mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `governors` does not match the topology's cluster count.
    pub fn run_cancellable<R: Replayer>(
        &self,
        script: &DeviceScript,
        mut replayer: R,
        governors: &mut [&mut dyn Governor],
        until: SimTime,
        cancel: &CancelToken,
    ) -> Result<ClusterRunArtifacts, DeviceError> {
        let cfg = &self.config;
        let clusters = cfg.topology.clusters();
        let n = clusters.len();
        assert_eq!(governors.len(), n, "one governor per cluster");
        let quantum = cfg.quantum;

        // --- state: per-cluster CPUs -------------------------------------
        let mut cs: Vec<ClusterState> = clusters
            .iter()
            .zip(governors.iter_mut())
            .map(|(spec, g)| {
                let freq = spec.opps.quantize_up(g.init(&spec.opps));
                ClusterState {
                    freq,
                    fg: VecDeque::new(),
                    bg: VecDeque::new(),
                    activity: ActivityTrace::new(),
                    busy_acc: SimDuration::ZERO,
                    last_sample_at: SimTime::ZERO,
                    next_sample_at: SimTime::ZERO + g.sample_period(),
                    parked: Vec::new(),
                    mig_busy: SimDuration::ZERO,
                }
            })
            .collect();

        // --- state: UI ----------------------------------------------------
        let mut scene = Scene::default();
        let mut spinner_frame = 0u64;
        let mut next_render_spawn = SimTime::ZERO;

        // --- state: input dispatch ----------------------------------------
        let mut decoder = MtDecoder::new();
        let mut input_faults = 0usize;
        let mut next_interaction = 0usize;
        let mut interactions: Vec<InteractionRecord> = script
            .interactions
            .iter()
            .enumerate()
            .map(|(id, spec)| InteractionRecord {
                id,
                label: spec.label.clone(),
                input_time: spec.start,
                category: spec.category,
                spurious: spec.is_spurious(),
                triggered: false,
                service_time: None,
            })
            .collect();

        // --- state: scripted background work ------------------------------
        let mut next_bg = 0usize;
        let mut next_tick_at = script.tick.map(|_| SimTime::ZERO + quantum);

        // --- state: I/O waits and migration -------------------------------
        let mut pending_updates: Vec<(SimTime, crate::scene::SceneUpdate, TaskKind, bool)> =
            Vec::new();
        let mut migrations = 0u64;
        let mut next_mig_at = SimTime::ZERO + cfg.migration.eval_period;

        let mut now = SimTime::ZERO;
        let mut quanta = 0u64;
        while now < until {
            if quanta.is_multiple_of(CANCEL_STRIDE) && cancel.is_cancelled() {
                return Err(DeviceError::Cancelled);
            }
            quanta += 1;
            let qend = now + quantum;

            // 1. Deliver input events due by `now`. Every cluster governor
            // sees the input hook, as a cpufreq input notifier fans out to
            // every policy.
            for te in replayer.poll(now) {
                for (ci, g) in governors.iter_mut().enumerate() {
                    let opps = &clusters[ci].opps;
                    if let Some(f) = g.on_input(te.time, opps) {
                        cs[ci].freq = opps.quantize_up(f);
                    }
                }
                if te.event.is_syn_report() && cfg.input_cost_cycles > 0 {
                    cs[0].bg.push_back(Task::new(
                        TaskSpec::single(cfg.input_cost_cycles, crate::scene::SceneUpdate::Nop),
                        TaskKind::Background,
                    ));
                }
                for trigger in Device::triggers(&mut decoder, &te, &mut input_faults) {
                    let target = cfg.pin_of(next_interaction);
                    Device::dispatch(
                        script,
                        &mut interactions,
                        &mut next_interaction,
                        &mut cs[target].fg,
                        te.time,
                        trigger,
                    );
                }
            }

            // 2. Spawn scripted background work (cluster 0: background
            // work starts on the efficiency cluster and migrates up).
            while next_bg < script.background.len() && script.background[next_bg].start <= now {
                cs[0].bg.push_back(Task::new(
                    TaskSpec::single(
                        script.background[next_bg].cycles,
                        crate::scene::SceneUpdate::Nop,
                    ),
                    TaskKind::Background,
                ));
                next_bg += 1;
            }

            // 3. Periodic system tick, also on cluster 0.
            if let (Some(tick), Some(due)) = (script.tick, next_tick_at.as_mut()) {
                while *due <= now {
                    cs[0].bg.push_back(Task::new(
                        TaskSpec::single(tick.cycles, crate::scene::SceneUpdate::Nop),
                        TaskKind::Background,
                    ));
                    *due += tick.period;
                }
            }

            // 3b. Animation render passes, pinned to cluster 0's UI thread.
            if scene.spinner {
                while next_render_spawn <= now {
                    let pending =
                        cs[0].fg.iter().filter(|t| t.kind() == TaskKind::UiRender).count();
                    if pending < 2 {
                        cs[0].fg.push_back(Task::new(
                            TaskSpec::single(
                                (cfg.ui_render_cycles + scene.animation_load).max(1),
                                crate::scene::SceneUpdate::Nop,
                            ),
                            TaskKind::UiRender,
                        ));
                    }
                    next_render_spawn += crate::render::SPINNER_FRAME_PERIOD;
                }
            } else if next_render_spawn <= now {
                next_render_spawn = now + crate::render::SPINNER_FRAME_PERIOD;
            }

            // 3c. Task migration on the per-cluster load signal. Inert
            // with one cluster, so the single topology stays bit-identical
            // to the single-core device.
            if n > 1 && qend >= next_mig_at {
                let loads: Vec<f64> = cs
                    .iter()
                    .map(|s| {
                        LoadSample { busy: s.mig_busy, window: cfg.migration.eval_period }
                            .load_percent()
                    })
                    .collect();
                // Down-migrations first: an idle bigger cluster drains
                // before the up pass refills it, so a task up-migrated in
                // this round is never bounced straight back by the same
                // round's stale load snapshot.
                for ci in (1..n).rev() {
                    if loads[ci] <= cfg.migration.down_threshold {
                        migrations += u64::from(Self::migrate(&mut cs, ci, ci - 1, &cfg.pins));
                    }
                }
                for (ci, &load) in loads.iter().enumerate().take(n - 1) {
                    if load >= cfg.migration.up_threshold {
                        migrations += u64::from(Self::migrate(&mut cs, ci, ci + 1, &cfg.pins));
                    }
                }
                for s in cs.iter_mut() {
                    s.mig_busy = SimDuration::ZERO;
                }
                next_mig_at = qend + cfg.migration.eval_period;
            }

            // 4a. Resume tasks whose I/O wait has elapsed, per cluster.
            for s in cs.iter_mut() {
                if s.parked.is_empty() {
                    continue;
                }
                s.parked.sort_by_key(|(at, _)| *at);
                while s.parked.first().is_some_and(|(at, _)| *at <= now) {
                    let (_, task) = s.parked.remove(0);
                    match task.kind() {
                        TaskKind::Foreground { .. } | TaskKind::UiRender => s.fg.push_front(task),
                        TaskKind::Background => s.bg.push_front(task),
                    }
                }
            }

            // 4b. Apply scene updates whose I/O wait has elapsed (shared).
            if !pending_updates.is_empty() {
                pending_updates.sort_by_key(|(at, ..)| *at);
                while pending_updates.first().is_some_and(|(at, ..)| *at <= qend) {
                    let (at, update, kind, task_finished) = pending_updates.remove(0);
                    scene.apply(&update);
                    if task_finished {
                        if let TaskKind::Foreground { id } = kind {
                            if let Some(rec) = interactions.get_mut(id) {
                                rec.service_time = Some(at.max(now));
                            }
                        }
                    }
                }
            }

            // 4c + 5. Execute and account the quantum on every cluster, in
            // cluster order.
            for s in cs.iter_mut() {
                let budget = s.freq.cycles_in(quantum);
                let khz = s.freq.as_khz() as u64;
                let mut consumed = 0u64;
                while consumed < budget {
                    let from_fg = !s.fg.is_empty();
                    let queue = if from_fg { &mut s.fg } else { &mut s.bg };
                    let Some(task) = queue.front_mut() else { break };
                    let before = consumed;
                    let (c, completions) = task.advance(budget - consumed);
                    consumed += c;
                    let finished = task.is_finished();
                    let blocked = Task::blocked_after(&completions);
                    let mut block_at = SimTime::ZERO;
                    for comp in completions {
                        let at = before + comp.at_consumed_cycles;
                        let ts = now + SimDuration::from_micros((at * 1_000).div_ceil(khz));
                        if comp.wait.is_zero() {
                            scene.apply(&comp.update);
                            match comp.kind {
                                TaskKind::Foreground { id } if comp.task_finished => {
                                    if let Some(rec) = interactions.get_mut(id) {
                                        rec.service_time = Some(ts.min(qend));
                                    }
                                }
                                TaskKind::UiRender if comp.task_finished => {
                                    spinner_frame += 1;
                                }
                                _ => {}
                            }
                        } else {
                            let visible_at = ts.min(qend) + comp.wait;
                            block_at = visible_at;
                            pending_updates.push((
                                visible_at,
                                comp.update,
                                comp.kind,
                                comp.task_finished,
                            ));
                        }
                    }
                    if finished {
                        queue.pop_front();
                    } else if blocked.is_some() {
                        if let Some(task) = queue.pop_front() {
                            s.parked.push((block_at, task));
                        }
                    } else if c == 0 {
                        break; // cannot happen, but never spin
                    }
                }
                let busy = if consumed >= budget {
                    quantum
                } else {
                    SimDuration::from_micros(consumed * 1_000 / khz).min(quantum)
                };
                s.activity.push(ActivitySample {
                    start: now,
                    duration: quantum,
                    freq: s.freq,
                    busy,
                });
                s.busy_acc += busy;
                s.mig_busy += busy;
            }

            // 6. Governor sampling, per cluster.
            for (ci, g) in governors.iter_mut().enumerate() {
                let s = &mut cs[ci];
                if qend >= s.next_sample_at {
                    let window = qend - s.last_sample_at;
                    let sample = LoadSample { busy: s.busy_acc, window };
                    s.freq = clusters[ci].opps.quantize_up(g.on_sample(
                        qend,
                        sample,
                        &clusters[ci].opps,
                    ));
                    s.busy_acc = SimDuration::ZERO;
                    s.last_sample_at = qend;
                    s.next_sample_at = qend + g.sample_period();
                }
            }

            now = qend;
        }

        let _ = spinner_frame;
        Ok(ClusterRunArtifacts {
            governor_names: governors.iter().map(|g| g.name().to_string()).collect(),
            activity: cs.iter().map(|s| s.activity.clone()).collect(),
            interactions,
            replay: replayer.stats(),
            input_faults,
            migrations,
            end_time: now,
        })
    }

    /// Moves the oldest migratable task from cluster `from` to cluster
    /// `to`; `true` if a task moved. Background work migrates first;
    /// foreground work migrates unless pinned; UI render passes never do.
    fn migrate(cs: &mut [ClusterState], from: usize, to: usize, pins: &[(usize, usize)]) -> bool {
        if let Some(task) = cs[from].bg.pop_front() {
            cs[to].bg.push_back(task);
            return true;
        }
        let movable = cs[from].fg.front().is_some_and(|t| match t.kind() {
            TaskKind::Foreground { id } => !pins.iter().any(|(i, _)| *i == id),
            _ => false,
        });
        if movable {
            if let Some(task) = cs[from].fg.pop_front() {
                cs[to].fg.push_back(task);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{CaptureMode, DeviceConfig};
    use crate::dvfs::FixedGovernor;
    use crate::scene::SceneUpdate;
    use crate::script::{BackgroundWork, InteractionCategory, InteractionSpec, PeriodicTick};
    use interlag_evdev::gesture::Gesture;
    use interlag_evdev::mt::Point;
    use interlag_evdev::replay::ReplayAgent;
    use interlag_video::frame::Rect;

    fn simple_script() -> DeviceScript {
        let widget = Rect::new(10, 20, 30, 30);
        DeviceScript {
            interactions: vec![
                InteractionSpec {
                    label: "open app".into(),
                    start: SimTime::from_millis(500),
                    gesture: Gesture::tap(Point::new(20, 30)),
                    widget: Some(widget),
                    response: Some(TaskSpec::single(
                        60_000_000,
                        SceneUpdate::replace(Scene::new(99)),
                    )),
                    category: InteractionCategory::SimpleFrequent,
                },
                InteractionSpec {
                    label: "tap more".into(),
                    start: SimTime::from_millis(2_000),
                    gesture: Gesture::tap(Point::new(20, 30)),
                    widget: Some(widget),
                    response: Some(TaskSpec::single(
                        30_000_000,
                        SceneUpdate::replace(Scene::new(44)),
                    )),
                    category: InteractionCategory::SimpleFrequent,
                },
            ],
            background: vec![BackgroundWork {
                label: "sync".into(),
                start: SimTime::from_millis(3_000),
                cycles: 3_000_000,
            }],
            tick: Some(PeriodicTick::default()),
        }
    }

    #[test]
    fn single_cluster_is_bit_identical_to_the_device() {
        let script = simple_script();
        let trace = script.record_trace();
        let until = SimTime::from_secs(5);

        let device = Device::new(DeviceConfig { capture: CaptureMode::None, ..Default::default() });
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let baseline = device
            .run(&script, ReplayAgent::new(trace.clone()), &mut gov, until)
            .expect("clean run");

        let cluster = ClusterDevice::new(ClusterDeviceConfig::new(ClusterTopology::single(
            OppTable::snapdragon_8074(),
        )));
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = cluster
            .run(&script, ReplayAgent::new(trace), &mut [&mut gov], until)
            .expect("clean run");

        assert_eq!(run.interactions, baseline.interactions);
        assert_eq!(run.activity.len(), 1);
        assert_eq!(run.activity[0], baseline.activity);
        assert_eq!(run.migrations, 0);
    }

    #[test]
    fn pinned_compute_runs_at_the_big_clusters_speed() {
        let script = simple_script();
        let trace = script.record_trace();
        let until = SimTime::from_secs(5);

        let lag_with_pin = |pin_cluster: usize| {
            let mut config = ClusterDeviceConfig::new(ClusterTopology::big_little());
            config.pins = vec![(0, pin_cluster), (1, pin_cluster)];
            let device = ClusterDevice::new(config);
            let mut little = FixedGovernor::new(Frequency::from_mhz(300));
            let mut big = FixedGovernor::new(Frequency::from_khz(2_150_400));
            let run = device
                .run(&script, ReplayAgent::new(trace.clone()), &mut [&mut little, &mut big], until)
                .expect("clean run");
            run.interactions[0].true_lag().expect("serviced")
        };

        let on_little = lag_with_pin(0);
        let on_big = lag_with_pin(1);
        // 60 M cycles: ~200 ms at 300 MHz, ~28 ms at 2.15 GHz.
        assert!(on_little > on_big * 4, "{on_little} vs {on_big}");
    }

    #[test]
    fn sustained_background_load_up_migrates() {
        // Saturate the LITTLE cluster with background work: the migration
        // model must move some of it to the (idle, faster) big cluster.
        let script = DeviceScript {
            interactions: Vec::new(),
            background: (0..8)
                .map(|i| BackgroundWork {
                    label: format!("bg{i}"),
                    start: SimTime::from_millis(100),
                    cycles: 400_000_000,
                })
                .collect(),
            tick: None,
        };
        let device = ClusterDevice::new(ClusterDeviceConfig::new(ClusterTopology::big_little()));
        let mut little = FixedGovernor::new(Frequency::from_mhz(1_190));
        let mut big = FixedGovernor::new(Frequency::from_khz(2_150_400));
        let run = device
            .run(
                &script,
                ReplayAgent::new(interlag_evdev::trace::EventTrace::new()),
                &mut [&mut little, &mut big],
                SimTime::from_secs(3),
            )
            .expect("clean run");
        assert!(run.migrations > 0, "no up-migration under saturation");
        assert!(
            run.activity[1].busy_time() > SimDuration::from_millis(100),
            "big cluster never picked up migrated work"
        );
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let script = simple_script();
        let trace = script.record_trace();
        let run = |_: usize| {
            let mut config = ClusterDeviceConfig::new(ClusterTopology::big_little());
            config.pins = vec![(0, 1)];
            let device = ClusterDevice::new(config);
            let mut little = FixedGovernor::new(Frequency::from_mhz(600));
            let mut big = FixedGovernor::new(Frequency::from_mhz(1_500));
            device
                .run(
                    &script,
                    ReplayAgent::new(trace.clone()),
                    &mut [&mut little, &mut big],
                    SimTime::from_secs(5),
                )
                .expect("clean run")
        };
        let (a, b) = (run(0), run(1));
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.activity, b.activity);
        assert_eq!(a.migrations, b.migrations);
    }
}
