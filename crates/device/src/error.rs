//! Typed failures of the simulated device.
//!
//! [`Device::run`](crate::device::Device::run) used to panic on any
//! internal inconsistency; a study abandons one repetition instead of a
//! whole sweep when the error is a value.

use interlag_video::stream::VideoError;

/// Why a device run could not produce its artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The capture path rejected a frame.
    Video(VideoError),
    /// A watchdog cancellation token fired mid-run; the quantum loop
    /// unwound cooperatively instead of finishing the workload.
    Cancelled,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Video(e) => write!(f, "video capture failed: {e}"),
            DeviceError::Cancelled => write!(f, "device run cancelled by watchdog"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Video(e) => Some(e),
            DeviceError::Cancelled => None,
        }
    }
}

impl From<VideoError> for DeviceError {
    fn from(e: VideoError) -> Self {
        DeviceError::Video(e)
    }
}
