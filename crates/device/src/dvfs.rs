//! The DVFS hook: how frequency governors plug into the device.
//!
//! The device owns the cpufreq machinery (load accounting, OPP table,
//! frequency switching); a [`Governor`] is the policy plugged into it.
//! Concrete Linux/Android policies (ondemand, conservative, interactive)
//! live in the `interlag-governors` crate; this module defines the
//! interface plus the [`FixedGovernor`] used for the paper's 14
//! fixed-frequency runs.

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// CPU load observed over one governor sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadSample {
    /// Time the core spent executing within the window.
    pub busy: SimDuration,
    /// The window length.
    pub window: SimDuration,
}

impl LoadSample {
    /// Load as a percentage, the unit cpufreq thresholds use, clamped to
    /// 0–100. Under fault-injected timing (delayed sampling, wedge
    /// recovery) `busy` can exceed `window`; an unclamped ratio would feed
    /// loads above 100 % into threshold logic such as ondemand's
    /// `up_threshold` or interactive's `go_hispeed_load`, where arithmetic
    /// like `current × load / target_load` then overshoots the table.
    pub fn load_percent(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            (100.0 * self.busy.as_secs_f64() / self.window.as_secs_f64()).clamp(0.0, 100.0)
        }
    }
}

/// A frequency-selection policy.
///
/// The device calls [`Governor::on_sample`] every
/// [`Governor::sample_period`] with the load since the previous call, and
/// [`Governor::on_input`] whenever a user-input packet arrives (the hook
/// the Interactive governor's input boost uses). Both return the frequency
/// to run at next; the device quantises it onto the OPP table.
///
/// # The clamped load contract
///
/// [`LoadSample::load_percent`] is guaranteed to be in `0.0..=100.0` even
/// when fault injection makes the accounted busy time exceed the sampling
/// window. Governors may therefore use the percentage directly in
/// threshold comparisons and proportional scaling without re-clamping,
/// and must not rely on >100 % values to detect overload.
pub trait Governor {
    /// The governor's cpufreq name (`"ondemand"`, `"interactive"`, …).
    fn name(&self) -> &str;

    /// Resets internal state and returns the initial frequency.
    fn init(&mut self, table: &OppTable) -> Frequency;

    /// How often the governor wants to re-evaluate the load.
    fn sample_period(&self) -> SimDuration;

    /// Reacts to the load of the window that just ended.
    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency;

    /// Reacts to a user-input packet; `None` leaves the frequency alone.
    fn on_input(&mut self, _now: SimTime, _table: &OppTable) -> Option<Frequency> {
        None
    }
}

/// Pins the clock to one frequency for the whole run: the paper's
/// fixed-frequency configurations, and also cpufreq's `userspace` policy.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::{FixedGovernor, Governor, LoadSample};
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut g = FixedGovernor::new(table.min_freq());
/// assert_eq!(g.init(&table), table.min_freq());
/// let load = LoadSample { busy: SimDuration::from_millis(20), window: SimDuration::from_millis(20) };
/// assert_eq!(g.on_sample(SimTime::ZERO, load, &table), table.min_freq());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedGovernor {
    freq: Frequency,
    name: String,
}

impl FixedGovernor {
    /// Creates a governor pinned to `freq`.
    pub fn new(freq: Frequency) -> Self {
        FixedGovernor { freq, name: format!("fixed-{freq}") }
    }

    /// The pinned frequency.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }
}

impl Governor for FixedGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        table.quantize_up(self.freq)
    }

    fn sample_period(&self) -> SimDuration {
        // Nothing to decide; sample rarely to keep the loop cheap.
        SimDuration::from_millis(100)
    }

    fn on_sample(&mut self, _now: SimTime, _load: LoadSample, table: &OppTable) -> Frequency {
        table.quantize_up(self.freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_percent_basics() {
        let full =
            LoadSample { busy: SimDuration::from_millis(20), window: SimDuration::from_millis(20) };
        assert!((full.load_percent() - 100.0).abs() < 1e-9);
        let half =
            LoadSample { busy: SimDuration::from_millis(10), window: SimDuration::from_millis(20) };
        assert!((half.load_percent() - 50.0).abs() < 1e-9);
        let empty = LoadSample { busy: SimDuration::ZERO, window: SimDuration::ZERO };
        assert_eq!(empty.load_percent(), 0.0);
    }

    #[test]
    fn load_percent_is_clamped_under_chaos_schedules() {
        // Chaos-schedule repro: a wedged governor misses its sampling
        // deadline, so the next window is short while the busy accounting
        // still carries the full backlog — busy > window. Before the
        // clamp this reported 250 %, which ondemand's proportional path
        // turned into a target far above the table and interactive's
        // `current × load / target_load` overshot the same way.
        let backlog =
            LoadSample { busy: SimDuration::from_millis(50), window: SimDuration::from_millis(20) };
        assert_eq!(backlog.load_percent(), 100.0);
        // The pathological schedule from the fault injector's worst case:
        // a whole second of accrued busy against a 1 ms window.
        let wedged =
            LoadSample { busy: SimDuration::from_secs(1), window: SimDuration::from_millis(1) };
        assert_eq!(wedged.load_percent(), 100.0);
        // In-range samples are untouched by the clamp.
        let half =
            LoadSample { busy: SimDuration::from_millis(10), window: SimDuration::from_millis(20) };
        assert!((half.load_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_governor_quantizes_onto_table() {
        let table = OppTable::snapdragon_8074();
        let mut g = FixedGovernor::new(Frequency::from_mhz(1_000));
        assert_eq!(g.init(&table), Frequency::from_khz(1_036_800));
        assert_eq!(g.name(), "fixed-1.00 GHz");
    }

    #[test]
    fn fixed_governor_ignores_input() {
        let table = OppTable::snapdragon_8074();
        let mut g = FixedGovernor::new(table.min_freq());
        g.init(&table);
        assert_eq!(g.on_input(SimTime::ZERO, &table), None);
    }
}
