//! Compute work: what an interaction costs the CPU.
//!
//! Every user-visible operation is a [`TaskSpec`]: a sequence of
//! [`Phase`]s, each a number of CPU cycles followed by a scene update when
//! those cycles complete. Cycles are the right demand unit because service
//! time then responds to DVFS exactly the way the paper needs — the same
//! task takes `cycles / f` seconds at frequency `f`, so lag durations
//! shrink as the governor raises the clock.
//!
//! Progressive loading (the Gallery populating its album grid one
//! thumbnail at a time, §II-D) is a spec with one phase per thumbnail;
//! each phase boundary repaints the screen and thereby becomes a suggester
//! candidate.
//!
//! A phase may additionally carry an **I/O wait**: time spent blocked on
//! flash, network or another device after its cycles complete and before
//! its screen update appears. Waits make service time only partially
//! frequency-dependent — the reason the paper's oracle can hold a
//! mid-table frequency for I/O-heavy interactions instead of racing to
//! the top (Figure 3).

use serde::{Deserialize, Serialize};

use interlag_evdev::time::SimDuration;

use crate::scene::SceneUpdate;

/// One unit of work: burn `cycles`, block for `wait`, then apply `update`
/// to the screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// CPU cycles this phase costs.
    pub cycles: u64,
    /// I/O time after the cycles complete, during which the task blocks
    /// and the core is free for other work.
    #[serde(default)]
    pub wait: SimDuration,
    /// Scene mutation applied when the phase (cycles + wait) completes.
    pub update: SceneUpdate,
}

impl Phase {
    /// Creates a compute-only phase.
    pub fn new(cycles: u64, update: SceneUpdate) -> Self {
        Phase { cycles, wait: SimDuration::ZERO, update }
    }

    /// Creates a phase that blocks on I/O for `wait` after its cycles.
    pub fn with_wait(cycles: u64, wait: SimDuration, update: SceneUpdate) -> Self {
        Phase { cycles, wait, update }
    }
}

/// The full compute recipe of one operation.
///
/// # Examples
///
/// ```
/// use interlag_device::scene::{Scene, SceneUpdate};
/// use interlag_device::task::TaskSpec;
///
/// // An app launch: 80 M cycles of work, then the new screen appears.
/// let spec = TaskSpec::single(80_000_000, SceneUpdate::replace(Scene::new(42)));
/// assert_eq!(spec.total_cycles(), 80_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    phases: Vec<Phase>,
}

impl TaskSpec {
    /// Creates a spec from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase costs zero cycles.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a task needs at least one phase");
        assert!(phases.iter().all(|p| p.cycles > 0), "phases must cost at least one cycle");
        TaskSpec { phases }
    }

    /// A single-phase task: burn `cycles`, then apply `update`.
    pub fn single(cycles: u64, update: SceneUpdate) -> Self {
        TaskSpec::new(vec![Phase::new(cycles, update)])
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total cycle demand.
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }
}

/// What spawned a task; decides scheduling priority and bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Servicing interaction number `id`: runs ahead of background work;
    /// its last phase completion is the interaction's service point.
    Foreground {
        /// Interaction id within the run.
        id: usize,
    },
    /// Background work (sync, prefetch, input handling): the user is not
    /// waiting on it.
    Background,
    /// One UI-thread render pass for an on-screen animation frame. Runs
    /// on the same queue as foreground work — which is exactly why heavy
    /// foreground tasks cause *jank*: render passes miss their frame
    /// deadlines and animation frames drop (§VI future work).
    UiRender,
}

/// A task in execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    spec: TaskSpec,
    kind: TaskKind,
    phase_idx: usize,
    remaining_in_phase: u64,
}

/// The outcome of advancing a task by some cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCompletion {
    /// Update to apply to the scene (after `wait`, if any).
    pub update: SceneUpdate,
    /// Cycles consumed from the budget up to (and including) this
    /// completion, relative to the start of the `advance` call.
    pub at_consumed_cycles: u64,
    /// I/O wait between the cycle completion and the update becoming
    /// visible; the task blocks for this long.
    pub wait: SimDuration,
    /// `true` if this was the task's last phase.
    pub task_finished: bool,
    /// Who the task belonged to.
    pub kind: TaskKind,
}

impl Task {
    /// Instantiates a spec for execution.
    pub fn new(spec: TaskSpec, kind: TaskKind) -> Self {
        let first = spec.phases()[0].cycles;
        Task { spec, kind, phase_idx: 0, remaining_in_phase: first }
    }

    /// The task's origin.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Cycles left until the task finishes.
    pub fn remaining_cycles(&self) -> u64 {
        let rest: u64 = self.spec.phases()[self.phase_idx + 1..].iter().map(|p| p.cycles).sum();
        self.remaining_in_phase + rest
    }

    /// `true` once every phase has completed.
    pub fn is_finished(&self) -> bool {
        self.phase_idx >= self.spec.phases().len()
    }

    /// Runs the task for at most `budget` cycles. Returns the cycles
    /// actually consumed and every phase completion that occurred, with
    /// cycle-accurate positions for sub-quantum timestamping.
    ///
    /// Advancing stops early when a completed phase carries an I/O wait:
    /// the scheduler must park the task until the wait elapses before
    /// calling `advance` again.
    pub fn advance(&mut self, budget: u64) -> (u64, Vec<PhaseCompletion>) {
        let mut consumed = 0u64;
        let mut completions = Vec::new();
        while consumed < budget && !self.is_finished() {
            let available = budget - consumed;
            if self.remaining_in_phase <= available {
                consumed += self.remaining_in_phase;
                let phase = &self.spec.phases()[self.phase_idx];
                let update = phase.update.clone();
                let wait = phase.wait;
                self.phase_idx += 1;
                let finished = self.is_finished();
                if !finished {
                    self.remaining_in_phase = self.spec.phases()[self.phase_idx].cycles;
                } else {
                    self.remaining_in_phase = 0;
                }
                completions.push(PhaseCompletion {
                    update,
                    at_consumed_cycles: consumed,
                    wait,
                    task_finished: finished,
                    kind: self.kind,
                });
                if !wait.is_zero() {
                    break; // the task blocks; the scheduler parks it
                }
            } else {
                self.remaining_in_phase -= available;
                consumed += available;
            }
        }
        (consumed, completions)
    }

    /// `true` if the most recent `advance` stopped on a waiting phase and
    /// the task has more phases to run.
    pub fn blocked_after(completions: &[PhaseCompletion]) -> Option<SimDuration> {
        match completions.last() {
            Some(c) if !c.wait.is_zero() && !c.task_finished => Some(c.wait),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scene;

    fn loading_spec() -> TaskSpec {
        TaskSpec::new(vec![
            Phase::new(100, SceneUpdate::replace(Scene::new(1))),
            Phase::new(200, SceneUpdate::ShowElement(0)),
            Phase::new(300, SceneUpdate::ShowElement(1)),
        ])
    }

    #[test]
    fn advance_in_one_go() {
        let mut t = Task::new(loading_spec(), TaskKind::Foreground { id: 0 });
        assert_eq!(t.remaining_cycles(), 600);
        let (consumed, completions) = t.advance(1_000);
        assert_eq!(consumed, 600);
        assert_eq!(completions.len(), 3);
        assert_eq!(completions[0].at_consumed_cycles, 100);
        assert_eq!(completions[1].at_consumed_cycles, 300);
        assert_eq!(completions[2].at_consumed_cycles, 600);
        assert!(completions[2].task_finished);
        assert!(!completions[1].task_finished);
        assert!(t.is_finished());
    }

    #[test]
    fn advance_in_small_steps() {
        let mut t = Task::new(loading_spec(), TaskKind::Background);
        let mut all = Vec::new();
        let mut total = 0;
        while !t.is_finished() {
            let (c, comps) = t.advance(70);
            total += c;
            all.extend(comps);
        }
        assert_eq!(total, 600);
        assert_eq!(all.len(), 3);
        // Positions are relative to each advance call.
        assert_eq!(all[0].at_consumed_cycles, 30); // 100 = 70 + 30
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let mut t = Task::new(loading_spec(), TaskKind::Background);
        let (c, comps) = t.advance(0);
        assert_eq!(c, 0);
        assert!(comps.is_empty());
        assert_eq!(t.remaining_cycles(), 600);
    }

    #[test]
    fn finished_task_consumes_nothing() {
        let mut t = Task::new(TaskSpec::single(10, SceneUpdate::Nop), TaskKind::Background);
        t.advance(10);
        assert!(t.is_finished());
        let (c, comps) = t.advance(100);
        assert_eq!(c, 0);
        assert!(comps.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_spec_rejected() {
        TaskSpec::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_phase_rejected() {
        TaskSpec::new(vec![Phase::new(0, SceneUpdate::Nop)]);
    }
}
