//! The UI scene model: what the simulated screen is showing.
//!
//! A [`Scene`] is a deliberately minimal stand-in for an app's view
//! hierarchy: a textured background plus a set of rectangular elements,
//! each painted with a deterministic texture derived from its seed. What
//! matters for the QoE methodology is not what the pixels *mean* but how
//! they *change*: interactions replace scenes, loading reveals elements one
//! by one (producing the suggester's candidate frames), and decorations
//! (clock, cursor, spinner) change without any user-relevant meaning —
//! exactly the nuisances masks and tolerances exist for.

use serde::{Deserialize, Serialize};

use interlag_video::frame::Rect;

/// One rectangular UI element with a reproducible texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Where the element is drawn.
    pub rect: Rect,
    /// Texture seed; different seeds look entirely different.
    pub seed: u64,
    /// Hidden elements are skipped by the renderer; progressive loading
    /// reveals them one by one.
    pub visible: bool,
}

impl Element {
    /// Creates a visible element.
    pub fn new(rect: Rect, seed: u64) -> Self {
        Element { rect, seed, visible: true }
    }

    /// Creates a hidden element (revealed later by a
    /// [`SceneUpdate::ShowElement`]).
    pub fn hidden(rect: Rect, seed: u64) -> Self {
        Element { rect, seed, visible: false }
    }
}

/// The current contents of the screen below the status bar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scene {
    /// Background texture seed.
    pub background_seed: u64,
    /// Elements drawn over the background, in order.
    pub elements: Vec<Element>,
    /// A blinking text cursor is visible (on-screen keyboard open).
    pub cursor: bool,
    /// An indeterminate spinner animation is running.
    pub spinner: bool,
    /// Extra per-animation-frame CPU cost while the spinner runs (game
    /// simulation + draw work). When `(ui_render_cycles +
    /// animation_load) / f` exceeds the animation frame period, frames
    /// drop — *jank* (§VI future work).
    #[serde(default)]
    pub animation_load: u64,
}

impl Scene {
    /// Creates a scene with only a background.
    pub fn new(background_seed: u64) -> Self {
        Scene {
            background_seed,
            elements: Vec::new(),
            cursor: false,
            spinner: false,
            animation_load: 0,
        }
    }

    /// Adds an element (builder style).
    pub fn with_element(mut self, element: Element) -> Self {
        self.elements.push(element);
        self
    }

    /// Turns the cursor on (builder style).
    pub fn with_cursor(mut self) -> Self {
        self.cursor = true;
        self
    }

    /// Turns the spinner on (builder style).
    pub fn with_spinner(mut self) -> Self {
        self.spinner = true;
        self
    }

    /// Sets the per-frame animation cost (builder style); implies heavy
    /// on-screen animation like a game loop.
    pub fn with_animation_load(mut self, cycles: u64) -> Self {
        self.animation_load = cycles;
        self
    }

    /// Number of currently visible elements.
    pub fn visible_elements(&self) -> usize {
        self.elements.iter().filter(|e| e.visible).count()
    }

    /// Applies an update, returning `true` if the visible contents
    /// changed (the screen needs a redraw).
    pub fn apply(&mut self, update: &SceneUpdate) -> bool {
        match update {
            SceneUpdate::Replace(scene) => {
                if self == scene.as_ref() {
                    return false;
                }
                *self = (**scene).clone();
                true
            }
            SceneUpdate::ShowElement(i) => match self.elements.get_mut(*i) {
                Some(e) if !e.visible => {
                    e.visible = true;
                    true
                }
                _ => false,
            },
            SceneUpdate::HideElement(i) => match self.elements.get_mut(*i) {
                Some(e) if e.visible => {
                    e.visible = false;
                    true
                }
                _ => false,
            },
            SceneUpdate::SetCursor(on) => {
                let changed = self.cursor != *on;
                self.cursor = *on;
                changed
            }
            SceneUpdate::SetSpinner(on) => {
                let changed = self.spinner != *on;
                self.spinner = *on;
                changed
            }
            SceneUpdate::Nop => false,
        }
    }
}

impl Default for Scene {
    /// The home screen every recording starts from (the paper resets the
    /// device to a known state before each recording).
    fn default() -> Self {
        Scene::new(0x0405_0607)
    }
}

/// A mutation of the visible scene, applied when a task phase completes.
///
/// `Replace` boxes its scene to keep task specs small; scenes are built
/// once per workload script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SceneUpdate {
    /// Show an entirely different screen (app launch, page navigation).
    Replace(Box<Scene>),
    /// Reveal element `i` (one step of progressive loading).
    ShowElement(usize),
    /// Hide element `i` (dismiss a dialog or progress bar).
    HideElement(usize),
    /// Open/close the on-screen keyboard cursor.
    SetCursor(bool),
    /// Start/stop an indeterminate spinner.
    SetSpinner(bool),
    /// No visible effect (background work).
    Nop,
}

impl SceneUpdate {
    /// Convenience constructor for [`SceneUpdate::Replace`].
    pub fn replace(scene: Scene) -> Self {
        SceneUpdate::Replace(Box::new(scene))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Rect {
        Rect::new(0, 10, 20, 20)
    }

    #[test]
    fn show_element_reports_change_once() {
        let mut s = Scene::new(1).with_element(Element::hidden(rect(), 7));
        assert_eq!(s.visible_elements(), 0);
        assert!(s.apply(&SceneUpdate::ShowElement(0)));
        assert_eq!(s.visible_elements(), 1);
        assert!(!s.apply(&SceneUpdate::ShowElement(0)), "already visible");
        assert!(!s.apply(&SceneUpdate::ShowElement(9)), "out of range is a no-op");
    }

    #[test]
    fn replace_detects_no_change() {
        let mut s = Scene::new(1);
        let same = SceneUpdate::replace(Scene::new(1));
        assert!(!s.apply(&same));
        let different = SceneUpdate::replace(Scene::new(2));
        assert!(s.apply(&different));
        assert_eq!(s.background_seed, 2);
    }

    #[test]
    fn cursor_and_spinner_toggles() {
        let mut s = Scene::new(1);
        assert!(s.apply(&SceneUpdate::SetCursor(true)));
        assert!(!s.apply(&SceneUpdate::SetCursor(true)));
        assert!(s.apply(&SceneUpdate::SetSpinner(true)));
        assert!(s.apply(&SceneUpdate::SetSpinner(false)));
        assert!(!s.apply(&SceneUpdate::Nop));
    }

    #[test]
    fn hide_element_roundtrip() {
        let mut s = Scene::new(1).with_element(Element::new(rect(), 7));
        assert!(s.apply(&SceneUpdate::HideElement(0)));
        assert_eq!(s.visible_elements(), 0);
        assert!(!s.apply(&SceneUpdate::HideElement(0)));
    }

    #[test]
    fn default_scene_is_home_screen() {
        let s = Scene::default();
        assert_eq!(s, Scene::default());
        assert!(!s.cursor && !s.spinner);
    }
}
