//! The simulated mobile device and its execution loop.
//!
//! [`Device::run`] replays a recorded input trace against a
//! [`DeviceScript`] under a chosen [`Governor`], reproducing one "workload
//! execution" of the paper: input events are delivered from the replay
//! agent, the scripted app reacts by spawning compute tasks, the single
//! active core (the paper disables the other three, §III-C) executes them
//! at the governor-selected frequency, the screen repaints as phases
//! complete, and the HDMI tap captures the video — while frequency/load
//! traces accumulate for the energy model.
//!
//! The loop advances in 1 ms quanta: well below the 33 ms frame period and
//! the 20 ms governor sampling period, so every externally visible timing
//! is accurate to a fraction of the measurement resolution.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use interlag_evdev::event::TimedEvent;
use interlag_evdev::mt::{ContactEvent, MtDecoder, Point};
use interlag_evdev::replay::{ReplayStats, Replayer};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::CancelToken;
use interlag_power::energy::{ActivitySample, ActivityTrace};
use interlag_power::opp::{Frequency, OppTable};
use interlag_video::capture::{CameraCapture, CaptureLink};
use interlag_video::frame::FrameBuffer;
use interlag_video::stream::VideoStream;

use crate::dvfs::{Governor, LoadSample};
use crate::error::DeviceError;
use crate::render::{DecorationState, Renderer, ScreenConfig};
use crate::scene::Scene;
use crate::script::{DeviceScript, InteractionCategory};
use crate::task::{Task, TaskKind, TaskSpec};

/// How many quanta the execution loop runs between watchdog polls. At the
/// default 1 ms quantum this bounds cancellation latency to 64 ms of
/// simulated work per poll — far below any sensible rep deadline.
pub const CANCEL_STRIDE: u64 = 64;

/// How the screen output is captured during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptureMode {
    /// No video (fastest; enough for energy/ground-truth studies).
    None,
    /// Clean HDMI capture (the paper's setup).
    Hdmi,
    /// Camera pointed at the screen, with sensor noise (the paper's
    /// abandoned first attempt; kept for the ablation).
    Camera {
        /// Noise seed.
        seed: u64,
    },
}

/// Static configuration of the simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Panel geometry.
    pub screen: ScreenConfig,
    /// The CPU's operating points.
    pub opps: OppTable,
    /// Simulation step.
    pub quantum: SimDuration,
    /// Interval between captured frames.
    pub frame_period: SimDuration,
    /// Video capture path.
    pub capture: CaptureMode,
    /// Kernel + framework cost of handling one input packet, in cycles.
    pub input_cost_cycles: u64,
    /// UI-thread cost of producing one animation frame, in cycles. Render
    /// passes share the foreground queue, so heavy foreground work makes
    /// animations drop frames — jank.
    pub ui_render_cycles: u64,
    /// Observability sink for the execution loop (governor sampling,
    /// input boosts, captured frames). Disabled by default; the lab
    /// injects its own recorder so study telemetry includes device-level
    /// counters. Counts are accumulated locally and flushed once per run,
    /// so the quantum loop never touches shared state.
    pub obs: interlag_obs::Recorder,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            screen: ScreenConfig::default(),
            opps: OppTable::snapdragon_8074(),
            quantum: SimDuration::from_millis(1),
            frame_period: interlag_video::stream::FRAME_PERIOD_30FPS,
            capture: CaptureMode::Hdmi,
            input_cost_cycles: 150_000,
            ui_render_cycles: 8_000_000,
            obs: interlag_obs::Recorder::disabled(),
        }
    }
}

/// Ground truth about one interaction from the simulator's privileged
/// viewpoint. The video pipeline must *recover* these numbers without
/// looking at them; tests compare the two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionRecord {
    /// Interaction index within the run (and the script).
    pub id: usize,
    /// The script's label.
    pub label: String,
    /// When the triggering input packet was delivered; for untriggered
    /// interactions (trace ended early) the scripted start.
    pub input_time: SimTime,
    /// HCI category from the script.
    pub category: InteractionCategory,
    /// `true` if the input produced no app reaction (missed widget or
    /// swallowed event): a *spurious lag*.
    pub spurious: bool,
    /// `true` if the input was actually delivered during the run.
    pub triggered: bool,
    /// When the final phase of the response completed, if it did.
    pub service_time: Option<SimTime>,
}

impl InteractionRecord {
    /// The ground-truth interaction lag, if the interaction was serviced.
    pub fn true_lag(&self) -> Option<SimDuration> {
        self.service_time.map(|s| s.saturating_since(self.input_time))
    }
}

/// Everything one workload execution produces.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The governor that ran.
    pub governor_name: String,
    /// Captured video, unless capture was off.
    pub video: Option<VideoStream>,
    /// Frequency/busy trace for the energy model.
    pub activity: ActivityTrace,
    /// Ground-truth interaction log.
    pub interactions: Vec<InteractionRecord>,
    /// Replay-agent timing statistics.
    pub replay: ReplayStats,
    /// Malformed input events the device tolerated (out-of-range slots,
    /// double downs, ups without a contact). Zero on clean traces; fault
    /// injection and corrupted recordings raise it.
    pub input_faults: usize,
    /// When the run ended.
    pub end_time: SimTime,
}

impl RunArtifacts {
    /// Input timestamps of non-spurious, triggered interactions — the lag
    /// beginnings the matcher walks from.
    pub fn lag_beginnings(&self) -> Vec<(usize, SimTime)> {
        self.interactions
            .iter()
            .filter(|r| r.triggered && !r.spurious)
            .map(|r| (r.id, r.input_time))
            .collect()
    }
}

/// The simulated phone.
///
/// # Examples
///
/// See the crate-level documentation for a complete record→replay→capture
/// round trip.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    renderer: Renderer,
}

impl Device {
    /// Creates a device with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the quantum is zero or larger than the frame period.
    pub fn new(config: DeviceConfig) -> Self {
        assert!(!config.quantum.is_zero(), "quantum must be positive");
        assert!(config.quantum <= config.frame_period, "quantum must not exceed the frame period");
        let renderer = Renderer::new(config.screen);
        Device { config, renderer }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Executes one workload run from a freshly-booted state.
    ///
    /// `replayer` feeds the recorded input events; `script` describes how
    /// the apps react; `governor` picks frequencies; the run lasts until
    /// `until` (wall-clock), which should leave slack after the last input
    /// for the final interaction to be serviced.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] if a stage boundary rejects data — today only the
    /// capture path, which refuses non-monotonic frame timestamps.
    pub fn run<R: Replayer>(
        &self,
        script: &DeviceScript,
        replayer: R,
        governor: &mut dyn Governor,
        until: SimTime,
    ) -> Result<RunArtifacts, DeviceError> {
        self.run_cancellable(script, replayer, governor, until, &CancelToken::none())
    }

    /// Like [`Device::run`], with a watchdog token polled cooperatively in
    /// the quantum loop (every [`CANCEL_STRIDE`] quanta, so a wedged
    /// governor cannot stall a sweep for longer than its deadline plus one
    /// stride).
    ///
    /// # Errors
    ///
    /// As for [`Device::run`], plus [`DeviceError::Cancelled`] if the
    /// token fires mid-run.
    pub fn run_cancellable<R: Replayer>(
        &self,
        script: &DeviceScript,
        replayer: R,
        governor: &mut dyn Governor,
        until: SimTime,
        cancel: &CancelToken,
    ) -> Result<RunArtifacts, DeviceError> {
        match self.config.capture {
            CaptureMode::Camera { seed } => {
                let mut camera = CameraCapture::new(seed);
                self.run_inner(script, replayer, governor, until, Some(&mut camera), cancel)
            }
            _ => self.run_inner(script, replayer, governor, until, None, cancel),
        }
    }

    /// Like [`Device::run`], but captures the screen through an explicit
    /// [`CaptureLink`] instead of the configured one — the seam where
    /// fault injection wraps the capture path. Ignored when capture is
    /// [`CaptureMode::None`].
    ///
    /// # Errors
    ///
    /// As for [`Device::run`].
    pub fn run_with_capture<R: Replayer>(
        &self,
        script: &DeviceScript,
        replayer: R,
        governor: &mut dyn Governor,
        until: SimTime,
        link: &mut dyn CaptureLink,
    ) -> Result<RunArtifacts, DeviceError> {
        self.run_inner(script, replayer, governor, until, Some(link), &CancelToken::none())
    }

    /// [`Device::run_with_capture`] with a watchdog token, as
    /// [`Device::run_cancellable`] is to [`Device::run`].
    ///
    /// # Errors
    ///
    /// As for [`Device::run_cancellable`].
    pub fn run_with_capture_cancellable<R: Replayer>(
        &self,
        script: &DeviceScript,
        replayer: R,
        governor: &mut dyn Governor,
        until: SimTime,
        link: &mut dyn CaptureLink,
        cancel: &CancelToken,
    ) -> Result<RunArtifacts, DeviceError> {
        self.run_inner(script, replayer, governor, until, Some(link), cancel)
    }

    fn run_inner<R: Replayer>(
        &self,
        script: &DeviceScript,
        mut replayer: R,
        governor: &mut dyn Governor,
        until: SimTime,
        mut link: Option<&mut dyn CaptureLink>,
        cancel: &CancelToken,
    ) -> Result<RunArtifacts, DeviceError> {
        let cfg = &self.config;
        let quantum = cfg.quantum;
        let khz_of = |f: Frequency| f.as_khz() as u64;

        // --- state: CPU -------------------------------------------------
        let mut freq = cfg.opps.quantize_up(governor.init(&cfg.opps));
        let mut fg: VecDeque<Task> = VecDeque::new();
        let mut bg: VecDeque<Task> = VecDeque::new();
        let mut activity = ActivityTrace::new();

        // --- state: governor sampling -----------------------------------
        let mut busy_acc = SimDuration::ZERO;
        let mut last_sample_at = SimTime::ZERO;
        let mut next_sample_at = SimTime::ZERO + governor.sample_period();

        // --- state: UI --------------------------------------------------
        let mut scene = Scene::default();
        let mut spinner_frame = 0u64;
        let mut next_render_spawn = SimTime::ZERO;
        let mut deco = DecorationState::at(SimTime::ZERO, &scene, spinner_frame);
        let mut screen: Arc<FrameBuffer> = Arc::new(self.renderer.render(&scene, &deco));
        let mut dirty = false;

        // --- state: capture ----------------------------------------------
        let mut video = match cfg.capture {
            CaptureMode::None => None,
            _ => Some(VideoStream::new(cfg.frame_period)),
        };
        let mut next_frame_at = SimTime::ZERO;

        // --- state: input dispatch ---------------------------------------
        let mut decoder = MtDecoder::new();
        let mut input_faults = 0usize;
        let mut next_interaction = 0usize;
        let mut interactions: Vec<InteractionRecord> = script
            .interactions
            .iter()
            .enumerate()
            .map(|(id, spec)| InteractionRecord {
                id,
                label: spec.label.clone(),
                input_time: spec.start,
                category: spec.category,
                spurious: spec.is_spurious(),
                triggered: false,
                service_time: None,
            })
            .collect();

        // --- state: scripted background work ------------------------------
        let mut next_bg = 0usize;
        let mut next_tick_at = script.tick.map(|_| SimTime::ZERO + quantum);

        // --- state: observability -------------------------------------------
        // Local accumulators, flushed to the recorder once per run: the
        // quantum loop stays free of shared-state traffic even when
        // recording is on.
        let mut obs_input_boosts = 0u64;
        let mut obs_samples = 0u64;
        let mut obs_transitions = 0u64;
        let mut obs_frames = 0u64;

        // --- state: I/O waits ----------------------------------------------
        // Tasks blocked on a phase wait, with their resume times, and scene
        // updates whose visibility is deferred behind a wait.
        let mut parked: Vec<(SimTime, Task)> = Vec::new();
        let mut pending_updates: Vec<(SimTime, crate::scene::SceneUpdate, TaskKind, bool)> =
            Vec::new();

        let mut now = SimTime::ZERO;
        let mut quanta = 0u64;
        while now < until {
            // Watchdog poll, strided so the common (no-watchdog) case costs
            // one branch per CANCEL_STRIDE quanta and deadline tokens read
            // the clock rarely.
            if quanta.is_multiple_of(CANCEL_STRIDE) && cancel.is_cancelled() {
                return Err(DeviceError::Cancelled);
            }
            quanta += 1;
            let qend = now + quantum;

            // 1. Deliver input events due by `now`.
            for te in replayer.poll(now) {
                if let Some(f) = governor.on_input(te.time, &cfg.opps) {
                    freq = cfg.opps.quantize_up(f);
                    obs_input_boosts += 1;
                }
                if te.event.is_syn_report() && cfg.input_cost_cycles > 0 {
                    bg.push_back(Task::new(
                        TaskSpec::single(cfg.input_cost_cycles, crate::scene::SceneUpdate::Nop),
                        TaskKind::Background,
                    ));
                }
                for trigger in Self::triggers(&mut decoder, &te, &mut input_faults) {
                    Self::dispatch(
                        script,
                        &mut interactions,
                        &mut next_interaction,
                        &mut fg,
                        te.time,
                        trigger,
                    );
                }
            }

            // 2. Spawn scripted background work that has become runnable.
            while next_bg < script.background.len() && script.background[next_bg].start <= now {
                bg.push_back(Task::new(
                    TaskSpec::single(
                        script.background[next_bg].cycles,
                        crate::scene::SceneUpdate::Nop,
                    ),
                    TaskKind::Background,
                ));
                next_bg += 1;
            }

            // 3. Periodic system tick.
            if let (Some(tick), Some(due)) = (script.tick, next_tick_at.as_mut()) {
                while *due <= now {
                    bg.push_back(Task::new(
                        TaskSpec::single(tick.cycles, crate::scene::SceneUpdate::Nop),
                        TaskKind::Background,
                    ));
                    *due += tick.period;
                }
            }

            // 3b. Animation render passes: while a spinner shows, the UI
            // thread must produce a frame every SPINNER_FRAME_PERIOD; the
            // pass costs CPU on the foreground queue, so a busy core
            // misses deadlines and the animation visibly stutters (jank).
            if scene.spinner {
                while next_render_spawn <= now {
                    // The compositor drops frames at the source rather
                    // than queueing unboundedly.
                    let pending = fg.iter().filter(|t| t.kind() == TaskKind::UiRender).count();
                    if pending < 2 {
                        fg.push_back(Task::new(
                            TaskSpec::single(
                                (cfg.ui_render_cycles + scene.animation_load).max(1),
                                crate::scene::SceneUpdate::Nop,
                            ),
                            TaskKind::UiRender,
                        ));
                    }
                    next_render_spawn += crate::render::SPINNER_FRAME_PERIOD;
                }
            } else {
                // No animation: the next one starts on its own grid.
                if next_render_spawn <= now {
                    next_render_spawn = now + crate::render::SPINNER_FRAME_PERIOD;
                }
            }

            // 4a. Resume tasks whose I/O wait has elapsed (earliest first;
            // resumed work jumps the queue, as a woken thread would).
            if !parked.is_empty() {
                parked.sort_by_key(|(at, _)| *at);
                while parked.first().is_some_and(|(at, _)| *at <= now) {
                    let (_, task) = parked.remove(0);
                    match task.kind() {
                        TaskKind::Foreground { .. } | TaskKind::UiRender => fg.push_front(task),
                        TaskKind::Background => bg.push_front(task),
                    }
                }
            }

            // 4b. Apply scene updates whose I/O wait has elapsed.
            if !pending_updates.is_empty() {
                pending_updates.sort_by_key(|(at, ..)| *at);
                while pending_updates.first().is_some_and(|(at, ..)| *at <= qend) {
                    let (at, update, kind, task_finished) = pending_updates.remove(0);
                    if scene.apply(&update) {
                        dirty = true;
                    }
                    if task_finished {
                        if let TaskKind::Foreground { id } = kind {
                            if let Some(rec) = interactions.get_mut(id) {
                                rec.service_time = Some(at.max(now));
                            }
                        }
                    }
                }
            }

            // 4c. Execute the quantum.
            let budget = freq.cycles_in(quantum);
            let khz = khz_of(freq);
            let mut consumed = 0u64;
            while consumed < budget {
                let from_fg = !fg.is_empty();
                let queue = if from_fg { &mut fg } else { &mut bg };
                let Some(task) = queue.front_mut() else { break };
                let before = consumed;
                let (c, completions) = task.advance(budget - consumed);
                consumed += c;
                let finished = task.is_finished();
                let blocked = Task::blocked_after(&completions);
                let mut block_at = SimTime::ZERO;
                for comp in completions {
                    let at = before + comp.at_consumed_cycles;
                    let ts = now + SimDuration::from_micros((at * 1_000).div_ceil(khz));
                    if comp.wait.is_zero() {
                        if scene.apply(&comp.update) {
                            dirty = true;
                        }
                        match comp.kind {
                            TaskKind::Foreground { id } if comp.task_finished => {
                                if let Some(rec) = interactions.get_mut(id) {
                                    rec.service_time = Some(ts.min(qend));
                                }
                            }
                            TaskKind::UiRender if comp.task_finished => {
                                spinner_frame += 1;
                                if scene.spinner {
                                    dirty = true;
                                }
                            }
                            _ => {}
                        }
                    } else {
                        // The update (and, for final phases, the service
                        // point) becomes visible only after the wait.
                        let visible_at = ts.min(qend) + comp.wait;
                        block_at = visible_at;
                        pending_updates.push((
                            visible_at,
                            comp.update,
                            comp.kind,
                            comp.task_finished,
                        ));
                    }
                }
                if finished {
                    queue.pop_front();
                } else if blocked.is_some() {
                    if let Some(task) = queue.pop_front() {
                        parked.push((block_at, task));
                    }
                } else if c == 0 {
                    break; // cannot happen, but never spin
                }
            }
            let busy = if consumed >= budget {
                quantum
            } else {
                SimDuration::from_micros(consumed * 1_000 / khz).min(quantum)
            };

            // 5. Account the quantum.
            activity.push(ActivitySample { start: now, duration: quantum, freq, busy });
            busy_acc += busy;

            // 6. Governor sampling.
            if qend >= next_sample_at {
                let window = qend - last_sample_at;
                let sample = LoadSample { busy: busy_acc, window };
                let before = freq;
                freq = cfg.opps.quantize_up(governor.on_sample(qend, sample, &cfg.opps));
                obs_samples += 1;
                obs_transitions += u64::from(freq != before);
                busy_acc = SimDuration::ZERO;
                last_sample_at = qend;
                next_sample_at = qend + governor.sample_period();
            }

            // 7. Repaint if the scene or a decoration changed.
            let new_deco = DecorationState::at(qend, &scene, spinner_frame);
            if dirty || new_deco != deco {
                deco = new_deco;
                screen = Arc::new(self.renderer.render(&scene, &deco));
                dirty = false;
            }

            // 8. Capture frames due in this quantum.
            if let Some(video) = video.as_mut() {
                while next_frame_at <= qend {
                    let frame = match link.as_deref_mut() {
                        Some(l) => l.capture(next_frame_at, &screen),
                        None => screen.clone(),
                    };
                    video.push(next_frame_at, frame)?;
                    obs_frames += 1;
                    next_frame_at += cfg.frame_period;
                }
            }

            now = qend;
        }

        cfg.obs.count(interlag_obs::Counter::InputBoosts, obs_input_boosts);
        cfg.obs.count(interlag_obs::Counter::GovernorSamples, obs_samples);
        cfg.obs.count(interlag_obs::Counter::FreqTransitions, obs_transitions);
        cfg.obs.count(interlag_obs::Counter::FramesCaptured, obs_frames);

        Ok(RunArtifacts {
            governor_name: governor.name().to_string(),
            video,
            activity,
            interactions,
            replay: replayer.stats(),
            input_faults,
            end_time: now,
        })
    }

    /// Extracts interaction triggers (finger-down, hardware-key-down) from
    /// one raw event. Malformed multitouch events are counted into
    /// `faults` and otherwise tolerated. Shared with the cluster device,
    /// whose input path must byte-match this one.
    pub(crate) fn triggers(
        decoder: &mut MtDecoder,
        te: &TimedEvent,
        faults: &mut usize,
    ) -> Vec<Option<Point>> {
        let mut out = Vec::new();
        if te.device == 1 {
            let contacts = match decoder.try_push(te.time, te.event) {
                Ok(contacts) => contacts,
                Err(_) => {
                    *faults += 1;
                    Vec::new()
                }
            };
            for c in contacts {
                if let ContactEvent::Down { pos, .. } = c {
                    out.push(Some(pos));
                }
            }
        } else if te.event.kind == interlag_evdev::event::EventType::Key
            && te.event.code != interlag_evdev::event::codes::BTN_TOUCH
            && te.event.value == 1
        {
            out.push(None);
        }
        out
    }

    /// Routes one trigger to the next scripted interaction. Shared with
    /// the cluster device, which passes the pinned cluster's queue.
    pub(crate) fn dispatch(
        script: &DeviceScript,
        interactions: &mut [InteractionRecord],
        next_interaction: &mut usize,
        fg: &mut VecDeque<Task>,
        time: SimTime,
        pos: Option<Point>,
    ) {
        let id = *next_interaction;
        let Some(spec) = script.interactions.get(id) else {
            return; // inputs beyond the script are ignored
        };
        *next_interaction += 1;

        let Some(rec) = interactions.get_mut(id) else {
            return; // records mirror the script; a shorter slice is benign
        };
        rec.triggered = true;
        rec.input_time = time;

        let hit = match (spec.widget, pos) {
            (Some(w), Some(p)) => p.x >= 0 && p.y >= 0 && w.contains(p.x as u32, p.y as u32),
            (Some(_), None) => true,
            (None, _) => false,
        };
        match (&spec.response, hit) {
            (Some(task), true) => {
                fg.push_back(Task::new(task.clone(), TaskKind::Foreground { id }));
                rec.spurious = false;
            }
            _ => {
                rec.spurious = true;
            }
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::FixedGovernor;
    use crate::scene::SceneUpdate;
    use crate::script::{BackgroundWork, InteractionSpec, PeriodicTick};
    use interlag_evdev::gesture::Gesture;
    use interlag_evdev::replay::ReplayAgent;
    use interlag_video::frame::Rect;

    fn simple_script() -> DeviceScript {
        let widget = Rect::new(10, 20, 30, 30);
        DeviceScript {
            interactions: vec![
                InteractionSpec {
                    label: "open app".into(),
                    start: SimTime::from_millis(500),
                    gesture: Gesture::tap(Point::new(20, 30)),
                    widget: Some(widget),
                    response: Some(TaskSpec::single(
                        60_000_000, // 200 ms at 300 MHz
                        SceneUpdate::replace(Scene::new(99)),
                    )),
                    category: InteractionCategory::SimpleFrequent,
                },
                InteractionSpec {
                    label: "tap nothing".into(),
                    start: SimTime::from_millis(2_000),
                    gesture: Gesture::tap(Point::new(60, 100)),
                    widget: Some(widget), // tap lands outside it
                    response: Some(TaskSpec::single(1_000, SceneUpdate::Nop)),
                    category: InteractionCategory::SimpleFrequent,
                },
            ],
            background: vec![BackgroundWork {
                label: "sync".into(),
                start: SimTime::from_millis(3_000),
                cycles: 3_000_000,
            }],
            tick: Some(PeriodicTick::default()),
        }
    }

    fn run_fixed(mhz: u32, script: &DeviceScript) -> RunArtifacts {
        let device = Device::default();
        let trace = script.record_trace();
        let mut gov = FixedGovernor::new(Frequency::from_mhz(mhz));
        device
            .run(script, ReplayAgent::new(trace), &mut gov, SimTime::from_secs(5))
            .expect("clean run")
    }

    #[test]
    fn interaction_is_serviced_and_lag_scales_with_frequency() {
        let script = simple_script();
        let slow = run_fixed(300, &script);
        let fast = run_fixed(2_150, &script);

        let lag_slow = slow.interactions[0].true_lag().expect("serviced");
        let lag_fast = fast.interactions[0].true_lag().expect("serviced");
        // 60 M cycles at 300 MHz ≈ 200 ms; at 2.15 GHz ≈ 28 ms (plus
        // queueing behind input-handling costs).
        assert!(lag_slow > lag_fast * 4, "{lag_slow} vs {lag_fast}");
        assert!(lag_slow >= SimDuration::from_millis(190));
        assert!(lag_slow <= SimDuration::from_millis(320));
    }

    #[test]
    fn missed_tap_is_spurious() {
        let script = simple_script();
        let run = run_fixed(960, &script);
        assert!(run.interactions[1].triggered);
        assert!(run.interactions[1].spurious);
        assert_eq!(run.interactions[1].service_time, None);
        assert_eq!(run.lag_beginnings().len(), 1);
    }

    #[test]
    fn video_shows_the_final_scene_after_service() {
        let script = simple_script();
        let run = run_fixed(960, &script);
        let video = run.video.expect("hdmi capture on");
        let service = run.interactions[0].service_time.unwrap();
        // The frame displayed well after service must differ from the
        // boot screen; the frame just before input must not.
        let before = video.frame_at(SimTime::from_millis(400)).unwrap();
        let after = video.frame_at(service + SimDuration::from_millis(100)).unwrap();
        assert!(before.buf.count_diff(&after.buf, 0) > 0);
        let boot = video.frame_at(SimTime::from_millis(100)).unwrap();
        assert_eq!(boot.buf.count_diff(&before.buf, 0), 0);
    }

    #[test]
    fn activity_trace_covers_the_whole_run() {
        let script = simple_script();
        let run = run_fixed(960, &script);
        assert_eq!(run.activity.total_duration(), SimDuration::from_secs(5));
        assert!(run.activity.busy_time() > SimDuration::from_millis(50));
        assert!(run.activity.busy_time() < SimDuration::from_secs(1));
    }

    #[test]
    fn untriggered_interactions_are_reported() {
        let script = simple_script();
        let device = Device::default();
        // Empty trace: nothing is ever delivered.
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = device
            .run(
                &script,
                ReplayAgent::new(interlag_evdev::trace::EventTrace::new()),
                &mut gov,
                SimTime::from_secs(1),
            )
            .expect("clean run");
        assert!(run.interactions.iter().all(|r| !r.triggered));
        assert!(run.lag_beginnings().is_empty());
    }

    #[test]
    fn capture_none_produces_no_video_and_matches_hdmi_ground_truth() {
        let script = simple_script();
        let config = DeviceConfig { capture: CaptureMode::None, ..Default::default() };
        let device = Device::new(config);
        let trace = script.record_trace();
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = device
            .run(&script, ReplayAgent::new(trace), &mut gov, SimTime::from_secs(5))
            .expect("clean run");
        assert!(run.video.is_none());

        let with_video = run_fixed(960, &script);
        assert_eq!(
            run.interactions[0].service_time, with_video.interactions[0].service_time,
            "capture must not perturb execution"
        );
    }

    #[test]
    fn io_wait_extends_service_time_frequency_independently() {
        let widget = Rect::new(10, 20, 30, 30);
        let spec = |wait_ms: u64| DeviceScript {
            interactions: vec![InteractionSpec {
                label: "open".into(),
                start: SimTime::from_millis(500),
                gesture: Gesture::tap(Point::new(20, 30)),
                widget: Some(widget),
                response: Some(TaskSpec::new(vec![crate::task::Phase::with_wait(
                    30_000_000,
                    SimDuration::from_millis(wait_ms),
                    SceneUpdate::replace(Scene::new(77)),
                )])),
                category: InteractionCategory::Common,
            }],
            background: Vec::new(),
            tick: None,
        };
        let run_lag = |mhz: u32, wait_ms: u64| {
            let device = Device::default();
            let script = spec(wait_ms);
            let trace = script.record_trace();
            let mut gov = FixedGovernor::new(Frequency::from_mhz(mhz));
            let run = device
                .run(&script, ReplayAgent::new(trace), &mut gov, SimTime::from_secs(4))
                .expect("clean run");
            run.interactions[0].true_lag().expect("serviced")
        };
        // The wait adds ~300 ms at any frequency.
        let fast_no_wait = run_lag(2_150, 0);
        let fast_wait = run_lag(2_150, 300);
        let slow_wait = run_lag(300, 300);
        let added_fast = fast_wait - fast_no_wait;
        assert!(
            (added_fast.as_millis_f64() - 300.0).abs() < 5.0,
            "wait should add ~300 ms, added {added_fast}"
        );
        // Compute scales with frequency; the wait does not.
        let slow_compute = slow_wait - SimDuration::from_millis(300);
        assert!(slow_compute > fast_no_wait * 5, "{slow_compute} vs {fast_no_wait}");
    }

    #[test]
    fn core_is_free_for_background_work_during_waits() {
        // One interaction whose task blocks 1 s on I/O after tiny compute,
        // plus heavy background work: the background work must execute
        // during the wait (busy time well above the foreground compute).
        let widget = Rect::new(10, 20, 30, 30);
        let script = DeviceScript {
            interactions: vec![InteractionSpec {
                label: "io heavy".into(),
                start: SimTime::from_millis(200),
                gesture: Gesture::tap(Point::new(20, 30)),
                widget: Some(widget),
                response: Some(TaskSpec::new(vec![
                    crate::task::Phase::with_wait(
                        1_000_000,
                        SimDuration::from_secs(1),
                        SceneUpdate::Nop,
                    ),
                    crate::task::Phase::new(1_000_000, SceneUpdate::replace(Scene::new(5))),
                ])),
                category: InteractionCategory::Common,
            }],
            background: vec![BackgroundWork {
                label: "bg".into(),
                start: SimTime::from_millis(300),
                cycles: 300_000_000, // 1 s at 300 MHz
            }],
            tick: None,
        };
        let device = Device::default();
        let trace = script.record_trace();
        let mut gov = FixedGovernor::new(Frequency::from_mhz(300));
        let run = device
            .run(&script, ReplayAgent::new(trace), &mut gov, SimTime::from_secs(3))
            .expect("clean run");
        // Service ends ~200 ms (input) + ~3 ms + 1 s wait + ~3 ms ≈ 1.21 s,
        // even though a full second of background work ran meanwhile.
        let service = run.interactions[0].service_time.expect("serviced");
        assert!(service < SimTime::from_millis(1_300), "service at {service}");
        assert!(run.activity.busy_time() > SimDuration::from_millis(900));
    }

    #[test]
    fn cancelled_token_aborts_the_run() {
        let script = simple_script();
        let device = Device::default();
        let trace = script.record_trace();
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let cancel = CancelToken::manual();
        cancel.cancel();
        let err = device
            .run_cancellable(
                &script,
                ReplayAgent::new(trace),
                &mut gov,
                SimTime::from_secs(5),
                &cancel,
            )
            .expect_err("pre-fired token must abort the run");
        assert_eq!(err, DeviceError::Cancelled);
    }

    #[test]
    fn unfired_token_does_not_perturb_the_run() {
        let script = simple_script();
        let device = Device::default();
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = device
            .run_cancellable(
                &script,
                ReplayAgent::new(script.record_trace()),
                &mut gov,
                SimTime::from_secs(5),
                &CancelToken::manual(),
            )
            .expect("clean run");
        let baseline = run_fixed(960, &script);
        assert_eq!(run.interactions, baseline.interactions);
        assert_eq!(run.activity, baseline.activity);
    }

    #[test]
    fn replay_runs_are_deterministic() {
        let script = simple_script();
        let a = run_fixed(960, &script);
        let b = run_fixed(960, &script);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.activity, b.activity);
        let (va, vb) = (a.video.unwrap(), b.video.unwrap());
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(vb.iter()) {
            assert_eq!(x.buf.as_ref(), y.buf.as_ref());
        }
    }
}
