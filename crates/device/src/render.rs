//! The renderer: scene plus decorations to pixels.
//!
//! The simulated panel is deliberately small (72 × 120): the analysis
//! algorithms care about *which* frames differ, not about resolution, and
//! a small panel keeps day-long captures cheap. Decorations — the
//! status-bar clock, a blinking cursor, an indeterminate spinner — are the
//! time-driven screen content that changes without any interaction being
//! serviced; they are what the paper's masks and pixel tolerances exist to
//! neutralise.

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_video::frame::{FrameBuffer, Rect};
use interlag_video::mask::Mask;

use crate::scene::Scene;

/// Screen geometry and decoration layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScreenConfig {
    /// Panel width in pixels.
    pub width: u32,
    /// Panel height in pixels.
    pub height: u32,
    /// Rows occupied by the status bar.
    pub status_bar_rows: u32,
    /// Clock area inside the status bar.
    pub clock_rect: Rect,
    /// Blinking cursor area (when a scene shows a cursor).
    pub cursor_rect: Rect,
    /// Spinner area (when a scene shows a spinner).
    pub spinner_rect: Rect,
}

impl ScreenConfig {
    /// The body of the screen (everything below the status bar).
    pub fn body(&self) -> Rect {
        Rect { x0: 0, y0: self.status_bar_rows, x1: self.width, y1: self.height }
    }

    /// The standard mask for this screen: the status bar (which contains
    /// the clock). This is the mask annotation databases apply by default.
    pub fn status_bar_mask(&self) -> Mask {
        Mask::status_bar(self.width, self.status_bar_rows)
    }

    /// A mask hiding the cursor area, for annotating typing lags.
    pub fn cursor_mask(&self) -> Mask {
        Mask::new().with_excluded(self.cursor_rect)
    }

    /// A mask hiding the spinner animation.
    pub fn spinner_mask(&self) -> Mask {
        Mask::new().with_excluded(self.spinner_rect)
    }
}

impl Default for ScreenConfig {
    fn default() -> Self {
        ScreenConfig {
            width: 72,
            height: 120,
            status_bar_rows: 6,
            clock_rect: Rect::new(48, 0, 24, 6),
            cursor_rect: Rect::new(4, 110, 2, 8),
            spinner_rect: Rect::new(32, 56, 8, 8),
        }
    }
}

/// How often the cursor toggles.
pub const CURSOR_BLINK_PERIOD: SimDuration = SimDuration::from_millis(500);
/// How often the spinner advances a frame.
pub const SPINNER_FRAME_PERIOD: SimDuration = SimDuration::from_millis(100);

/// The time-driven part of the screen contents. Two renders with equal
/// decoration state and equal scenes produce identical pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecorationState {
    /// Whole seconds since boot (drives the clock).
    pub clock_seconds: u64,
    /// Cursor phase: `true` = visible.
    pub cursor_on: bool,
    /// Spinner animation frame counter.
    pub spinner_frame: u64,
}

impl DecorationState {
    /// The decoration state at `now` for a given scene. `spinner_frame`
    /// is the animation frame counter owned by the device: it advances
    /// when a UI render pass *completes*, not with wall time — a busy
    /// core therefore drops animation frames (jank).
    pub fn at(now: SimTime, scene: &Scene, spinner_frame: u64) -> Self {
        DecorationState {
            clock_seconds: now.as_micros() / 1_000_000,
            cursor_on: scene.cursor
                && (now.as_micros() / CURSOR_BLINK_PERIOD.as_micros()).is_multiple_of(2),
            spinner_frame: if scene.spinner { spinner_frame } else { 0 },
        }
    }

    /// When the time-driven decorations next change for `scene` (the
    /// clock always ticks; the spinner is render-driven and not included).
    pub fn next_change(now: SimTime, scene: &Scene) -> SimTime {
        let mut next = SimTime::from_secs(now.as_micros() / 1_000_000 + 1);
        if scene.cursor {
            let p = CURSOR_BLINK_PERIOD.as_micros();
            next = next.min(SimTime::from_micros((now.as_micros() / p + 1) * p));
        }
        next
    }
}

/// Renders scenes into frame buffers.
#[derive(Debug, Clone)]
pub struct Renderer {
    config: ScreenConfig,
}

impl Renderer {
    /// Creates a renderer for the given screen.
    pub fn new(config: ScreenConfig) -> Self {
        Renderer { config }
    }

    /// The screen geometry in use.
    pub fn config(&self) -> &ScreenConfig {
        &self.config
    }

    /// Draws `scene` with decorations `deco` into a fresh buffer.
    pub fn render(&self, scene: &Scene, deco: &DecorationState) -> FrameBuffer {
        let c = &self.config;
        let mut fb = FrameBuffer::new(c.width, c.height);

        // Status bar: flat dark strip with the clock texture at the right.
        fb.fill_rect(Rect::new(0, 0, c.width, c.status_bar_rows), 24);
        fb.hash_paint(c.clock_rect, 0xc10c_c10c ^ deco.clock_seconds);

        // Scene background and elements.
        fb.hash_paint(c.body(), scene.background_seed);
        for el in scene.elements.iter().filter(|e| e.visible) {
            fb.hash_paint(el.rect, el.seed);
        }

        // Cursor: solid block toggling with the blink phase.
        if scene.cursor {
            fb.fill_rect(c.cursor_rect, if deco.cursor_on { 255 } else { 16 });
        }

        // Spinner: re-textured every animation frame.
        if scene.spinner {
            fb.hash_paint(c.spinner_rect, 0x5917_17e5 ^ deco.spinner_frame);
        }

        fb
    }
}

impl Default for Renderer {
    fn default() -> Self {
        Renderer::new(ScreenConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Element;

    fn deco(secs: u64) -> DecorationState {
        DecorationState { clock_seconds: secs, cursor_on: false, spinner_frame: 0 }
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = Renderer::default();
        let s = Scene::new(77).with_element(Element::new(Rect::new(10, 20, 30, 30), 5));
        assert_eq!(r.render(&s, &deco(3)), r.render(&s, &deco(3)));
    }

    #[test]
    fn clock_change_stays_inside_status_bar() {
        let r = Renderer::default();
        let s = Scene::new(77);
        let a = r.render(&s, &deco(3));
        let b = r.render(&s, &deco(4));
        assert!(a.count_diff(&b, 0) > 0);
        let mask = r.config().status_bar_mask();
        assert_eq!(mask.count_diff(&a, &b, 0), 0);
    }

    #[test]
    fn revealing_an_element_changes_its_rect_only() {
        let r = Renderer::default();
        let rect = Rect::new(8, 40, 20, 16);
        let hidden = Scene::new(1).with_element(Element::hidden(rect, 9));
        let mut shown = hidden.clone();
        shown.elements[0].visible = true;
        let a = r.render(&hidden, &deco(0));
        let b = r.render(&shown, &deco(0));
        let diff = a.count_diff(&b, 0);
        assert!(diff > 0 && diff <= rect.area());
        // Nothing outside the element's rect changed.
        let mask = Mask::new().with_excluded(rect);
        assert_eq!(mask.count_diff(&a, &b, 0), 0);
    }

    #[test]
    fn cursor_blinks_with_phase() {
        let r = Renderer::default();
        let s = Scene::new(1).with_cursor();
        let on =
            r.render(&s, &DecorationState { clock_seconds: 0, cursor_on: true, spinner_frame: 0 });
        let off =
            r.render(&s, &DecorationState { clock_seconds: 0, cursor_on: false, spinner_frame: 0 });
        assert!(on.count_diff(&off, 0) > 0);
        assert_eq!(r.config().cursor_mask().count_diff(&on, &off, 0), 0);
    }

    #[test]
    fn decoration_state_schedule() {
        let plain = Scene::new(1);
        // Next change for a plain scene is the next clock tick.
        let now = SimTime::from_millis(1_234);
        assert_eq!(DecorationState::next_change(now, &plain), SimTime::from_secs(2));
        // A cursor halves the wait.
        let typing = Scene::new(1).with_cursor();
        assert_eq!(DecorationState::next_change(now, &typing), SimTime::from_millis(1_500));
        // The spinner is render-driven: it does not shorten the schedule.
        let loading = Scene::new(1).with_spinner();
        assert_eq!(DecorationState::next_change(now, &loading), SimTime::from_secs(2));
    }

    #[test]
    fn decoration_state_at_computes_phases() {
        let typing = Scene::new(1).with_cursor();
        let a = DecorationState::at(SimTime::from_millis(250), &typing, 0);
        assert!(a.cursor_on);
        let b = DecorationState::at(SimTime::from_millis(750), &typing, 0);
        assert!(!b.cursor_on);
        let plain = Scene::new(1);
        assert!(!DecorationState::at(SimTime::from_millis(250), &plain, 0).cursor_on);
        // The spinner frame passes through only while a spinner shows.
        let loading = Scene::new(1).with_spinner();
        assert_eq!(DecorationState::at(SimTime::ZERO, &loading, 7).spinner_frame, 7);
        assert_eq!(DecorationState::at(SimTime::ZERO, &plain, 7).spinner_frame, 0);
    }
}
