//! Device scripts: the app-side half of a recorded workload.
//!
//! A recording made on a real phone captures only the input events; the
//! apps themselves are installed on the device and react to them. In the
//! simulation the apps' reactions are scripted: a [`DeviceScript`] pairs
//! every recorded gesture with the widget it hits and the compute the app
//! performs in response. The same script replayed against any system
//! configuration (governor, fixed frequency, capture path) reacts
//! identically — the determinism the paper's methodology depends on.

use serde::{Deserialize, Serialize};

use interlag_evdev::gesture::{Gesture, GestureSynth};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_evdev::trace::EventTrace;
use interlag_video::frame::Rect;

use crate::task::TaskSpec;

/// The Shneiderman HCI response-time categories the paper's irritation
/// thresholds come from (§II-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InteractionCategory {
    /// Keystroke echo: 150 ms.
    Typing,
    /// Simple frequent task: 1 s.
    SimpleFrequent,
    /// Common task: 4 s.
    Common,
    /// Complex task: 12 s.
    Complex,
}

impl InteractionCategory {
    /// The category's standard irritation threshold.
    pub fn threshold(self) -> SimDuration {
        match self {
            InteractionCategory::Typing => SimDuration::from_millis(150),
            InteractionCategory::SimpleFrequent => SimDuration::from_secs(1),
            InteractionCategory::Common => SimDuration::from_secs(4),
            InteractionCategory::Complex => SimDuration::from_secs(12),
        }
    }
}

/// One scripted user interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionSpec {
    /// Human-readable description ("tap Gallery shortcut").
    pub label: String,
    /// When the gesture starts.
    pub start: SimTime,
    /// The gesture the user performs.
    pub gesture: Gesture,
    /// The widget the gesture lands on; `None` models a miss (tap next to
    /// a button) — a *spurious lag* in the paper's Figure 10 sense.
    pub widget: Option<Rect>,
    /// The compute the app performs if the widget is hit. `None` with a
    /// `Some` widget models an input the app swallows without visible
    /// reaction (unsupported menu), also a spurious lag.
    pub response: Option<TaskSpec>,
    /// HCI category, selecting the default irritation threshold.
    pub category: InteractionCategory,
}

impl InteractionSpec {
    /// `true` if this input cannot produce an interaction lag: it either
    /// misses every widget or triggers no work.
    pub fn is_spurious(&self) -> bool {
        self.widget.is_none() || self.response.is_none()
    }

    /// `true` if the gesture's start position lands on the widget (keys
    /// have no position and always "hit" their widget).
    pub fn hits_widget(&self) -> bool {
        match (self.widget, self.gesture.start_pos()) {
            (Some(w), Some(p)) => p.x >= 0 && p.y >= 0 && w.contains(p.x as u32, p.y as u32),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }
}

/// Work the device performs on its own (sync, prefetch, notifications):
/// load the user is not waiting on — the situation where raising the
/// frequency wastes energy (issue 1 of the paper's motivating example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundWork {
    /// Description for reports.
    pub label: String,
    /// When the work becomes runnable.
    pub start: SimTime,
    /// Its cycle demand.
    pub cycles: u64,
}

/// Small periodic system work (timers, compositor housekeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodicTick {
    /// Interval between ticks.
    pub period: SimDuration,
    /// Cycles per tick.
    pub cycles: u64,
}

impl Default for PeriodicTick {
    fn default() -> Self {
        PeriodicTick { period: SimDuration::from_millis(100), cycles: 50_000 }
    }
}

/// A complete scripted workload: interactions, background work, periodic
/// system activity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceScript {
    /// User interactions in chronological order.
    pub interactions: Vec<InteractionSpec>,
    /// Scheduled background work.
    pub background: Vec<BackgroundWork>,
    /// Periodic system tick, if any.
    pub tick: Option<PeriodicTick>,
}

impl DeviceScript {
    /// Creates an empty script.
    pub fn new() -> Self {
        DeviceScript::default()
    }

    /// Synthesises the raw input-event trace of every scripted gesture —
    /// this is "recording" the workload. The trace, not the script, is
    /// what gets replayed.
    ///
    /// # Panics
    ///
    /// Panics if interactions are not in chronological order.
    pub fn record_trace(&self) -> EventTrace {
        let mut synth = GestureSynth::new(1, 4);
        let mut trace = EventTrace::new();
        for spec in &self.interactions {
            trace.extend_events(synth.lower(spec.start, &spec.gesture));
        }
        trace
    }

    /// When the last scripted activity begins.
    pub fn last_activity(&self) -> SimTime {
        let inter = self.interactions.iter().map(|i| i.start).max();
        let bg = self.background.iter().map(|b| b.start).max();
        inter.into_iter().chain(bg).max().unwrap_or(SimTime::ZERO)
    }

    /// Number of non-spurious interactions (inputs that lead to an actual
    /// interaction lag).
    pub fn actual_lag_count(&self) -> usize {
        self.interactions.iter().filter(|i| !i.is_spurious()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Scene, SceneUpdate};
    use interlag_evdev::mt::Point;

    fn tap_spec(start_ms: u64, hit: bool) -> InteractionSpec {
        let widget = Rect::new(10, 20, 20, 20);
        let pos = if hit { Point::new(15, 25) } else { Point::new(60, 100) };
        InteractionSpec {
            label: "tap".into(),
            start: SimTime::from_millis(start_ms),
            gesture: Gesture::tap(pos),
            widget: Some(widget),
            response: Some(TaskSpec::single(1_000, SceneUpdate::replace(Scene::new(9)))),
            category: InteractionCategory::SimpleFrequent,
        }
    }

    #[test]
    fn hit_testing() {
        assert!(tap_spec(0, true).hits_widget());
        assert!(!tap_spec(0, false).hits_widget());
    }

    #[test]
    fn spuriousness() {
        let mut s = tap_spec(0, true);
        assert!(!s.is_spurious());
        s.response = None;
        assert!(s.is_spurious());
        let mut s = tap_spec(0, true);
        s.widget = None;
        assert!(s.is_spurious());
    }

    #[test]
    fn record_trace_covers_all_gestures() {
        let script = DeviceScript {
            interactions: vec![tap_spec(100, true), tap_spec(600, false)],
            background: Vec::new(),
            tick: None,
        };
        let trace = script.record_trace();
        assert!(!trace.is_empty());
        assert_eq!(trace.start(), Some(SimTime::from_millis(100)));
        assert_eq!(script.actual_lag_count(), 2);
    }

    #[test]
    fn last_activity_considers_background() {
        let script = DeviceScript {
            interactions: vec![tap_spec(100, true)],
            background: vec![BackgroundWork {
                label: "sync".into(),
                start: SimTime::from_secs(9),
                cycles: 1,
            }],
            tick: None,
        };
        assert_eq!(script.last_activity(), SimTime::from_secs(9));
    }

    #[test]
    fn category_thresholds_match_hci_model() {
        assert_eq!(InteractionCategory::Typing.threshold(), SimDuration::from_millis(150));
        assert_eq!(InteractionCategory::SimpleFrequent.threshold(), SimDuration::from_secs(1));
        assert_eq!(InteractionCategory::Common.threshold(), SimDuration::from_secs(4));
        assert_eq!(InteractionCategory::Complex.threshold(), SimDuration::from_secs(12));
    }
}
