//! Property tests for the journal framing: arbitrary payloads round-trip,
//! and no single-byte corruption of a journal is ever misparsed — the
//! decoder yields a strict prefix of the written records or rejects the
//! damaged one outright.

use interlag_journal::record::{decode_records, encode_record};
use proptest::prelude::*;

/// Payload bytes with the one framing restriction (no newlines) applied.
fn payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((0u8..=255).prop_map(|b| if b == b'\n' { b'N' } else { b }), 0..200)
}

fn journal_of(payloads: &[Vec<u8>]) -> Vec<u8> {
    payloads.iter().flat_map(|p| encode_record(p).unwrap()).collect()
}

proptest! {
    #[test]
    fn round_trips_arbitrary_payloads(payloads in proptest::collection::vec(payload(), 0..8)) {
        let bytes = journal_of(&payloads);
        let out = decode_records(&bytes);
        prop_assert_eq!(out.records, payloads);
        prop_assert_eq!(out.torn, 0);
        prop_assert_eq!(out.valid_len(), bytes.len());
    }

    #[test]
    fn single_byte_flip_is_never_misparsed(
        payloads in proptest::collection::vec(payload(), 1..5),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let clean = journal_of(&payloads);
        let idx = ((clean.len() as f64 * byte_frac) as usize).min(clean.len() - 1);
        let mut corrupt = clean.clone();
        corrupt[idx] ^= 1 << bit; // a bit flip always changes the byte

        let out = decode_records(&corrupt);
        // Every decoded record must be one of the originals, in order: a
        // strict prefix, possibly followed by a resynchronised suffix of
        // genuine records after the damaged one is dropped. What must
        // NEVER happen is a decoded payload that was not written.
        for rec in &out.records {
            prop_assert!(
                payloads.contains(rec),
                "decoder fabricated a record that was never written"
            );
        }
        // The record containing the flipped byte is always detected: the
        // total of surviving + torn accounts for the damage.
        prop_assert!(
            out.records.len() < payloads.len() || out.torn > 0,
            "corruption at byte {} went completely unnoticed", idx
        );
    }

    #[test]
    fn truncation_at_any_offset_yields_a_clean_prefix(
        payloads in proptest::collection::vec(payload(), 1..5),
        cut_frac in 0.0f64..1.0,
    ) {
        let clean = journal_of(&payloads);
        let cut = (clean.len() as f64 * cut_frac) as usize;
        let out = decode_records(&clean[..cut]);
        prop_assert!(out.records.len() <= payloads.len());
        for (got, want) in out.records.iter().zip(&payloads) {
            prop_assert_eq!(got, want, "truncated decode must be a prefix in order");
        }
        prop_assert!(out.torn <= 1, "a truncation tears at most the final record");
    }
}
