//! A sequence-numbered retransmit buffer for framed records in flight.
//!
//! The sharded-sweep TCP transport needs exactly-once *effect* over an
//! at-most-once wire: a connection can die with any suffix of the sent
//! frames unacknowledged, and on reconnect the sender must replay that
//! suffix — nothing more, nothing less. [`SeqOutbox`] is the sender half
//! of that contract: every framed record is assigned a monotonically
//! increasing sequence number when it is queued, retained until the peer
//! cumulatively acknowledges it, and replayable in order at any time.
//!
//! The buffer stores opaque framed bytes (the same already-encoded frames
//! that go on the wire), so this crate stays free of any dependency on
//! the pipeline's message types — the same policy as [`crate::record`].

use std::collections::VecDeque;

/// Sender-side retransmit buffer with cumulative acknowledgement.
///
/// Sequence numbers start at 1 and never repeat within one outbox; `0`
/// is the "nothing acknowledged yet" sentinel, so a receiver can always
/// answer "replay from `acked + 1`".
///
/// # Examples
///
/// ```
/// use interlag_journal::outbox::SeqOutbox;
///
/// let mut ob = SeqOutbox::new();
/// assert_eq!(ob.push(b"first".to_vec()), 1);
/// assert_eq!(ob.push(b"second".to_vec()), 2);
/// ob.ack(1);
/// let unsent: Vec<u64> = ob.unacked().map(|(seq, _)| seq).collect();
/// assert_eq!(unsent, vec![2]);
/// ```
#[derive(Debug, Default)]
pub struct SeqOutbox {
    /// Highest sequence number assigned so far (0 = none yet).
    last_seq: u64,
    /// Highest cumulatively acknowledged sequence number.
    acked: u64,
    /// Unacknowledged frames, oldest first, each `(seq, framed bytes)`.
    buf: VecDeque<(u64, Vec<u8>)>,
}

impl SeqOutbox {
    /// An empty outbox: no frames queued, nothing acknowledged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one framed record and returns its assigned sequence number.
    pub fn push(&mut self, frame: Vec<u8>) -> u64 {
        self.last_seq += 1;
        self.buf.push_back((self.last_seq, frame));
        self.last_seq
    }

    /// Applies a cumulative acknowledgement: every frame with a sequence
    /// number `<= seq` is released. Regressing or repeated acks are
    /// no-ops — an old ack arriving late (duplicated frame, reordered
    /// delivery) must never resurrect retransmissions.
    pub fn ack(&mut self, seq: u64) {
        if seq <= self.acked {
            return;
        }
        self.acked = seq.min(self.last_seq);
        while self.buf.front().is_some_and(|(s, _)| *s <= self.acked) {
            self.buf.pop_front();
        }
    }

    /// The unacknowledged frames, oldest first — exactly what a reconnect
    /// must replay after the peer reports its `acked` high-water mark.
    pub fn unacked(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.buf.iter().map(|(seq, frame)| (*seq, frame.as_slice()))
    }

    /// Highest sequence number assigned so far (0 before any push).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Highest cumulatively acknowledged sequence number.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Number of frames awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.buf.len()
    }

    /// `true` once every queued frame has been acknowledged.
    pub fn is_drained(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(ob: &SeqOutbox) -> Vec<(u64, Vec<u8>)> {
        ob.unacked().map(|(s, f)| (s, f.to_vec())).collect()
    }

    #[test]
    fn sequences_start_at_one_and_increment() {
        let mut ob = SeqOutbox::new();
        assert_eq!(ob.last_seq(), 0);
        assert_eq!(ob.push(b"a".to_vec()), 1);
        assert_eq!(ob.push(b"b".to_vec()), 2);
        assert_eq!(ob.push(b"c".to_vec()), 3);
        assert_eq!(ob.last_seq(), 3);
        assert_eq!(ob.in_flight(), 3);
    }

    #[test]
    fn cumulative_ack_releases_prefix() {
        let mut ob = SeqOutbox::new();
        for b in [b"a", b"b", b"c", b"d"] {
            ob.push(b.to_vec());
        }
        ob.ack(2);
        assert_eq!(ob.acked(), 2);
        assert_eq!(frames(&ob), vec![(3, b"c".to_vec()), (4, b"d".to_vec())]);
    }

    #[test]
    fn regressing_or_duplicate_acks_are_ignored() {
        let mut ob = SeqOutbox::new();
        for b in [b"a", b"b", b"c"] {
            ob.push(b.to_vec());
        }
        ob.ack(2);
        ob.ack(1); // stale duplicate from a reordered delivery
        ob.ack(2); // exact duplicate
        assert_eq!(ob.acked(), 2);
        assert_eq!(frames(&ob), vec![(3, b"c".to_vec())]);
    }

    #[test]
    fn ack_beyond_last_seq_is_clamped() {
        let mut ob = SeqOutbox::new();
        ob.push(b"a".to_vec());
        ob.ack(99);
        assert_eq!(ob.acked(), 1);
        assert!(ob.is_drained());
        // The next push still gets the next sequence number, and a fresh
        // ack at the clamped level stays a no-op.
        assert_eq!(ob.push(b"b".to_vec()), 2);
        ob.ack(1);
        assert_eq!(ob.in_flight(), 1);
    }

    #[test]
    fn replay_order_is_queue_order() {
        let mut ob = SeqOutbox::new();
        for i in 0..10u8 {
            ob.push(vec![i]);
        }
        ob.ack(4);
        let seqs: Vec<u64> = ob.unacked().map(|(s, _)| s).collect();
        assert_eq!(seqs, (5..=10).collect::<Vec<u64>>());
    }
}
