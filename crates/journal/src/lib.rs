//! # interlag-journal — crash-safe durability primitives
//!
//! The paper's governor studies replay five ten-minute workloads (plus a
//! 24-hour recording) across 18 configurations with repeated repetitions:
//! multi-hour unattended sweeps. A killed process, a wedged repetition or
//! a half-written output file must not throw away everything already
//! measured. This crate provides the three mechanisms the pipeline builds
//! its durability on:
//!
//! * [`record`] — an append-only record journal with CRC32-checksummed,
//!   length-prefixed framing (text lines or compact binary frames,
//!   freely mixed and told apart per record) and per-append `fsync`.
//!   Readers recover the longest valid prefix of records; a torn or
//!   garbled tail (the signature of a crash mid-write) is detected and
//!   dropped, never misparsed. Payloads are opaque bytes, so the crate
//!   stays free of any dependency on the pipeline's types.
//! * [`atomic`] — write-temp-then-rename file output, so a crash never
//!   leaves a half-written CSV or trace where a complete one used to be.
//! * [`outbox`] — a sequence-numbered retransmit buffer for framed
//!   records in flight over an unreliable link: frames are retained
//!   until cumulatively acknowledged and replayable in order, so a
//!   reconnecting sender resumes from its peer's high-water mark instead
//!   of restarting.
//! * [`watchdog`] — cooperative cancellation tokens with optional
//!   wall-clock deadlines. Long-running loops (the device quantum loop,
//!   the matcher's frame walk) poll a token and unwind cleanly when a
//!   repetition exceeds its budget.
//!
//! The crate is std-only with zero dependencies — it must be buildable
//! (and auditable) even when nothing else in the workspace is.
//!
//! # Examples
//!
//! Round-trip two records and recover from a torn tail:
//!
//! ```
//! use interlag_journal::record::{decode_records, encode_record};
//!
//! let mut bytes = Vec::new();
//! bytes.extend_from_slice(&encode_record(b"first").unwrap());
//! bytes.extend_from_slice(&encode_record(b"second").unwrap());
//! // A crash tears the third record mid-write.
//! bytes.extend_from_slice(&encode_record(b"third").unwrap()[..10]);
//!
//! let decoded = decode_records(&bytes);
//! assert_eq!(decoded.records, vec![b"first".to_vec(), b"second".to_vec()]);
//! assert_eq!(decoded.torn, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod crc32;
pub mod outbox;
pub mod record;
pub mod watchdog;

pub use atomic::atomic_write;
pub use crc32::crc32;
pub use outbox::SeqOutbox;
pub use record::{
    decode_records, encode_record, encode_record_binary, DecodeOutcome, Journal, RecordError,
    BINARY_FRAME_MAGIC,
};
pub use watchdog::CancelToken;
