//! Atomic file output: write a temp sibling, sync it, rename over the
//! destination, sync the directory.
//!
//! A study that crashes while writing its reports must not leave a
//! half-written CSV where a complete one used to be — a resumed run (or a
//! human) reading it later would see silently truncated data. The rename
//! is atomic on POSIX filesystems, so readers observe either the old
//! complete file or the new complete file, never a prefix.
//!
//! Ordering guarantee: `sync_data` on the temp file makes the *contents*
//! durable before the rename publishes them, and a final fsync of the
//! parent directory makes the *rename itself* durable — without it, a
//! power loss after `atomic_write` returns could roll the directory entry
//! back to the old file (or to nothing, for a first write), even though
//! the data blocks were on disk. Callers that chain work on a returned
//! `Ok` — a supervisor re-dispatching an agent onto a freshly seeded
//! journal, say — rely on the file surviving a crash from that point on.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically and durably: the bytes land in
/// a temporary sibling file (same directory, so the rename cannot cross
/// filesystems), are synced to disk, the temp file is renamed over
/// `path`, and the parent directory is fsynced so the rename survives a
/// crash.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming; on error
/// the destination is untouched and the temp file is cleaned up on a
/// best-effort basis. A failure to open or sync the parent directory
/// after a successful rename is *not* an error: the destination already
/// holds the new contents (some filesystems — and non-POSIX platforms —
/// do not support directory fsync at all).
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Make the rename durable: fsync the directory entry. Best-effort —
    // the data is already published, and not every filesystem lets a
    // directory be opened and synced.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ilj-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_fresh_file() {
        let dir = scratch_dir("fresh");
        let path = dir.join("out.csv");
        atomic_write(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaces_existing_file() {
        let dir = scratch_dir("replace");
        let path = dir.join("out.csv");
        std::fs::write(&path, "old contents, much longer than the new ones").unwrap();
        atomic_write(&path, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        atomic_write(dir.join("a.txt"), "x").unwrap();
        atomic_write(dir.join("b.txt"), "y").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 2, "only the two destinations remain: {names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write("/", "x").is_err());
    }

    #[test]
    fn temp_sibling_is_a_hidden_dotted_name_beside_the_target() {
        // The temp path is observable by squatting on it: a directory at
        // `.NAME.tmp.PID` makes `File::create` fail, which proves both
        // where the temp file goes and that the destination is untouched
        // on error.
        let dir = scratch_dir("sibling");
        let path = dir.join("out.csv");
        std::fs::write(&path, "old").unwrap();
        let squatter = dir.join(format!(".out.csv.tmp.{}", std::process::id()));
        std::fs::create_dir(&squatter).unwrap();
        assert!(atomic_write(&path, "new").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_cleans_its_temp_file_and_keeps_the_old_contents() {
        // Kill the rename instead of the create: the destination's
        // file-name slot is a directory, so the temp file is written and
        // synced but the rename fails — the temp must then be removed.
        let dir = scratch_dir("rename-fail");
        let path = dir.join("occupied");
        std::fs::create_dir(&path).unwrap();
        std::fs::write(path.join("inner"), "x").unwrap();
        assert!(atomic_write(&path, "new").is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(leftovers, vec!["occupied".to_string()], "temp file not cleaned up");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
