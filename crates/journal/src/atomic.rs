//! Atomic file output: write a temp sibling, sync it, rename over the
//! destination.
//!
//! A study that crashes while writing its reports must not leave a
//! half-written CSV where a complete one used to be — a resumed run (or a
//! human) reading it later would see silently truncated data. The rename
//! is atomic on POSIX filesystems, so readers observe either the old
//! complete file or the new complete file, never a prefix.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes land in a temporary
/// sibling file (same directory, so the rename cannot cross filesystems),
/// are synced to disk, and the temp file is renamed over `path`.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming; on error
/// the destination is untouched and the temp file is cleaned up on a
/// best-effort basis.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("atomic_write target has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ilj-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_fresh_file() {
        let dir = scratch_dir("fresh");
        let path = dir.join("out.csv");
        atomic_write(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaces_existing_file() {
        let dir = scratch_dir("replace");
        let path = dir.join("out.csv");
        std::fs::write(&path, "old contents, much longer than the new ones").unwrap();
        atomic_write(&path, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        atomic_write(dir.join("a.txt"), "x").unwrap();
        atomic_write(dir.join("b.txt"), "y").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names.len(), 2, "only the two destinations remain: {names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write("/", "x").is_err());
    }
}
