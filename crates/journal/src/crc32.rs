//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! The journal checksums every record with it. CRC-32 detects all
//! single-byte errors and all burst errors up to 32 bits — exactly the
//! corruption classes a torn or bit-rotted journal tail exhibits — which
//! is what lets the reader drop a damaged tail instead of misparsing it.

/// The byte-at-a-time lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes`.
///
/// # Examples
///
/// ```
/// // The classic check value for the IEEE polynomial.
/// assert_eq!(interlag_journal::crc32(b"123456789"), 0xcbf4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    update(0xffff_ffff, bytes) ^ 0xffff_ffff
}

/// Feeds `bytes` into a running (pre-inverted) CRC state; compose with
/// [`crc32_finish`] to checksum a record made of several slices without
/// concatenating them.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    update(state, bytes)
}

/// Starts a multi-slice CRC computation.
pub fn crc32_begin() -> u32 {
    0xffff_ffff
}

/// Finishes a multi-slice CRC computation started with [`crc32_begin`].
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xffff_ffff
}

fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn multi_slice_matches_concatenation() {
        let whole = crc32(b"hello world");
        let mut s = crc32_begin();
        s = crc32_update(s, b"hello ");
        s = crc32_update(s, b"world");
        assert_eq!(crc32_finish(s), whole);
    }

    #[test]
    fn single_byte_flips_always_change_the_crc() {
        let data = b"journal record payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
