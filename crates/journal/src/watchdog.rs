//! Cooperative cancellation tokens with optional wall-clock deadlines.
//!
//! A wedged repetition — a governor stuck in a pathological loop, a
//! matcher walk that never converges — must not hang a multi-hour sweep.
//! Rather than killing threads (unsafe in Rust and unportable anyway),
//! the pipeline threads a [`CancelToken`] through its long-running loops:
//! the device quantum loop, the matcher's frame walk, and the escalation
//! ladder each poll the token at a coarse stride and unwind with a typed
//! error when it fires.
//!
//! The token is an `Option<Arc<_>>` internally, so the common case — no
//! watchdog — is a `None` check with zero allocation and no clock reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable cancellation token.
///
/// A token is *fired* once [`CancelToken::cancel`] has been called on any
/// clone or (for deadline tokens) the wall clock passes the deadline.
/// Firing is sticky: once fired, a token stays fired.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

impl CancelToken {
    /// The no-op token: never fires, costs one pointer-sized `None` check
    /// per poll. Use this when no watchdog is configured.
    pub fn none() -> Self {
        CancelToken(None)
    }

    /// A token that fires when the wall clock passes `deadline` (or when
    /// [`CancelToken::cancel`] is called first).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        })))
    }

    /// A token that fires `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// A token with no deadline that only fires on an explicit
    /// [`CancelToken::cancel`] — for tests and manual interruption.
    pub fn manual() -> Self {
        CancelToken(Some(Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None })))
    }

    /// Fires the token (and every clone of it). No-op on
    /// [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Polls the token. Reads the clock only for deadline tokens that
    /// have not already been cancelled, so callers should still stride
    /// their polls in hot loops.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => {
                if inner.cancelled.load(Ordering::Acquire) {
                    return true;
                }
                match inner.deadline {
                    Some(deadline) if Instant::now() >= deadline => {
                        // Latch it so later polls skip the clock read and
                        // every clone agrees the token fired.
                        inner.cancelled.store(true, Ordering::Release);
                        true
                    }
                    _ => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_fires_on_cancel_and_is_shared_by_clones() {
        let t = CancelToken::manual();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(t.is_cancelled(), "firing is sticky");
    }

    #[test]
    fn past_deadline_fires_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_has_not_fired_yet() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn default_is_the_noop_token() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
