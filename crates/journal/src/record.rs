//! The append-only record journal: CRC32-framed records with torn-tail
//! recovery.
//!
//! # Formats
//!
//! Text framing — one record per line:
//!
//! ```text
//! <len:08x> <crc:08x> <payload>\n
//! ```
//!
//! `len` is the payload length in bytes; `crc` is the CRC-32 of the
//! *length-prefixed* record — the payload length as an 8-byte
//! little-endian integer followed by the payload bytes — so a checksum
//! can never validate a payload of the wrong length. Payloads are opaque
//! bytes except that they must not contain a newline (the line is the
//! frame); JSON payloads satisfy this by construction.
//!
//! Binary framing — for payloads that are not line-safe (or where the 18
//! bytes of hex header and the newline restriction cost too much):
//!
//! ```text
//! 0xB1 <len:u32 le> <crc:u32 le> <payload bytes>
//! ```
//!
//! with the same length-prefixed CRC. Text records always begin with a
//! lowercase hex digit, so the `0xB1` magic makes every record
//! self-describing: one journal may freely mix text and binary records
//! and [`decode_records`] tells them apart per record.
//!
//! # Recovery contract
//!
//! [`decode_records`] returns the longest prefix of structurally valid,
//! checksum-verified records. The first record that fails any check —
//! missing terminator, malformed header, length mismatch, checksum
//! mismatch — ends decoding; it and everything after it are counted as
//! torn and dropped. Consequences:
//!
//! * a crash mid-append (torn write) loses at most the record being
//!   written, never an earlier one;
//! * any single-byte corruption is detected (CRC-32 catches all
//!   single-byte errors; a flip that creates or destroys a newline
//!   changes the framed length and fails the length check), so decoded
//!   records are always a true prefix of what was written.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use crate::crc32::{crc32_begin, crc32_finish, crc32_update};

/// Why a payload could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The payload contains a newline, which would break line framing.
    PayloadContainsNewline,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::PayloadContainsNewline => {
                write!(f, "journal payloads must not contain newlines")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// The CRC of one record: over the 8-byte little-endian payload length,
/// then the payload itself.
fn record_crc(payload: &[u8]) -> u32 {
    let mut s = crc32_begin();
    s = crc32_update(s, &(payload.len() as u64).to_le_bytes());
    s = crc32_update(s, payload);
    crc32_finish(s)
}

/// Encodes one record as its framed line (including the trailing
/// newline).
///
/// # Errors
///
/// [`RecordError::PayloadContainsNewline`] if the payload cannot be line
/// framed.
pub fn encode_record(payload: &[u8]) -> Result<Vec<u8>, RecordError> {
    if payload.contains(&b'\n') {
        return Err(RecordError::PayloadContainsNewline);
    }
    let mut out = Vec::with_capacity(payload.len() + 19);
    out.extend_from_slice(format!("{:08x} {:08x} ", payload.len(), record_crc(payload)).as_bytes());
    out.extend_from_slice(payload);
    out.push(b'\n');
    Ok(out)
}

/// First byte of a binary-framed record. Text records start with a
/// lowercase hex digit (`0-9a-f`), so the magic unambiguously marks a
/// frame as binary.
pub const BINARY_FRAME_MAGIC: u8 = 0xB1;

/// Bytes of binary framing before the payload: magic, `len: u32` LE,
/// `crc: u32` LE.
const BINARY_HEADER_LEN: usize = 9;

/// Encodes one record with binary framing. Unlike [`encode_record`] this
/// never fails: any payload, newlines included, is representable.
pub fn encode_record_binary(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + BINARY_HEADER_LEN);
    out.push(BINARY_FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`decode_records`] recovered from a journal's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// The payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte offsets just *after* each valid record — `boundaries[i]` is
    /// where record `i + 1` would begin. Kill–resume tests truncate here.
    pub boundaries: Vec<usize>,
    /// How many damaged trailing chunks were dropped (0 for a clean
    /// journal). Chunks are counted per newline-separated fragment, so a
    /// torn final write counts as one.
    pub torn: usize,
}

impl DecodeOutcome {
    /// The byte length of the valid prefix.
    pub fn valid_len(&self) -> usize {
        self.boundaries.last().copied().unwrap_or(0)
    }
}

/// Decodes the longest valid prefix of records from raw journal bytes;
/// see the module docs for the recovery contract.
pub fn decode_records(bytes: &[u8]) -> DecodeOutcome {
    let mut records = Vec::new();
    let mut boundaries = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(valid) = decode_one(&bytes[offset..]) else { break };
        let (payload, consumed) = valid;
        records.push(payload);
        offset += consumed;
        boundaries.push(offset);
    }
    // Everything past the valid prefix is torn: count the fragments so
    // callers can report how much was dropped. A torn binary record has
    // no line structure to count by, so it (and whatever follows it) is
    // one fragment.
    let tail = &bytes[offset..];
    let torn = if tail.first() == Some(&BINARY_FRAME_MAGIC) {
        1
    } else {
        tail.split(|&b| b == b'\n').filter(|chunk| !chunk.is_empty()).count()
    };
    DecodeOutcome { records, boundaries, torn }
}

/// Decodes one record at the start of `bytes`; `None` if it is damaged
/// or incomplete. Returns the payload and the bytes consumed.
fn decode_one(bytes: &[u8]) -> Option<(Vec<u8>, usize)> {
    if bytes.first() == Some(&BINARY_FRAME_MAGIC) {
        return decode_one_binary(bytes);
    }
    let line_end = bytes.iter().position(|&b| b == b'\n')?;
    let line = &bytes[..line_end];
    // "llllllll cccccccc " + payload
    if line.len() < 18 || line[8] != b' ' || line[17] != b' ' {
        return None;
    }
    let len = parse_hex8(&line[0..8])? as usize;
    let crc = parse_hex8(&line[9..17])?;
    let payload = &line[18..];
    if payload.len() != len || record_crc(payload) != crc {
        return None;
    }
    Some((payload.to_vec(), line_end + 1))
}

/// Decodes one binary-framed record at the start of `bytes`.
fn decode_one_binary(bytes: &[u8]) -> Option<(Vec<u8>, usize)> {
    if bytes.len() < BINARY_HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(bytes[1..5].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[5..9].try_into().ok()?);
    let payload = bytes.get(BINARY_HEADER_LEN..BINARY_HEADER_LEN + len)?;
    if record_crc(payload) != crc {
        return None;
    }
    Some((payload.to_vec(), BINARY_HEADER_LEN + len))
}

fn parse_hex8(digits: &[u8]) -> Option<u32> {
    let s = std::str::from_utf8(digits).ok()?;
    // `from_str_radix` accepts `+` and uppercase; the writer emits exactly
    // eight lowercase hex digits, so hold the reader to the same.
    if s.len() != 8 || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
        return None;
    }
    u32::from_str_radix(s, 16).ok()
}

/// An open journal file accepting durable appends.
///
/// Every [`Journal::append`] writes one framed record and `fsync`s it
/// before returning: once `append` succeeds, the record survives a crash
/// (of the process or the machine) at any later point.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates (or truncates) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(Journal { file })
    }

    /// Opens an existing journal (or creates an empty one) for appending;
    /// the resume path uses this after reading the valid prefix.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open_append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).create(true).open(path)?;
        Ok(Journal { file })
    }

    /// Appends one record and syncs it to stable storage.
    ///
    /// # Errors
    ///
    /// [`RecordError`] mapped to `InvalidInput` if the payload cannot be
    /// framed, or any I/O error from the write or the sync.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let framed = encode_record(payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        self.file.write_all(&framed)?;
        self.file.sync_data()
    }

    /// Appends one binary-framed record and syncs it to stable storage.
    /// Accepts any payload — see [`encode_record_binary`].
    ///
    /// # Errors
    ///
    /// Any I/O error from the write or the sync.
    pub fn append_binary(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.file.write_all(&encode_record_binary(payload))?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_of(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().flat_map(|p| encode_record(p).unwrap()).collect()
    }

    #[test]
    fn round_trips_in_order() {
        let bytes = journal_of(&[b"alpha", b"", b"{\"rep\":3}"]);
        let out = decode_records(&bytes);
        assert_eq!(out.records, vec![b"alpha".to_vec(), b"".to_vec(), b"{\"rep\":3}".to_vec()]);
        assert_eq!(out.torn, 0);
        assert_eq!(out.valid_len(), bytes.len());
    }

    #[test]
    fn boundaries_mark_every_record_end() {
        let bytes = journal_of(&[b"a", b"bb", b"ccc"]);
        let out = decode_records(&bytes);
        assert_eq!(out.boundaries.len(), 3);
        for (i, &end) in out.boundaries.iter().enumerate() {
            let truncated = decode_records(&bytes[..end]);
            assert_eq!(truncated.records.len(), i + 1);
            assert_eq!(truncated.torn, 0);
        }
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut bytes = journal_of(&[b"keep me"]);
        let torn = encode_record(b"torn away").unwrap();
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let out = decode_records(&bytes);
        assert_eq!(out.records, vec![b"keep me".to_vec()]);
        assert_eq!(out.torn, 1);
    }

    #[test]
    fn garbled_middle_record_ends_the_valid_prefix() {
        let mut bytes = journal_of(&[b"one", b"two"]);
        // Corrupt a payload byte of record two; record three follows.
        let boundary = decode_records(&bytes).boundaries[0];
        bytes[boundary + 18] ^= 0x40;
        bytes.extend_from_slice(&encode_record(b"three").unwrap());
        let out = decode_records(&bytes);
        assert_eq!(out.records, vec![b"one".to_vec()]);
        assert_eq!(out.torn, 2, "the corrupted record and its successor are both dropped");
    }

    #[test]
    fn newline_payloads_are_rejected() {
        assert_eq!(encode_record(b"a\nb"), Err(RecordError::PayloadContainsNewline));
    }

    #[test]
    fn header_must_be_exact_lowercase_hex() {
        // `u32::from_str_radix` would happily accept an uppercase digit or
        // a leading `+`; the framing rejects anything the writer never
        // emits so corrupted headers cannot alias valid ones.
        let good = encode_record(&[0xAB; 26]).unwrap(); // len 0000001a
        assert_eq!(&good[..8], b"0000001a");
        for (pos, byte) in [(7usize, b'A'), (0usize, b'+'), (9usize, b'G')] {
            let mut bad = good.clone();
            bad[pos] = byte;
            assert!(
                decode_records(&bad).records.is_empty(),
                "header byte {pos} = {:?} must be rejected",
                byte as char
            );
        }
    }

    #[test]
    fn binary_records_round_trip_with_any_payload() {
        let payloads: [&[u8]; 4] = [b"plain", b"line\nbreaks\nallowed", &[0u8, 0xB1, 0xFF], b""];
        let bytes: Vec<u8> = payloads.iter().flat_map(|p| encode_record_binary(p)).collect();
        let out = decode_records(&bytes);
        assert_eq!(out.records, payloads.map(<[u8]>::to_vec).to_vec());
        assert_eq!(out.torn, 0);
        assert_eq!(out.valid_len(), bytes.len());
    }

    #[test]
    fn text_and_binary_records_mix_in_one_journal() {
        let mut bytes = journal_of(&[b"text one"]);
        bytes.extend_from_slice(&encode_record_binary(b"binary\nwith newline"));
        bytes.extend_from_slice(&encode_record(b"text two").unwrap());
        let out = decode_records(&bytes);
        assert_eq!(
            out.records,
            vec![b"text one".to_vec(), b"binary\nwith newline".to_vec(), b"text two".to_vec()]
        );
        assert_eq!(out.torn, 0);
    }

    #[test]
    fn torn_binary_tail_is_dropped_not_fatal() {
        let mut bytes = journal_of(&[b"keep me"]);
        let torn = encode_record_binary(b"torn binary record");
        for cut in 1..torn.len() {
            let mut damaged = bytes.clone();
            damaged.extend_from_slice(&torn[..cut]);
            let out = decode_records(&damaged);
            assert_eq!(out.records, vec![b"keep me".to_vec()], "cut at {cut}");
            assert_eq!(out.torn, 1, "cut at {cut}");
            assert_eq!(out.valid_len(), bytes.len(), "cut at {cut}");
        }
        // Sanity: the intact record decodes.
        bytes.extend_from_slice(&torn);
        assert_eq!(decode_records(&bytes).records.len(), 2);
    }

    #[test]
    fn binary_single_byte_flips_are_always_detected() {
        let bytes = encode_record_binary(b"checksummed payload");
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[pos] ^= flip;
                let out = decode_records(&bad);
                assert!(out.records.is_empty(), "flip {flip:#04x} at byte {pos} must not decode");
            }
        }
    }

    #[test]
    fn append_then_read_back_from_disk() {
        let dir = std::env::temp_dir().join(format!("ilj-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ilj");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(b"first").unwrap();
            j.append(b"second").unwrap();
        }
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(b"third").unwrap();
        }
        let out = decode_records(&std::fs::read(&path).unwrap());
        assert_eq!(out.records, vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
