//! Exporters: Chrome trace-event JSON and the plain-text run report.
//!
//! Both render from a [`Snapshot`] — an owned copy of the recorder state —
//! so no lock is held while formatting. The JSON is hand-rolled (the crate
//! is dependency-free); the only dynamic strings that reach it are track
//! names, which pass through [`escape_json`].
//!
//! Determinism: callers ask for either the full rendering (wall-clock
//! process / section included) or the sim-only rendering. The sim-only
//! rendering depends exclusively on simulated-time data and fixed metric
//! registries, and sorts spans and tracks before emitting, so it is
//! byte-identical across runs and worker counts for the same study inputs.

use std::borrow::Cow;
use std::fmt::Write as _;

use crate::metrics::{Counter, Hist};

/// A completed span on the simulated-time axis. Names are `Cow` so live
/// recording stays allocation-free (`&'static str` stage names) while the
/// binary-trace decoder can rebuild owned snapshots.
#[derive(Debug, Clone)]
pub(crate) struct SimSpan {
    pub(crate) name: Cow<'static, str>,
    pub(crate) track: u32,
    pub(crate) start_us: u64,
    pub(crate) end_us: u64,
}

/// A completed span on the wall-clock axis.
#[derive(Debug, Clone)]
pub(crate) struct WallRec {
    pub(crate) name: Cow<'static, str>,
    pub(crate) worker: u32,
    pub(crate) start_ns: u64,
    pub(crate) end_ns: u64,
}

/// Everything the exporters need, pulled out of the shared recorder state
/// in one pass.
#[derive(Debug, Default)]
pub(crate) struct Snapshot {
    /// One total per [`Counter`], in `Counter::ALL` order (empty when the
    /// recorder is disabled).
    pub(crate) counters: Vec<u64>,
    /// Per [`Hist`]: bucket counts (`bounds().len() + 1`), total count, sum.
    pub(crate) hists: Vec<(Vec<u64>, u64, u64)>,
    pub(crate) tracks: Vec<String>,
    pub(crate) sim_spans: Vec<SimSpan>,
    pub(crate) wall_spans: Vec<WallRec>,
    /// `(worker, busy_ns, idle_ns)` — one entry per worker.
    pub(crate) workers: Vec<(u32, u64, u64)>,
}

/// Process id used for the wall-clock tracks in the Chrome trace.
const PID_WALL: u32 = 1;
/// Process id used for the simulated-time tracks in the Chrome trace.
const PID_SIM: u32 = 2;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Pushes one trace event object onto `events`.
fn push_event(events: &mut Vec<String>, body: String) {
    events.push(format!("{{{body}}}"));
}

/// Sim tracks sorted by name with their original ids, so tids are assigned
/// by name order regardless of interning (i.e. scheduling) order.
fn sorted_tracks(snap: &Snapshot) -> Vec<(u32, &str)> {
    let mut tracks: Vec<(u32, &str)> =
        snap.tracks.iter().enumerate().map(|(i, n)| (i as u32, n.as_str())).collect();
    tracks.sort_by(|a, b| a.1.cmp(b.1));
    tracks
}

/// Sim spans sorted by `(track name, start, end, name)` — a total order
/// independent of recording interleave.
fn sorted_sim_spans<'a>(snap: &'a Snapshot, tracks: &[(u32, &str)]) -> Vec<&'a SimSpan> {
    let name_of = |id: u32| snap.tracks.get(id as usize).map(String::as_str).unwrap_or("");
    let _ = tracks;
    let mut spans: Vec<&SimSpan> = snap.sim_spans.iter().collect();
    spans.sort_by(|a, b| {
        name_of(a.track)
            .cmp(name_of(b.track))
            .then(a.start_us.cmp(&b.start_us))
            .then(a.end_us.cmp(&b.end_us))
            .then(a.name.cmp(&b.name))
    });
    spans
}

/// Renders Chrome trace-event JSON. With `include_wall` the document has a
/// wall-clock process (one thread per worker) alongside the simulated-time
/// process; without it only the deterministic simulated-time process is
/// emitted.
pub(crate) fn chrome_trace(snap: &Snapshot, include_wall: bool) -> String {
    let mut events: Vec<String> = Vec::new();

    // Simulated-time process: tids assigned by sorted track name.
    push_event(
        &mut events,
        format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_SIM},\"tid\":0,\
             \"args\":{{\"name\":\"simulated time\"}}"
        ),
    );
    let tracks = sorted_tracks(snap);
    let mut tid_of = vec![0u32; snap.tracks.len()];
    for (tid, (orig, name)) in tracks.iter().enumerate() {
        let tid = tid as u32 + 1;
        tid_of[*orig as usize] = tid;
        push_event(
            &mut events,
            format!(
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_SIM},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}",
                escape_json(name)
            ),
        );
    }
    for span in sorted_sim_spans(snap, &tracks) {
        let tid = tid_of.get(span.track as usize).copied().unwrap_or(0);
        push_event(
            &mut events,
            format!(
                "\"name\":\"{}\",\"ph\":\"X\",\"pid\":{PID_SIM},\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"cat\":\"sim\"",
                escape_json(&span.name),
                span.start_us,
                span.end_us - span.start_us
            ),
        );
    }

    if include_wall {
        push_event(
            &mut events,
            format!(
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":0,\
                 \"args\":{{\"name\":\"wall clock\"}}"
            ),
        );
        let mut workers: Vec<u32> = snap
            .wall_spans
            .iter()
            .map(|s| s.worker)
            .chain(snap.workers.iter().map(|w| w.0))
            .collect();
        workers.sort_unstable();
        workers.dedup();
        for w in &workers {
            push_event(
                &mut events,
                format!(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":{w},\
                     \"args\":{{\"name\":\"worker {w}\"}}"
                ),
            );
        }
        let mut wall: Vec<&WallRec> = snap.wall_spans.iter().collect();
        wall.sort_by(|a, b| {
            a.worker
                .cmp(&b.worker)
                .then(a.start_ns.cmp(&b.start_ns))
                .then(a.end_ns.cmp(&b.end_ns))
                .then(a.name.cmp(&b.name))
        });
        for span in wall {
            // Chrome trace timestamps are double microseconds; keep
            // nanosecond resolution in the fraction.
            push_event(
                &mut events,
                format!(
                    "\"name\":\"{}\",\"ph\":\"X\",\"pid\":{PID_WALL},\"tid\":{},\
                     \"ts\":{}.{:03},\"dur\":{}.{:03},\"cat\":\"wall\"",
                    escape_json(&span.name),
                    span.worker,
                    span.start_ns / 1_000,
                    span.start_ns % 1_000,
                    (span.end_ns - span.start_ns) / 1_000,
                    (span.end_ns - span.start_ns) % 1_000
                ),
            );
        }
        for (worker, busy_ns, idle_ns) in &snap.workers {
            push_event(
                &mut events,
                format!(
                    "\"name\":\"worker_time\",\"ph\":\"M\",\"pid\":{PID_WALL},\"tid\":{worker},\
                     \"args\":{{\"busy_ns\":{busy_ns},\"idle_ns\":{idle_ns}}}"
                ),
            );
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders the plain-text run report. The deterministic section (counters,
/// sim histograms, sim span totals) always comes first; with
/// `include_wall` a clearly-marked wall-clock section follows.
pub(crate) fn text_report(snap: &Snapshot, include_wall: bool) -> String {
    let mut out = String::new();
    out.push_str("## Observability report\n\n");
    out.push_str("### Counters (deterministic)\n\n");
    out.push_str("| counter | total |\n|---|---:|\n");
    for c in Counter::ALL {
        let v = snap.counters.get(c as usize).copied().unwrap_or(0);
        let _ = writeln!(out, "| {} | {} |", c.name(), v);
    }

    out.push_str("\n### Histograms (deterministic)\n\n");
    for h in Hist::ALL {
        if h.is_wall_clock() {
            continue;
        }
        render_hist(&mut out, snap, h);
    }

    out.push_str("\n### Span totals by stage (simulated time)\n\n");
    out.push_str("| stage | spans | total sim ms |\n|---|---:|---:|\n");
    let mut stages: Vec<(&str, u64, u64)> = Vec::new();
    for span in &snap.sim_spans {
        let dur = span.end_us - span.start_us;
        match stages.iter_mut().find(|(n, _, _)| *n == span.name.as_ref()) {
            Some((_, count, total)) => {
                *count += 1;
                *total += dur;
            }
            None => stages.push((span.name.as_ref(), 1, dur)),
        }
    }
    stages.sort_by(|a, b| a.0.cmp(b.0));
    for (name, count, total_us) in stages {
        let _ = writeln!(
            out,
            "| {} | {} | {}.{:03} |",
            name,
            count,
            total_us / 1_000,
            total_us % 1_000
        );
    }

    if include_wall {
        out.push_str("\n### Wall clock (non-deterministic)\n\n");
        if !snap.workers.is_empty() {
            out.push_str("| worker | busy ms | idle ms |\n|---|---:|---:|\n");
            let mut workers = snap.workers.clone();
            workers.sort_unstable();
            for (worker, busy_ns, idle_ns) in workers {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} |",
                    worker,
                    busy_ns / 1_000_000,
                    idle_ns / 1_000_000
                );
            }
            render_hist(&mut out, snap, Hist::WorkerBusyMs);
        }
        out.push_str("\n| stage | spans | total wall ms |\n|---|---:|---:|\n");
        let mut stages: Vec<(&str, u64, u64)> = Vec::new();
        for span in &snap.wall_spans {
            let dur = span.end_ns - span.start_ns;
            match stages.iter_mut().find(|(n, _, _)| *n == span.name.as_ref()) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += dur;
                }
                None => stages.push((span.name.as_ref(), 1, dur)),
            }
        }
        stages.sort_by(|a, b| a.0.cmp(b.0));
        for (name, count, total_ns) in stages {
            let _ = writeln!(out, "| {} | {} | {} |", name, count, total_ns / 1_000_000);
        }
    }
    out
}

/// Renders one histogram as a compact `bucket<=N: count` line.
fn render_hist(out: &mut String, snap: &Snapshot, h: Hist) {
    let (buckets, count, sum) = match snap.hists.get(h as usize) {
        Some(slot) => (slot.0.as_slice(), slot.1, slot.2),
        None => (&[] as &[u64], 0, 0),
    };
    let _ = write!(out, "- `{}` (n={count}, sum={sum}):", h.name());
    for (i, bound) in h.bounds().iter().enumerate() {
        let n = buckets.get(i).copied().unwrap_or(0);
        let _ = write!(out, " <={bound}:{n}");
    }
    let overflow = buckets.get(h.bounds().len()).copied().unwrap_or(0);
    let _ = writeln!(out, " over:{overflow}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![0; Counter::ALL.len()],
            hists: Hist::ALL.iter().map(|h| (vec![0; h.bounds().len() + 1], 0, 0)).collect(),
            tracks: vec!["b-track".into(), "a-track".into()],
            sim_spans: vec![
                SimSpan { name: "replay".into(), track: 0, start_us: 10, end_us: 30 },
                SimSpan { name: "match".into(), track: 1, start_us: 0, end_us: 5 },
            ],
            wall_spans: vec![WallRec {
                name: "rep".into(),
                worker: 1,
                start_ns: 5_000,
                end_ns: 9_000,
            }],
            workers: vec![(1, 4_000, 1_000)],
        }
    }

    #[test]
    fn sim_tids_follow_name_order_not_intern_order() {
        let json = chrome_trace(&sample(), false);
        // "a-track" interned second must still get tid 1.
        let a = json.find("\"name\":\"a-track\"").expect("a-track present");
        let b = json.find("\"name\":\"b-track\"").expect("b-track present");
        assert!(a < b, "tracks must be emitted in name order");
        assert!(!json.contains("wall clock"), "sim-only export must omit wall data");
    }

    #[test]
    fn full_trace_includes_wall_process() {
        let json = chrome_trace(&sample(), true);
        assert!(json.contains("\"name\":\"wall clock\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"busy_ns\":4000"));
    }

    #[test]
    fn empty_snapshot_renders_valid_documents() {
        let json = chrome_trace(&Snapshot::default(), true);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
        let report = text_report(&Snapshot::default(), true);
        assert!(report.contains("## Observability report"));
        assert!(report.contains("| annotate_runs | 0 |"));
    }

    #[test]
    fn report_sections_are_ordered_and_segregated() {
        let report = text_report(&sample(), true);
        let det = report.find("### Counters (deterministic)").unwrap();
        let wall = report.find("### Wall clock (non-deterministic)").unwrap();
        assert!(det < wall);
        let det_only = text_report(&sample(), false);
        assert!(!det_only.contains("Wall clock"));
        assert!(det_only.contains("| match | 1 | 0.005 |"));
        assert!(det_only.contains("| replay | 1 | 0.020 |"));
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
