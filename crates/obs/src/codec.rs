//! Compact binary encoding of recorder snapshots.
//!
//! The Chrome-trace JSON exporter renders every span as a ~100-byte text
//! event; long sweeps produce traces in the tens of megabytes and spend
//! real time formatting them. The binary codec stores the same snapshot —
//! counters, histograms, tracks, spans on both axes, worker times — as
//! fixed-width little-endian fields with length-prefixed strings, wrapped
//! in `interlag-journal`'s CRC-checked binary framing so torn or corrupted
//! trace files are detected, not misparsed.
//!
//! The codec is lossless with respect to the JSON exporter:
//! [`binary_trace_to_chrome_json`] re-renders a decoded snapshot through
//! the very same [`chrome_trace`](crate::export::chrome_trace) path, so
//! converting a binary trace yields *byte-identical* JSON to what the
//! recorder would have written directly.

use std::borrow::Cow;

use interlag_journal::record::{decode_records, encode_record_binary};

use crate::export::{self, SimSpan, Snapshot, WallRec};

/// Magic prefix of binary trace payloads.
const TRACE_MAGIC: &[u8; 4] = b"ILT1";
/// Codec version; decoding rejects others.
const TRACE_VERSION: u32 = 1;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    /// A count field used as a `Vec` preallocation hint: capped so a
    /// corrupted length cannot ask for gigabytes before the next bounds
    /// check fails.
    fn count(&mut self) -> Option<usize> {
        Some(self.u32()? as usize)
    }
}

/// Encodes a snapshot (plus the wall/sim-only flag it should render with)
/// into one CRC-framed binary record.
pub(crate) fn encode_trace(snap: &Snapshot, include_wall: bool) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(TRACE_MAGIC);
    put_u32(&mut p, TRACE_VERSION);
    p.push(include_wall as u8);
    put_u32(&mut p, snap.counters.len() as u32);
    for &c in &snap.counters {
        put_u64(&mut p, c);
    }
    put_u32(&mut p, snap.hists.len() as u32);
    for (buckets, count, sum) in &snap.hists {
        put_u32(&mut p, buckets.len() as u32);
        for &b in buckets {
            put_u64(&mut p, b);
        }
        put_u64(&mut p, *count);
        put_u64(&mut p, *sum);
    }
    put_u32(&mut p, snap.tracks.len() as u32);
    for t in &snap.tracks {
        put_str(&mut p, t);
    }
    put_u32(&mut p, snap.sim_spans.len() as u32);
    for s in &snap.sim_spans {
        put_str(&mut p, &s.name);
        put_u32(&mut p, s.track);
        put_u64(&mut p, s.start_us);
        put_u64(&mut p, s.end_us);
    }
    put_u32(&mut p, snap.wall_spans.len() as u32);
    for s in &snap.wall_spans {
        put_str(&mut p, &s.name);
        put_u32(&mut p, s.worker);
        put_u64(&mut p, s.start_ns);
        put_u64(&mut p, s.end_ns);
    }
    put_u32(&mut p, snap.workers.len() as u32);
    for &(worker, busy_ns, idle_ns) in &snap.workers {
        put_u32(&mut p, worker);
        put_u64(&mut p, busy_ns);
        put_u64(&mut p, idle_ns);
    }
    encode_record_binary(&p)
}

/// Decodes one framed binary trace back into a snapshot and its
/// include-wall flag. `None` on framing/CRC damage, wrong magic or
/// version, truncation, or trailing garbage.
fn decode_trace(bytes: &[u8]) -> Option<(Snapshot, bool)> {
    let decoded = decode_records(bytes);
    if decoded.records.len() != 1 || decoded.torn != 0 {
        return None;
    }
    let payload = &decoded.records[0];
    let mut r = Reader { buf: payload, pos: 0 };
    if r.take(4)? != TRACE_MAGIC || r.u32()? != TRACE_VERSION {
        return None;
    }
    let include_wall = match r.take(1)?[0] {
        0 => false,
        1 => true,
        _ => return None,
    };
    let mut snap = Snapshot::default();
    for _ in 0..r.count()? {
        snap.counters.push(r.u64()?);
    }
    for _ in 0..r.count()? {
        let mut buckets = Vec::new();
        for _ in 0..r.count()? {
            buckets.push(r.u64()?);
        }
        snap.hists.push((buckets, r.u64()?, r.u64()?));
    }
    for _ in 0..r.count()? {
        let track = r.str()?;
        snap.tracks.push(track);
    }
    for _ in 0..r.count()? {
        snap.sim_spans.push(SimSpan {
            name: Cow::Owned(r.str()?),
            track: r.u32()?,
            start_us: r.u64()?,
            end_us: r.u64()?,
        });
    }
    for _ in 0..r.count()? {
        snap.wall_spans.push(WallRec {
            name: Cow::Owned(r.str()?),
            worker: r.u32()?,
            start_ns: r.u64()?,
            end_ns: r.u64()?,
        });
    }
    for _ in 0..r.count()? {
        snap.workers.push((r.u32()?, r.u64()?, r.u64()?));
    }
    (r.pos == payload.len()).then_some((snap, include_wall))
}

/// Re-renders a binary trace (from [`Recorder::binary_trace`](crate::Recorder::binary_trace))
/// as Chrome trace-event JSON — byte-identical to the JSON the recorder
/// would have exported directly. `None` if the bytes are not one intact,
/// checksum-valid binary trace.
pub fn binary_trace_to_chrome_json(bytes: &[u8]) -> Option<String> {
    let (snap, include_wall) = decode_trace(bytes)?;
    Some(export::chrome_trace(&snap, include_wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Hist};

    fn sample() -> Snapshot {
        Snapshot {
            counters: (0..Counter::ALL.len() as u64).collect(),
            hists: Hist::ALL
                .iter()
                .enumerate()
                .map(|(i, h)| ((0..=h.bounds().len() as u64).collect(), i as u64, i as u64 * 100))
                .collect(),
            tracks: vec!["ondemand/rep0".into(), "a \"quoted\"\ntrack".into()],
            sim_spans: (0..8)
                .map(|i| SimSpan {
                    name: if i % 2 == 0 { "replay".into() } else { "match".into() },
                    track: i % 2,
                    start_us: i as u64 * 10,
                    end_us: i as u64 * 10 + 4,
                })
                .collect(),
            wall_spans: vec![WallRec { name: "rep".into(), worker: 2, start_ns: 10, end_ns: 55 }],
            workers: vec![(2, 45, 10)],
        }
    }

    #[test]
    fn binary_trace_re_renders_to_identical_json() {
        let snap = sample();
        for include_wall in [false, true] {
            let direct = export::chrome_trace(&snap, include_wall);
            let via_binary = binary_trace_to_chrome_json(&encode_trace(&snap, include_wall))
                .expect("round trip decodes");
            assert_eq!(via_binary, direct);
        }
    }

    #[test]
    fn binary_trace_is_smaller_than_the_json() {
        let snap = sample();
        let json = export::chrome_trace(&snap, true);
        let binary = encode_trace(&snap, true);
        assert!(binary.len() < json.len(), "{} !< {}", binary.len(), json.len());
    }

    #[test]
    fn corruption_and_truncation_fail_closed() {
        let bytes = encode_trace(&sample(), true);
        assert!(binary_trace_to_chrome_json(&bytes).is_some());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(binary_trace_to_chrome_json(&bytes[..cut]).is_none(), "cut {cut}");
        }
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(binary_trace_to_chrome_json(&bad).is_none(), "flip at {pos}");
        }
        assert!(binary_trace_to_chrome_json(b"").is_none());
        assert!(binary_trace_to_chrome_json(b"not a trace").is_none());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let json = binary_trace_to_chrome_json(&encode_trace(&Snapshot::default(), true));
        assert_eq!(json, Some(export::chrome_trace(&Snapshot::default(), true)));
    }
}
