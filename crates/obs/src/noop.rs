//! The no-op implementation (compiled when the `record` feature is off).
//!
//! Exposes exactly the API of [`crate::imp`] so instrumented crates keep
//! their call sites unconditionally; every method here is an empty inline
//! body the optimiser erases, and the exporters return the same "empty
//! recorder" renderings the real implementation produces for a disabled
//! handle.

use crate::metrics::{Counter, Hist};

/// Tags the current thread as study worker `id`. No-op in this build.
pub fn set_worker(_id: u32) {}

/// An interned span track. Carries nothing in this build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(pub(crate) u32);

/// The observability handle threaded through the pipeline. In this build
/// it records nothing and occupies no storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Recorder;

/// A statically allocated disabled recorder, for call sites that take
/// `&Recorder` but have none threaded in.
pub static DISABLED: Recorder = Recorder;

impl Recorder {
    /// A recorder that records nothing.
    pub const fn disabled() -> Self {
        Recorder
    }

    /// "Enabled" recorders still record nothing in this build.
    pub fn enabled() -> Self {
        Recorder
    }

    /// Always `false`: nothing records in this build.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op.
    #[inline]
    pub fn count(&self, _c: Counter, _n: u64) {}

    /// No-op.
    #[inline]
    pub fn observe(&self, _h: Hist, _value: u64) {}

    /// Returns a dummy id without touching the name.
    pub fn track(&self, _name: &str) -> TrackId {
        TrackId(0)
    }

    /// No-op.
    pub fn sim_span(&self, _name: &'static str, _track: TrackId, _start_us: u64, _end_us: u64) {}

    /// Returns an inert guard.
    #[must_use = "the span ends when the guard drops"]
    pub fn wall_span(&self, _name: &'static str) -> WallSpan<'_> {
        WallSpan { _marker: std::marker::PhantomData }
    }

    /// No-op.
    pub fn worker_time(&self, _worker: u32, _busy_ns: u64, _idle_ns: u64) {}

    /// An empty (but valid) Chrome trace document.
    pub fn chrome_trace_json(&self) -> String {
        crate::export::chrome_trace(&Default::default(), true)
    }

    /// An empty (but valid) Chrome trace document.
    pub fn chrome_trace_json_sim_only(&self) -> String {
        crate::export::chrome_trace(&Default::default(), false)
    }

    /// The binary encoding of an empty trace.
    pub fn binary_trace(&self) -> Vec<u8> {
        crate::codec::encode_trace(&Default::default(), true)
    }

    /// The "empty recorder" run report.
    pub fn text_report(&self) -> String {
        crate::export::text_report(&Default::default(), true)
    }

    /// The "empty recorder" run report, deterministic section only.
    pub fn text_report_deterministic(&self) -> String {
        crate::export::text_report(&Default::default(), false)
    }
}

/// Guard for one wall-clock span. Inert in this build.
#[derive(Debug)]
pub struct WallSpan<'a> {
    _marker: std::marker::PhantomData<&'a ()>,
}
