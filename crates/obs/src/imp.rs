//! The recording implementation (compiled under the `record` feature).
//!
//! A [`Recorder`] is a cheaply clonable handle; disabled handles carry no
//! state and every operation on them is a null check. Enabled handles
//! share one [`Inner`]: counters and histogram buckets are lock-free
//! atomics (safe to hammer from worker threads), spans append under a
//! mutex (stage granularity — a few hundred per study, never per frame).
//!
//! Determinism contract: everything derived from *simulated* time —
//! counters, non-wall histograms, sim-axis spans — is identical for any
//! worker count, because atomic sums commute and the exporters sort sim
//! spans by `(track name, start, end, name)` rather than arrival order.
//! Wall-clock data (span wall times, worker busy/idle) is inherently
//! nondeterministic and is segregated into clearly-marked sections the
//! deterministic exporters never touch.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::{self, SimSpan, Snapshot, WallRec};
use crate::metrics::{Counter, Hist};

thread_local! {
    /// Which study worker the current thread is; 0 is the main thread.
    static WORKER: Cell<u32> = const { Cell::new(0) };
}

/// Tags the current thread as study worker `id` (0 = the main thread).
/// Wall spans recorded afterwards land on that worker's trace track.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// An interned span track (one row of the simulated-time timeline,
/// typically one `configuration/repetition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(pub(crate) u32);

/// One histogram's storage: `bounds.len() + 1` buckets plus count/sum.
struct HistSlot {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

struct Inner {
    epoch: Instant,
    counters: [AtomicU64; Counter::ALL.len()],
    hists: Vec<HistSlot>,
    tracks: Mutex<TrackTable>,
    sim_spans: Mutex<Vec<SimSpan>>,
    wall_spans: Mutex<Vec<WallRec>>,
    /// Per-worker wall busy/idle nanoseconds, reported once per worker.
    workers: Mutex<Vec<(u32, u64, u64)>>,
}

#[derive(Default)]
struct TrackTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner").finish_non_exhaustive()
    }
}

/// The observability handle threaded through the pipeline.
///
/// # Examples
///
/// ```
/// use interlag_obs::{Counter, Recorder};
///
/// let rec = Recorder::enabled();
/// rec.count(Counter::MatchLags, 3);
/// let track = rec.track("fixed-0.30 GHz/rep0");
/// rec.sim_span("replay", track, 0, 25_000_000);
/// assert!(rec.chrome_trace_json().contains("\"replay\""));
///
/// let off = Recorder::disabled();
/// off.count(Counter::MatchLags, 1); // no-op, no storage behind it
/// assert!(!off.is_enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

/// A statically allocated disabled recorder, for call sites that take
/// `&Recorder` but have none threaded in.
pub static DISABLED: Recorder = Recorder { inner: None };

impl Recorder {
    /// A recorder that records nothing; every operation is a null check.
    pub const fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with fresh, empty storage.
    pub fn enabled() -> Self {
        let hists = Hist::ALL
            .iter()
            .map(|h| HistSlot {
                buckets: (0..=h.bounds().len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })
            .collect();
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists,
                tracks: Mutex::new(TrackTable::default()),
                sim_spans: Mutex::new(Vec::new()),
                wall_spans: Mutex::new(Vec::new()),
                workers: Mutex::new(Vec::new()),
            })),
        }
    }

    /// `true` when operations actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn count(&self, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            inner.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        if let Some(inner) = &self.inner {
            let slot = &inner.hists[h as usize];
            let bucket = h.bounds().partition_point(|&b| b < value);
            slot.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Interns a track name for simulated-time spans. Disabled recorders
    /// return a dummy id without touching the name.
    pub fn track(&self, name: &str) -> TrackId {
        let Some(inner) = &self.inner else { return TrackId(0) };
        let mut table = inner.tracks.lock().expect("track table poisoned");
        if let Some(&id) = table.index.get(name) {
            return TrackId(id);
        }
        let id = table.names.len() as u32;
        table.names.push(name.to_string());
        table.index.insert(name.to_string(), id);
        TrackId(id)
    }

    /// Records a completed span on the simulated-time axis.
    pub fn sim_span(&self, name: &'static str, track: TrackId, start_us: u64, end_us: u64) {
        if let Some(inner) = &self.inner {
            inner.sim_spans.lock().expect("sim span log poisoned").push(SimSpan {
                name: name.into(),
                track: track.0,
                start_us,
                end_us: end_us.max(start_us),
            });
        }
    }

    /// Opens a wall-clock span; the guard records it when dropped, on the
    /// current thread's worker track.
    #[must_use = "the span ends when the guard drops"]
    pub fn wall_span(&self, name: &'static str) -> WallSpan<'_> {
        WallSpan {
            state: self.inner.as_deref().map(|inner| (inner, name, WORKER.get(), Instant::now())),
        }
    }

    /// Reports one worker's wall-clock busy/idle split (called once per
    /// worker as it exits the work queue).
    pub fn worker_time(&self, worker: u32, busy_ns: u64, idle_ns: u64) {
        if let Some(inner) = &self.inner {
            inner.workers.lock().expect("worker log poisoned").push((worker, busy_ns, idle_ns));
            self.observe(Hist::WorkerBusyMs, busy_ns / 1_000_000);
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        Snapshot {
            counters: inner.counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            hists: inner
                .hists
                .iter()
                .map(|s| {
                    (
                        s.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        s.count.load(Ordering::Relaxed),
                        s.sum.load(Ordering::Relaxed),
                    )
                })
                .collect(),
            tracks: inner.tracks.lock().expect("track table poisoned").names.clone(),
            sim_spans: inner.sim_spans.lock().expect("sim span log poisoned").clone(),
            wall_spans: inner.wall_spans.lock().expect("wall span log poisoned").clone(),
            workers: inner.workers.lock().expect("worker log poisoned").clone(),
        }
    }

    /// The full Chrome trace-event JSON: wall-clock process (per-worker
    /// threads) plus simulated-time process (per-track threads). Loadable
    /// in `about:tracing` and Perfetto. Contains wall-clock timings, so it
    /// is *not* byte-stable across runs.
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace(&self.snapshot(), true)
    }

    /// The simulated-time subset of the trace: byte-stable across runs and
    /// worker counts for the same study inputs.
    pub fn chrome_trace_json_sim_only(&self) -> String {
        export::chrome_trace(&self.snapshot(), false)
    }

    /// The full trace as one CRC-framed binary record: the same data as
    /// [`chrome_trace_json`](Self::chrome_trace_json) at a fraction of the
    /// size. Convert back with [`crate::binary_trace_to_chrome_json`],
    /// which reproduces that JSON byte for byte.
    pub fn binary_trace(&self) -> Vec<u8> {
        crate::codec::encode_trace(&self.snapshot(), true)
    }

    /// The plain-text run report: the deterministic section followed by
    /// the wall-clock section.
    pub fn text_report(&self) -> String {
        export::text_report(&self.snapshot(), true)
    }

    /// Only the deterministic section of the run report: byte-stable
    /// across runs and worker counts for the same study inputs.
    pub fn text_report_deterministic(&self) -> String {
        export::text_report(&self.snapshot(), false)
    }
}

/// Guard for one wall-clock span; records on drop.
#[derive(Debug)]
pub struct WallSpan<'a> {
    state: Option<(&'a Inner, &'static str, u32, Instant)>,
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        if let Some((inner, name, worker, started)) = self.state.take() {
            let start_ns = started.duration_since(inner.epoch).as_nanos() as u64;
            let end_ns = start_ns + started.elapsed().as_nanos() as u64;
            inner.wall_spans.lock().expect("wall span log poisoned").push(WallRec {
                name: name.into(),
                worker,
                start_ns,
                end_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let rec = Recorder::disabled();
        rec.count(Counter::MatchLags, 5);
        rec.observe(Hist::MatchWalkFrames, 12);
        let t = rec.track("ignored");
        rec.sim_span("replay", t, 0, 10);
        drop(rec.wall_span("annotate"));
        assert!(!rec.is_enabled());
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.sim_spans.is_empty());
        assert!(snap.wall_spans.is_empty());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let rec = Recorder::enabled();
        rec.count(Counter::RetryAttempts, 2);
        rec.count(Counter::RetryAttempts, 1);
        rec.observe(Hist::EscalationDepth, 0);
        rec.observe(Hist::EscalationDepth, 3);
        rec.observe(Hist::EscalationDepth, 99); // overflow bucket
        let snap = rec.snapshot();
        assert_eq!(snap.counters[Counter::RetryAttempts as usize], 3);
        let (buckets, count, sum) = &snap.hists[Hist::EscalationDepth as usize];
        assert_eq!(*count, 3);
        assert_eq!(*sum, 102);
        assert_eq!(buckets[0], 1, "value 0 lands in the <=0 bucket");
        assert_eq!(*buckets.last().unwrap(), 1, "value 99 overflows");
    }

    #[test]
    fn tracks_intern_by_name() {
        let rec = Recorder::enabled();
        let a = rec.track("ondemand/rep0");
        let b = rec.track("ondemand/rep1");
        let a2 = rec.track("ondemand/rep0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(rec.snapshot().tracks.len(), 2);
    }

    #[test]
    fn wall_span_guard_records_on_drop_with_worker_tag() {
        let rec = Recorder::enabled();
        set_worker(3);
        {
            let _g = rec.wall_span("match");
        }
        set_worker(0);
        let snap = rec.snapshot();
        assert_eq!(snap.wall_spans.len(), 1);
        assert_eq!(snap.wall_spans[0].name, "match");
        assert_eq!(snap.wall_spans[0].worker, 3);
        assert!(snap.wall_spans[0].end_ns >= snap.wall_spans[0].start_ns);
    }

    #[test]
    fn sim_span_clamps_backwards_ends() {
        let rec = Recorder::enabled();
        let t = rec.track("t");
        rec.sim_span("lag", t, 100, 40);
        let snap = rec.snapshot();
        assert_eq!(snap.sim_spans[0].end_us, 100);
    }

    #[test]
    fn binary_trace_converts_back_to_the_exact_json() {
        let rec = Recorder::enabled();
        rec.count(Counter::MatchLags, 4);
        rec.observe(Hist::MatchWalkFrames, 17);
        let t = rec.track("ondemand/rep0");
        rec.sim_span("replay", t, 0, 25_000);
        rec.sim_span("match", t, 25_000, 26_000);
        drop(rec.wall_span("annotate"));
        rec.worker_time(0, 1_000, 2_000);
        let json = crate::binary_trace_to_chrome_json(&rec.binary_trace());
        assert_eq!(json, Some(rec.chrome_trace_json()));
    }

    #[test]
    fn clones_share_storage() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.count(Counter::StudyReps, 1);
        assert_eq!(rec.snapshot().counters[Counter::StudyReps as usize], 1);
    }
}
