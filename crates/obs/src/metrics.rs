//! The metric taxonomy: every counter and histogram the pipeline records.
//!
//! The registry is closed — a fixed enum per metric kind — so recording is
//! an array index away from an atomic increment, the exporters can render
//! every metric without a name table built at runtime, and two runs of the
//! same study enumerate their metrics in exactly the same order.

/// A monotonically increasing event count.
///
/// Counters are summed atomically, so their totals are identical for any
/// worker count: addition commutes even when repetitions interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Annotation reference runs executed (Part A).
    AnnotateRuns,
    /// Study repetitions completed (any outcome).
    StudyReps,
    /// Repetitions whose first attempt succeeded.
    RepsOk,
    /// Repetitions that needed at least one retry before succeeding.
    RepsRetried,
    /// Repetitions abandoned after exhausting the retry budget.
    RepsAbandoned,
    /// Repetitions whose final attempt was cancelled by the watchdog.
    RepsTimedOut,
    /// Failed attempts that triggered a retry.
    RetryAttempts,
    /// Lags the matcher resolved.
    MatchLags,
    /// Lags the matcher gave up on (after the escalation ladder).
    MatchFailures,
    /// Escalation-ladder steps climbed across all matches.
    MatchEscalations,
    /// Matcher frame verdicts answered by the previous-pointer fast path.
    VerdictCacheHitLast,
    /// Matcher frame verdicts answered by the per-walk memo map.
    VerdictCacheHitMap,
    /// Matcher frame verdicts that had to compare pixels.
    VerdictCacheMiss,
    /// Governor sampling decisions taken by the device loop.
    GovernorSamples,
    /// Sampling decisions that changed the operating point.
    FreqTransitions,
    /// Input-boost hooks that raised the frequency.
    InputBoosts,
    /// Frames pushed into capture streams.
    FramesCaptured,
    /// Jobs executed by the study work queue.
    WorkerJobs,
    /// Checkpoint records appended (and fsync'd) to the study journal.
    JournalAppends,
    /// Repetitions restored from the journal on resume instead of re-run.
    JournalReplayedReps,
    /// Torn or garbled journal tail records dropped during resume.
    JournalTornRecords,
    /// Repetition attempts cancelled by the watchdog deadline.
    WatchdogFires,
    /// Unparseable dataset lines dropped by salvage-mode ingestion.
    SalvageDroppedLines,
    /// Shard dispatch attempts launched by the sweep supervisor
    /// (including retries and speculative duplicates).
    ShardsDispatched,
    /// Shards re-dispatched after a failed or unproductive attempt.
    ShardsRetried,
    /// Shards abandoned after exhausting the re-dispatch budget.
    ShardsAbandoned,
    /// Returned shard records quarantined: corrupt frames, foreign
    /// fingerprints or slots the shard was never assigned.
    ShardRecordsQuarantined,
    /// Supervisor watchdog deadlines missed: heartbeat silence or
    /// checkpoint progress stalls that got an agent killed.
    HeartbeatsMissed,
    /// Straggler races won by the speculative duplicate attempt.
    SpeculativeWins,
    /// TCP agent sessions resumed: an agent reconnected within its lease
    /// and replayed unacknowledged frames instead of restarting its shard.
    AgentReconnects,
    /// Frames or registrations rejected because they carried a stale
    /// lease epoch — a zombie agent surviving past a partition whose
    /// shard was already re-dispatched.
    FencedEpochRecords,
    /// Network faults injected by a chaos proxy (cuts, delays, reorders,
    /// duplicates, mid-frame truncations) during a hardened sweep.
    NetFaultsInjected,
    /// Leases revoked while an attempt was still live: supervisor kills,
    /// re-dispatch of a silent shard, or sweep teardown.
    LeaseExpiries,
    /// Submission artifacts accepted and folded into the results
    /// database.
    DbSubmissionsIngested,
    /// Submission artifacts rejected by the ingest gauntlet (torn,
    /// forged, foreign or malformed) and moved to quarantine.
    DbSubmissionsQuarantined,
    /// Byte-identical submissions offered again and refused (the
    /// content-addressed store folds each submission exactly once).
    DbDuplicateSubmissions,
    /// Checkpoint records folded into database sketch aggregates.
    DbRecordsFolded,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 37] = [
        Counter::AnnotateRuns,
        Counter::StudyReps,
        Counter::RepsOk,
        Counter::RepsRetried,
        Counter::RepsAbandoned,
        Counter::RepsTimedOut,
        Counter::RetryAttempts,
        Counter::MatchLags,
        Counter::MatchFailures,
        Counter::MatchEscalations,
        Counter::VerdictCacheHitLast,
        Counter::VerdictCacheHitMap,
        Counter::VerdictCacheMiss,
        Counter::GovernorSamples,
        Counter::FreqTransitions,
        Counter::InputBoosts,
        Counter::FramesCaptured,
        Counter::WorkerJobs,
        Counter::JournalAppends,
        Counter::JournalReplayedReps,
        Counter::JournalTornRecords,
        Counter::WatchdogFires,
        Counter::SalvageDroppedLines,
        Counter::ShardsDispatched,
        Counter::ShardsRetried,
        Counter::ShardsAbandoned,
        Counter::ShardRecordsQuarantined,
        Counter::HeartbeatsMissed,
        Counter::SpeculativeWins,
        Counter::AgentReconnects,
        Counter::FencedEpochRecords,
        Counter::NetFaultsInjected,
        Counter::LeaseExpiries,
        Counter::DbSubmissionsIngested,
        Counter::DbSubmissionsQuarantined,
        Counter::DbDuplicateSubmissions,
        Counter::DbRecordsFolded,
    ];

    /// Stable snake-case name used by both exporters.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::AnnotateRuns => "annotate_runs",
            Counter::StudyReps => "study_reps",
            Counter::RepsOk => "reps_ok",
            Counter::RepsRetried => "reps_retried",
            Counter::RepsAbandoned => "reps_abandoned",
            Counter::RepsTimedOut => "reps_timed_out",
            Counter::RetryAttempts => "retry_attempts",
            Counter::MatchLags => "match_lags",
            Counter::MatchFailures => "match_failures",
            Counter::MatchEscalations => "match_escalations",
            Counter::VerdictCacheHitLast => "verdict_cache_hit_last",
            Counter::VerdictCacheHitMap => "verdict_cache_hit_map",
            Counter::VerdictCacheMiss => "verdict_cache_miss",
            Counter::GovernorSamples => "governor_samples",
            Counter::FreqTransitions => "freq_transitions",
            Counter::InputBoosts => "input_boosts",
            Counter::FramesCaptured => "frames_captured",
            Counter::WorkerJobs => "worker_jobs",
            Counter::JournalAppends => "journal_appends",
            Counter::JournalReplayedReps => "journal_replayed_reps",
            Counter::JournalTornRecords => "journal_torn_records",
            Counter::WatchdogFires => "watchdog_fires",
            Counter::SalvageDroppedLines => "salvage_dropped_lines",
            Counter::ShardsDispatched => "shards_dispatched",
            Counter::ShardsRetried => "shards_retried",
            Counter::ShardsAbandoned => "shards_abandoned",
            Counter::ShardRecordsQuarantined => "shard_records_quarantined",
            Counter::HeartbeatsMissed => "heartbeats_missed",
            Counter::SpeculativeWins => "speculative_wins",
            Counter::AgentReconnects => "agent_reconnects",
            Counter::FencedEpochRecords => "fenced_epoch_records",
            Counter::NetFaultsInjected => "net_faults_injected",
            Counter::LeaseExpiries => "lease_expiries",
            Counter::DbSubmissionsIngested => "db_submissions_ingested",
            Counter::DbSubmissionsQuarantined => "db_submissions_quarantined",
            Counter::DbDuplicateSubmissions => "db_duplicate_submissions",
            Counter::DbRecordsFolded => "db_records_folded",
        }
    }
}

/// A fixed-bucket histogram of one measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Frames walked per matcher invocation (one walk per tolerance tried).
    MatchWalkFrames,
    /// Escalation-ladder depth at which a lag finally matched (0 = the
    /// annotated tolerance was enough).
    EscalationDepth,
    /// Attempts a repetition took, counting the successful (or final
    /// failed) one.
    RetryAttemptsPerRep,
    /// Wall-clock milliseconds a worker spent executing jobs. Wall-clock
    /// domain: excluded from the deterministic exports.
    WorkerBusyMs,
}

impl Hist {
    /// Every histogram, in rendering order.
    pub const ALL: [Hist; 4] = [
        Hist::MatchWalkFrames,
        Hist::EscalationDepth,
        Hist::RetryAttemptsPerRep,
        Hist::WorkerBusyMs,
    ];

    /// Stable snake-case name used by both exporters.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::MatchWalkFrames => "match_walk_frames",
            Hist::EscalationDepth => "escalation_depth",
            Hist::RetryAttemptsPerRep => "retry_attempts_per_rep",
            Hist::WorkerBusyMs => "worker_busy_ms",
        }
    }

    /// Upper bucket bounds (inclusive); one overflow bucket follows the
    /// last bound. Bounds are fixed at compile time so two runs bucket
    /// identically.
    pub const fn bounds(self) -> &'static [u64] {
        match self {
            Hist::MatchWalkFrames => &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096],
            Hist::EscalationDepth => &[0, 1, 2, 3, 4],
            Hist::RetryAttemptsPerRep => &[1, 2, 3, 4, 6, 8],
            Hist::WorkerBusyMs => &[1, 10, 100, 1_000, 10_000, 60_000],
        }
    }

    /// `true` when the quantity is wall-clock derived and must stay out of
    /// the deterministic exports.
    pub const fn is_wall_clock(self) -> bool {
        matches!(self, Hist::WorkerBusyMs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ordered() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "metric names must be unique");
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for h in Hist::ALL {
            let b = h.bounds();
            assert!(!b.is_empty(), "{}", h.name());
            assert!(b.windows(2).all(|w| w[0] < w[1]), "{}", h.name());
        }
    }

    #[test]
    fn only_worker_busy_is_wall_clock() {
        assert!(Hist::WorkerBusyMs.is_wall_clock());
        assert!(!Hist::MatchWalkFrames.is_wall_clock());
        assert!(!Hist::EscalationDepth.is_wall_clock());
        assert!(!Hist::RetryAttemptsPerRep.is_wall_clock());
    }
}
