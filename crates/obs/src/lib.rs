//! Deterministic, dependency-free observability for the interlag pipeline.
//!
//! The study sweep (17 governor configurations × repetitions × workloads)
//! runs in parallel, with fault injection and retries; this crate makes it
//! visible without making it nondeterministic. It provides:
//!
//! - **Spans** on two time axes: wall-clock guards ([`Recorder::wall_span`])
//!   around pipeline stages as they execute on worker threads, and
//!   simulated-time spans ([`Recorder::sim_span`]) describing where inside
//!   the simulated run each stage's work lives.
//! - **Counters** ([`Counter`]) and **fixed-bucket histograms** ([`Hist`])
//!   for match walk lengths, verdict-cache hit rates, retry attempts,
//!   escalation depth, and worker busy/idle time.
//! - **Exporters**: Chrome trace-event JSON loadable in `about:tracing` /
//!   [Perfetto](https://ui.perfetto.dev) ([`Recorder::chrome_trace_json`]),
//!   a compact CRC-framed binary trace ([`Recorder::binary_trace`],
//!   reversible via [`binary_trace_to_chrome_json`]), and a plain-text run
//!   report for the study markdown ([`Recorder::text_report`]).
//!
//! # Determinism rules
//!
//! Everything derived from *simulated* time is byte-stable across runs and
//! worker counts: counters are commutative atomic sums, non-wall histograms
//! bucket sim-derived quantities with compile-time bounds, and the sim-axis
//! exporters sort tracks by name and spans by `(track, start, end, name)`
//! before emitting. Wall-clock data is segregated — a separate trace
//! process and a clearly-marked report section — and excluded from
//! [`Recorder::chrome_trace_json_sim_only`] and
//! [`Recorder::text_report_deterministic`].
//!
//! # Costs
//!
//! A disabled [`Recorder`] (the default everywhere) is one `Option` null
//! check per call; with the `record` cargo feature off the whole API
//! compiles to empty inline bodies. Enabled recording is an atomic add on
//! hot paths (counters, histograms) and a short mutex push at stage
//! granularity (spans).

#![warn(missing_docs)]

mod codec;
mod export;
pub mod metrics;

pub use codec::binary_trace_to_chrome_json;

#[cfg(feature = "record")]
mod imp;
#[cfg(feature = "record")]
pub use imp::{set_worker, Recorder, TrackId, WallSpan, DISABLED};

#[cfg(not(feature = "record"))]
mod noop;
#[cfg(not(feature = "record"))]
pub use noop::{set_worker, Recorder, TrackId, WallSpan, DISABLED};

pub use metrics::{Counter, Hist};
