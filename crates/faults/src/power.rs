//! Fault injection on the power-metering path.
//!
//! The paper's energy numbers come from a Monsoon-style meter sampling the
//! device supply while frequency/load traces record what the core did
//! (§III-B). Real meters glitch: samples drop to zero when the acquisition
//! stalls, or spike when a transient couples into the shunt reading. This
//! module perturbs a recorded [`ActivityTrace`] the same way — per-sample
//! dropouts (busy time reads as zero) and spikes (busy time reads as the
//! whole interval) — without ever producing an invalid trace.

use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::SimDuration;
use interlag_power::energy::ActivityTrace;

use crate::config::PowerFaults;

/// Counts of power-metering faults actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PowerFaultLog {
    /// Samples whose busy time read as zero.
    pub dropouts: usize,
    /// Samples whose busy time read as fully busy.
    pub spikes: usize,
}

impl PowerFaults {
    /// Returns a perturbed copy of `trace`: each sample's busy time drops
    /// to zero with `dropout_rate` or saturates to the full interval with
    /// `spike_rate`. Starts, durations and frequencies are untouched, so
    /// the result is always a valid, non-overlapping trace. With both
    /// rates zero the trace is cloned verbatim and `rng` is never drawn.
    pub fn perturb(
        &self,
        trace: &ActivityTrace,
        rng: &mut SplitMix64,
    ) -> (ActivityTrace, PowerFaultLog) {
        let mut log = PowerFaultLog::default();
        if self.dropout_rate == 0.0 && self.spike_rate == 0.0 {
            return (trace.clone(), log);
        }
        let mut out = ActivityTrace::new();
        for &sample in trace.samples() {
            let mut s = sample;
            if rng.chance(self.dropout_rate) {
                s.busy = SimDuration::ZERO;
                log.dropouts += 1;
            } else if rng.chance(self.spike_rate) {
                s.busy = s.duration;
                log.spikes += 1;
            }
            out.push(s);
        }
        (out, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_evdev::time::SimTime;
    use interlag_power::energy::ActivitySample;
    use interlag_power::opp::Frequency;

    fn trace() -> ActivityTrace {
        let mut t = ActivityTrace::new();
        for i in 0..20u64 {
            t.push(ActivitySample {
                start: SimTime::from_millis(i * 10),
                duration: SimDuration::from_millis(10),
                freq: Frequency::from_mhz(300 + (i % 3) as u32 * 100),
                busy: SimDuration::from_millis(5),
            });
        }
        t
    }

    #[test]
    fn zero_rates_clone_the_trace_exactly() {
        let t = trace();
        let mut rng = SplitMix64::new(1);
        let (p, log) = PowerFaults { dropout_rate: 0.0, spike_rate: 0.0 }.perturb(&t, &mut rng);
        assert_eq!(p, t);
        assert_eq!(log, PowerFaultLog::default());
    }

    #[test]
    fn dropouts_zero_busy_and_spikes_saturate_it() {
        let t = trace();
        let mut rng = SplitMix64::new(2);
        let (p, log) = PowerFaults { dropout_rate: 1.0, spike_rate: 0.0 }.perturb(&t, &mut rng);
        assert!(p.busy_time().is_zero());
        assert_eq!(log.dropouts, 20);
        let mut rng = SplitMix64::new(3);
        let (p, log) = PowerFaults { dropout_rate: 0.0, spike_rate: 1.0 }.perturb(&t, &mut rng);
        assert_eq!(p.busy_time(), p.total_duration());
        assert_eq!(log.spikes, 20);
    }

    #[test]
    fn perturbed_traces_stay_structurally_valid() {
        // `ActivityTrace::push` panics on overlap or busy > duration; the
        // loop completing at all proves validity across many patterns.
        let t = trace();
        for seed in 0..32 {
            let mut rng = SplitMix64::new(seed);
            let (p, _) = PowerFaults { dropout_rate: 0.3, spike_rate: 0.3 }.perturb(&t, &mut rng);
            assert_eq!(p.total_duration(), t.total_duration());
        }
    }
}
