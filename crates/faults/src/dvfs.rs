//! Fault injection on the DVFS path.
//!
//! On real Android hardware a governor's decision becomes a write to
//! `scaling_setspeed`, and that write can fail or be ignored — the clock
//! framework rejects the OPP, a race loses the update, thermal throttling
//! vetoes it. This module wraps any [`Governor`] so that each requested
//! frequency change is rejected with a configured probability, leaving the
//! previous frequency in force until the next decision point.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

use crate::config::{DvfsFaults, WedgeFaults};

/// A [`Governor`] decorator whose frequency writes can be rejected.
///
/// The wrapped policy still runs — its internal state advances as if every
/// write landed, exactly like a userspace governor that never reads back
/// `scaling_cur_freq` — but the frequency the device actually gets keeps
/// its previous value whenever a write is rejected.
pub struct FaultyGovernor<'a> {
    inner: &'a mut dyn Governor,
    faults: DvfsFaults,
    rng: SplitMix64,
    current: Option<Frequency>,
    rejected: usize,
}

impl<'a> FaultyGovernor<'a> {
    /// Wraps `inner`, drawing rejection decisions from `rng`.
    pub fn new(inner: &'a mut dyn Governor, faults: DvfsFaults, rng: SplitMix64) -> Self {
        FaultyGovernor { inner, faults, rng, current: None, rejected: 0 }
    }

    /// How many frequency changes were rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    fn apply(&mut self, want: Frequency) -> Frequency {
        if self.faults.reject_rate > 0.0 && self.rng.chance(self.faults.reject_rate) {
            if let Some(cur) = self.current {
                if cur != want {
                    self.rejected += 1;
                }
                return cur;
            }
        }
        self.current = Some(want);
        want
    }
}

impl Governor for FaultyGovernor<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        // The initial pinning always lands; only changes can be rejected.
        let f = self.inner.init(table);
        self.current = Some(f);
        f
    }

    fn sample_period(&self) -> SimDuration {
        self.inner.sample_period()
    }

    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let want = self.inner.on_sample(now, load, table);
        self.apply(want)
    }

    fn on_input(&mut self, now: SimTime, table: &OppTable) -> Option<Frequency> {
        self.inner.on_input(now, table).map(|want| self.apply(want))
    }
}

/// A [`Governor`] decorator that can *wedge*: with the configured
/// probability (drawn once at construction) every governor sample stalls
/// the host thread for `stall_ms` of wall-clock time, the way a
/// livelocked kernel cpufreq path stalls a real sweep.
///
/// A wedged run makes no forward progress in wall time even though the
/// simulated results would be unchanged — which is exactly the failure the
/// rep watchdog exists to cancel. An unwedged instance (including any
/// instance with `hang_rate == 0`) is a strict pass-through.
pub struct WedgedGovernor<'a> {
    inner: &'a mut dyn Governor,
    stall: std::time::Duration,
    wedged: bool,
}

impl<'a> WedgedGovernor<'a> {
    /// Wraps `inner`, drawing the wedge decision from `rng` now so the
    /// outcome is a pure function of the fault stream.
    pub fn new(inner: &'a mut dyn Governor, faults: WedgeFaults, rng: &mut SplitMix64) -> Self {
        let wedged = faults.hang_rate > 0.0 && rng.chance(faults.hang_rate);
        WedgedGovernor { inner, stall: std::time::Duration::from_millis(faults.stall_ms), wedged }
    }

    /// Whether this attempt drew the wedge.
    pub fn wedged(&self) -> bool {
        self.wedged
    }
}

impl Governor for WedgedGovernor<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.inner.init(table)
    }

    fn sample_period(&self) -> SimDuration {
        self.inner.sample_period()
    }

    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        if self.wedged && !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        self.inner.on_sample(now, load, table)
    }

    fn on_input(&mut self, now: SimTime, table: &OppTable) -> Option<Frequency> {
        self.inner.on_input(now, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A governor that wants a different OPP on every sample.
    struct Sweeper {
        idx: usize,
    }

    impl Governor for Sweeper {
        fn name(&self) -> &str {
            "sweeper"
        }
        fn init(&mut self, table: &OppTable) -> Frequency {
            self.idx = 0;
            table.min_freq()
        }
        fn sample_period(&self) -> SimDuration {
            SimDuration::from_millis(20)
        }
        fn on_sample(&mut self, _now: SimTime, _load: LoadSample, table: &OppTable) -> Frequency {
            self.idx = (self.idx + 1) % table.len();
            table.frequencies().nth(self.idx).expect("index in range")
        }
    }

    fn sample() -> LoadSample {
        LoadSample { busy: SimDuration::from_millis(10), window: SimDuration::from_millis(20) }
    }

    #[test]
    fn zero_rate_is_transparent() {
        let table = OppTable::snapdragon_8074();
        let mut plain = Sweeper { idx: 0 };
        let mut inner = Sweeper { idx: 0 };
        let mut g =
            FaultyGovernor::new(&mut inner, DvfsFaults { reject_rate: 0.0 }, SplitMix64::new(1));
        assert_eq!(g.init(&table), plain.init(&table));
        for i in 0..30u64 {
            let now = SimTime::from_millis(i * 20);
            assert_eq!(g.on_sample(now, sample(), &table), plain.on_sample(now, sample(), &table));
        }
        assert_eq!(g.rejected(), 0);
    }

    #[test]
    fn rejected_writes_keep_the_previous_frequency() {
        let table = OppTable::snapdragon_8074();
        let mut inner = Sweeper { idx: 0 };
        let mut g =
            FaultyGovernor::new(&mut inner, DvfsFaults { reject_rate: 1.0 }, SplitMix64::new(2));
        let init = g.init(&table);
        // Every change is rejected, so the device never leaves `init`.
        for i in 0..10u64 {
            assert_eq!(g.on_sample(SimTime::from_millis(i * 20), sample(), &table), init);
        }
        assert_eq!(g.rejected(), 10);
    }

    #[test]
    fn unwedged_governor_is_transparent() {
        let table = OppTable::snapdragon_8074();
        let mut plain = Sweeper { idx: 0 };
        let mut inner = Sweeper { idx: 0 };
        let mut rng = SplitMix64::new(3);
        let mut g = WedgedGovernor::new(&mut inner, WedgeFaults::none(), &mut rng);
        assert!(!g.wedged());
        assert_eq!(g.init(&table), plain.init(&table));
        for i in 0..10u64 {
            let now = SimTime::from_millis(i * 20);
            assert_eq!(g.on_sample(now, sample(), &table), plain.on_sample(now, sample(), &table));
        }
    }

    #[test]
    fn certain_wedge_stalls_wall_clock_without_changing_decisions() {
        let table = OppTable::snapdragon_8074();
        let mut plain = Sweeper { idx: 0 };
        let mut inner = Sweeper { idx: 0 };
        let mut rng = SplitMix64::new(4);
        let faults = WedgeFaults { hang_rate: 1.0, stall_ms: 5 };
        let mut g = WedgedGovernor::new(&mut inner, faults, &mut rng);
        assert!(g.wedged());
        g.init(&table);
        plain.init(&table);
        let t0 = std::time::Instant::now();
        for i in 0..4u64 {
            let now = SimTime::from_millis(i * 20);
            assert_eq!(g.on_sample(now, sample(), &table), plain.on_sample(now, sample(), &table));
        }
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20), "4 samples × 5 ms stall");
    }

    #[test]
    fn partial_rejection_is_deterministic_per_seed() {
        let table = OppTable::snapdragon_8074();
        let run = |seed: u64| {
            let mut inner = Sweeper { idx: 0 };
            let mut g = FaultyGovernor::new(
                &mut inner,
                DvfsFaults { reject_rate: 0.4 },
                SplitMix64::new(seed),
            );
            g.init(&table);
            (0..50u64)
                .map(|i| g.on_sample(SimTime::from_millis(i * 20), sample(), &table))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
