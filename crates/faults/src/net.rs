//! Network faults: a seeded in-process TCP relay for hardening the
//! multi-machine sweep transport.
//!
//! [`super::transport`] mangles frames on an in-process pipe; this module
//! attacks the *network* instead. A [`ChaosProxy`] sits between sweep
//! agents and their supervisor as an ordinary TCP endpoint: agents
//! connect to the proxy, the proxy connects upstream, and the
//! agent→supervisor byte stream is re-framed and mangled on the way
//! through. Because the proxy is a real socket pair, every failure it
//! injects exercises the production reconnect/replay path, not a mock.
//!
//! The fault families match what a real flaky network does to a TCP
//! session — and deliberately exclude what TCP makes impossible:
//!
//! * **partition** — the connection is cut (both directions) after a
//!   scheduled number of forwarded frames; the agent must reconnect and
//!   resume from its acknowledged high-water mark;
//! * **RST** — a cut whose final frame arrives torn mid-bytes, the
//!   signature of a peer reset racing buffered data (`std` exposes no
//!   stable `SO_LINGER`, so the reset is approximated by a truncated
//!   write plus an abrupt close — indistinguishable to the victim);
//! * **delay** — a frame (and, TCP being in-order, everything behind it)
//!   arrives late;
//! * **reorder** — one frame is held and delivered after its successor
//!   (adjacent swap), modelling segment reordering across a relay;
//! * **duplication** — a frame is delivered twice back to back.
//!
//! There is *no* silent single-frame drop: within a live TCP session
//! bytes are never lost, only delayed — data loss happens exclusively at
//! cuts, where the unacknowledged tail dies with the connection. That is
//! exactly the loss model the session layer's ack/replay protocol is
//! built for.
//!
//! Determinism follows the crate's house rules: all draws come from
//! [`SplitMix64`] streams derived from `(seed, connection index)`, and a
//! quiescent [`NetFaults::none`] proxy is a strict byte-for-byte relay.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use interlag_evdev::rng::SplitMix64;

/// Network fault schedule for one [`ChaosProxy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Probability a forwarded frame is delayed before delivery.
    pub delay_rate: f64,
    /// Peak extra delay for a delayed frame, milliseconds (uniform in
    /// `[1, max]`).
    pub max_delay_ms: u64,
    /// Probability a forwarded frame is delivered twice back to back.
    pub duplicate_rate: f64,
    /// Probability a forwarded frame is held and delivered *after* its
    /// successor (adjacent swap).
    pub reorder_rate: f64,
    /// Cut the connection after this many forwarded frames (per
    /// connection). `None` = never cut.
    pub cut_after_frames: Option<u32>,
    /// When cutting, deliver the final frame torn mid-bytes first — the
    /// RST approximation. A clean cut (`false`) models a partition.
    pub truncate_on_cut: bool,
    /// Proxy-global budget of cuts, so a finite schedule always lets the
    /// sweep finish once the budget is spent.
    pub max_cuts: u32,
}

impl NetFaults {
    /// No faults: the proxy is a strict byte-for-byte relay, no RNG draws.
    pub fn none() -> Self {
        NetFaults {
            delay_rate: 0.0,
            max_delay_ms: 0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            cut_after_frames: None,
            truncate_on_cut: false,
            max_cuts: 0,
        }
    }

    /// Clean partitions: cut every `every` forwarded frames, at most
    /// `max_cuts` times across the proxy's lifetime.
    pub fn partition(every: u32, max_cuts: u32) -> Self {
        NetFaults { cut_after_frames: Some(every.max(1)), max_cuts, ..NetFaults::none() }
    }

    /// RST-style cuts: like [`NetFaults::partition`] but the last frame
    /// before each cut arrives torn mid-bytes.
    pub fn rst(every: u32, max_cuts: u32) -> Self {
        NetFaults { truncate_on_cut: true, ..NetFaults::partition(every, max_cuts) }
    }

    /// Adjacent-swap reordering at `rate`, no cuts.
    pub fn reorder(rate: f64) -> Self {
        NetFaults { reorder_rate: rate, ..NetFaults::none() }
    }

    /// Back-to-back duplication at `rate`, no cuts.
    pub fn duplicate(rate: f64) -> Self {
        NetFaults { duplicate_rate: rate, ..NetFaults::none() }
    }

    /// Head-of-line delay at `rate`, up to `max_delay_ms` per hit.
    pub fn delay(rate: f64, max_delay_ms: u64) -> Self {
        NetFaults { delay_rate: rate, max_delay_ms, ..NetFaults::none() }
    }

    /// Everything at once at moderate rates: the CI worst-case schedule.
    pub fn storm(max_cuts: u32) -> Self {
        NetFaults {
            delay_rate: 0.10,
            max_delay_ms: 3,
            duplicate_rate: 0.15,
            reorder_rate: 0.15,
            cut_after_frames: Some(25),
            truncate_on_cut: true,
            max_cuts,
        }
    }

    /// A named CI profile, or `None` for an unknown name. Profiles:
    /// `partition`, `rst`, `reorder`, `duplicate`, `delay`, `storm`.
    pub fn profile(name: &str) -> Option<Self> {
        match name {
            "partition" => Some(NetFaults::partition(12, 3)),
            "rst" => Some(NetFaults::rst(10, 3)),
            "reorder" => Some(NetFaults::reorder(0.25)),
            "duplicate" => Some(NetFaults::duplicate(0.25)),
            "delay" => Some(NetFaults::delay(0.25, 4)),
            "storm" => Some(NetFaults::storm(2)),
            _ => None,
        }
    }

    /// `true` if the proxy would be a strict pass-through.
    pub fn is_quiescent(&self) -> bool {
        self.delay_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.cut_after_frames.is_none()
    }
}

/// Snapshot of the faults a [`ChaosProxy`] has injected so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaultCounts {
    /// Connections cut (partitions and RSTs).
    pub cuts: u64,
    /// Frames delivered torn mid-bytes at a cut.
    pub truncated: u64,
    /// Frames delivered late.
    pub delayed: u64,
    /// Frames delivered after their successor.
    pub reordered: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
}

impl NetFaultCounts {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.cuts + self.truncated + self.delayed + self.reordered + self.duplicated
    }
}

#[derive(Debug, Default)]
struct Counts {
    cuts: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    duplicated: AtomicU64,
}

/// A seeded in-process TCP relay injecting [`NetFaults`] into the
/// agent→supervisor direction of every connection through it.
///
/// The supervisor→agent direction is relayed verbatim (acks are the
/// session layer's control channel; cutting the connection already
/// exercises their loss), except that a cut severs both directions at
/// once, as a real partition does.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counts: Arc<Counts>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts relaying every
    /// accepted connection to `upstream` under the given fault schedule.
    pub fn spawn(upstream: SocketAddr, faults: NetFaults, seed: u64) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counts = Arc::new(Counts::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_counts = Arc::clone(&counts);
        thread::spawn(move || {
            let mut conn_index: u64 = 0;
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { break };
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream gone: the agent sees an immediate close
                    // and retries through its normal backoff.
                    continue;
                };
                relay(client, server, faults, seed, conn_index, Arc::clone(&accept_counts));
                conn_index += 1;
            }
        });
        Ok(ChaosProxy { addr, shutdown, counts })
    }

    /// The loopback address agents should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far.
    pub fn injected(&self) -> NetFaultCounts {
        NetFaultCounts {
            cuts: self.counts.cuts.load(Ordering::SeqCst),
            truncated: self.counts.truncated.load(Ordering::SeqCst),
            delayed: self.counts.delayed.load(Ordering::SeqCst),
            reordered: self.counts.reordered.load(Ordering::SeqCst),
            duplicated: self.counts.duplicated.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting new connections. Existing relays die with their
    /// endpoints.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the two pump threads for one relayed connection.
fn relay(
    client: TcpStream,
    server: TcpStream,
    faults: NetFaults,
    seed: u64,
    conn_index: u64,
    counts: Arc<Counts>,
) {
    let client_rd = client.try_clone();
    let server_rd = server.try_clone();
    let (Ok(client_rd), Ok(server_rd)) = (client_rd, server_rd) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    // agent → supervisor: line-aware mangling.
    {
        let client = client.try_clone().ok();
        let server_wr = server;
        let counts = Arc::clone(&counts);
        thread::spawn(move || {
            pump_mangled(client_rd, server_wr, client, faults, seed, conn_index, counts);
        });
    }
    // supervisor → agent: verbatim relay; ends (and severs the reverse
    // path) when either endpoint closes.
    thread::spawn(move || {
        let mut rd = server_rd;
        let mut wr = client;
        let mut buf = [0u8; 4096];
        loop {
            match rd.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if wr.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = wr.shutdown(Shutdown::Both);
        let _ = rd.shutdown(Shutdown::Both);
    });
}

/// The mangling pump: reads the agent's byte stream, re-frames it on
/// newlines, and forwards each complete frame under a drawn fate.
fn pump_mangled(
    mut rd: TcpStream,
    mut wr: TcpStream,
    client_wr: Option<TcpStream>,
    faults: NetFaults,
    seed: u64,
    conn_index: u64,
    counts: Arc<Counts>,
) {
    let mut rng = net_stream(seed, conn_index);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut held: Option<Vec<u8>> = None;
    let mut forwarded: u32 = 0;
    'conn: loop {
        let n = match rd.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = buf.drain(..=nl).collect();
            forwarded += 1;
            let cutting = faults.cut_after_frames.is_some_and(|every| forwarded >= every)
                && counts.cuts.load(Ordering::SeqCst) < u64::from(faults.max_cuts);
            if cutting {
                counts.cuts.fetch_add(1, Ordering::SeqCst);
                if faults.truncate_on_cut && frame.len() > 2 {
                    let keep = 1 + (rng.next_u64() as usize % (frame.len() - 2));
                    counts.truncated.fetch_add(1, Ordering::SeqCst);
                    let _ = wr.write_all(&frame[..keep]);
                }
                break 'conn;
            }
            if faults.is_quiescent() {
                if wr.write_all(&frame).is_err() {
                    break 'conn;
                }
                continue;
            }
            if faults.reorder_rate > 0.0 && held.is_none() && rng.next_f64() < faults.reorder_rate {
                counts.reordered.fetch_add(1, Ordering::SeqCst);
                held = Some(frame);
                continue;
            }
            if faults.delay_rate > 0.0 && rng.next_f64() < faults.delay_rate {
                let ms = 1 + rng.next_u64() % faults.max_delay_ms.max(1);
                counts.delayed.fetch_add(1, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(ms));
            }
            let twice = faults.duplicate_rate > 0.0 && rng.next_f64() < faults.duplicate_rate;
            if twice {
                counts.duplicated.fetch_add(1, Ordering::SeqCst);
            }
            for _ in 0..if twice { 2 } else { 1 } {
                if wr.write_all(&frame).is_err() {
                    break 'conn;
                }
            }
            if let Some(h) = held.take() {
                if wr.write_all(&h).is_err() {
                    break 'conn;
                }
            }
        }
        let _ = wr.flush();
    }
    // A held frame at clean end-of-stream must not be lost: only a cut
    // may destroy data.
    if let Some(h) = held.take() {
        let _ = wr.write_all(&h);
    }
    let _ = wr.shutdown(Shutdown::Both);
    let _ = rd.shutdown(Shutdown::Both);
    if let Some(cw) = client_wr {
        let _ = cw.shutdown(Shutdown::Both);
    }
}

/// The fault stream for one relayed connection, derived in the same
/// style as [`crate::TransportFaults::stream`].
fn net_stream(seed: u64, conn_index: u64) -> SplitMix64 {
    let mut r = SplitMix64::new(seed);
    for part in [conn_index, 7] {
        r = SplitMix64::new(r.next_u64() ^ part.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// An upstream sink: accepts connections forever, collecting each
    /// connection's full byte stream.
    fn sink() -> (SocketAddr, Arc<Mutex<Vec<Vec<u8>>>>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let streams: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let collected = Arc::clone(&streams);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { break };
                let slot = {
                    let mut g = collected.lock().unwrap();
                    g.push(Vec::new());
                    g.len() - 1
                };
                let collected = Arc::clone(&collected);
                thread::spawn(move || {
                    let mut bytes = Vec::new();
                    let _ = s.read_to_end(&mut bytes);
                    collected.lock().unwrap()[slot] = bytes;
                });
            }
        });
        (addr, streams)
    }

    fn wait_for<F: Fn() -> bool>(cond: F) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(10));
        }
        panic!("condition not reached within 5s");
    }

    #[test]
    fn quiescent_proxy_is_a_byte_for_byte_relay() {
        let (upstream, streams) = sink();
        let proxy = ChaosProxy::spawn(upstream, NetFaults::none(), 1).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let sent = b"alpha\nbeta\ngamma\n";
        c.write_all(sent).unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        wait_for(|| streams.lock().unwrap().first().is_some_and(|s| s.len() == sent.len()));
        assert_eq!(streams.lock().unwrap()[0], sent);
        assert_eq!(proxy.injected(), NetFaultCounts::default());
    }

    #[test]
    fn scheduled_cut_severs_after_n_frames_then_budget_exhausts() {
        let (upstream, streams) = sink();
        let proxy = ChaosProxy::spawn(upstream, NetFaults::partition(2, 1), 2).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"one\ntwo\nthree\n").unwrap();
        // The cut lands on frame 2: upstream sees exactly one frame then
        // EOF, and the client's read side sees the severed connection.
        wait_for(|| streams.lock().unwrap().first().is_some_and(|s| s == b"one\n"));
        let mut tail = Vec::new();
        let _ = c.read_to_end(&mut tail); // EOF or reset — either way, dead
        assert_eq!(proxy.injected().cuts, 1);
        // Budget spent: a reconnect relays cleanly.
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.write_all(b"four\nfive\nsix\n").unwrap();
        c2.shutdown(Shutdown::Write).unwrap();
        wait_for(|| streams.lock().unwrap().get(1).is_some_and(|s| s == b"four\nfive\nsix\n"));
        assert_eq!(proxy.injected().cuts, 1);
    }

    #[test]
    fn duplication_doubles_frames_and_counts() {
        let (upstream, streams) = sink();
        let proxy = ChaosProxy::spawn(upstream, NetFaults::duplicate(1.0), 3).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"a\nb\n").unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        wait_for(|| streams.lock().unwrap().first().is_some_and(|s| s == b"a\na\nb\nb\n"));
        assert_eq!(proxy.injected().duplicated, 2);
    }

    #[test]
    fn reordering_swaps_adjacent_frames_without_loss() {
        let (upstream, streams) = sink();
        // rate 1.0: every frame not already behind a held one is held, so
        // the stream comes out as adjacent swaps.
        let proxy = ChaosProxy::spawn(upstream, NetFaults::reorder(1.0), 4).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"1\n2\n3\n4\n").unwrap();
        c.shutdown(Shutdown::Write).unwrap();
        wait_for(|| streams.lock().unwrap().first().is_some_and(|s| s.len() == 8));
        assert_eq!(streams.lock().unwrap()[0], b"2\n1\n4\n3\n");
        assert_eq!(proxy.injected().reordered, 2);
    }

    #[test]
    fn profiles_parse_and_unknown_is_none() {
        for name in ["partition", "rst", "reorder", "duplicate", "delay", "storm"] {
            assert!(NetFaults::profile(name).is_some(), "{name}");
        }
        assert!(NetFaults::profile("flood").is_none());
        assert!(NetFaults::rst(10, 3).truncate_on_cut);
        assert!(!NetFaults::partition(10, 3).truncate_on_cut);
        assert!(NetFaults::none().is_quiescent());
        assert!(!NetFaults::storm(1).is_quiescent());
    }
}
