//! Transport faults: deterministic mangling of the framed byte stream
//! between a sweep agent and its supervisor.
//!
//! The sharded-sweep orchestrator ships checkpoint records over stdio as
//! CRC-framed records (`interlag-journal` framing). Real transports drop,
//! duplicate, truncate and delay — and real agents die mid-shard. This
//! module makes every one of those failures injectable and exactly
//! reproducible, in the same style as the pipeline fault families:
//!
//! * [`TransportFaults`] — per-frame fault rates, drawn from a
//!   [`SplitMix64`] stream derived by [`TransportFaults::stream`] from
//!   `(seed, shard, attempt)`, so the byte-level failure pattern of any
//!   dispatch attempt replays exactly;
//! * [`FrameFate`] / [`TransportFaults::fate`] — the per-frame decision;
//! * [`FrameMangler`] — applies fates to a sequence of complete frames,
//!   producing the byte stream the supervisor actually sees;
//! * [`AgentSabotage`] — scheduled agent-level failures (crash or wedge
//!   at the nth checkpoint append, supervisor-side SIGKILL after the nth
//!   received record), pinned to one `(shard, attempt)` so chaos tests
//!   can script an exact kill schedule.
//!
//! Quiescent transparency holds here too: [`TransportFaults::none`]
//! delivers every frame verbatim without a single RNG draw.

use interlag_evdev::rng::SplitMix64;

/// Frame-level fault rates for one agent↔supervisor link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaults {
    /// Probability a frame is dropped entirely.
    pub drop_rate: f64,
    /// Probability a frame is delivered twice back to back.
    pub duplicate_rate: f64,
    /// Probability a frame is truncated mid-bytes (a torn tail: the
    /// remainder — including the frame terminator — never arrives, so the
    /// next frame's bytes run straight on).
    pub truncate_rate: f64,
    /// Probability a frame is delayed in wall-clock time before delivery.
    pub delay_rate: f64,
    /// Peak extra delay for a delayed frame, milliseconds (uniform in
    /// `[1, max]`).
    pub max_delay_ms: u64,
}

impl TransportFaults {
    /// No transport faults: every frame is delivered verbatim, no RNG
    /// draws are made.
    pub fn none() -> Self {
        TransportFaults {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            truncate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ms: 0,
        }
    }

    /// Every frame fault fires with probability `rate`; delays use the
    /// chaos-test default of up to 5 ms.
    pub fn uniform(rate: f64) -> Self {
        TransportFaults {
            drop_rate: rate,
            duplicate_rate: rate,
            truncate_rate: rate,
            delay_rate: rate,
            max_delay_ms: 5,
        }
    }

    /// `true` if every rate is zero — the mangler is a strict
    /// pass-through.
    pub fn is_quiescent(&self) -> bool {
        self.drop_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.truncate_rate == 0.0
            && self.delay_rate == 0.0
    }

    /// The fault stream for one dispatch attempt of one shard, derived
    /// like [`FaultStreams::derive`](crate::FaultStreams::derive): a
    /// retried attempt sees a fresh but equally deterministic pattern.
    pub fn stream(seed: u64, shard: u64, attempt: u64) -> SplitMix64 {
        let mut r = SplitMix64::new(seed);
        for part in [shard, attempt, 6] {
            r = SplitMix64::new(r.next_u64() ^ part.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        r
    }

    /// Draws the fate of the next frame (of `frame_len` bytes) from
    /// `rng`. Quiescent configurations return [`FrameFate::Deliver`]
    /// without drawing, preserving stream alignment with a no-fault run.
    pub fn fate(&self, rng: &mut SplitMix64, frame_len: usize) -> FrameFate {
        if self.is_quiescent() {
            return FrameFate::Deliver;
        }
        if rng.next_f64() < self.drop_rate {
            return FrameFate::Drop;
        }
        if rng.next_f64() < self.duplicate_rate {
            return FrameFate::Duplicate;
        }
        if rng.next_f64() < self.truncate_rate {
            // Keep at least one byte and lose at least one, so a
            // truncation is always a real torn frame.
            let keep =
                if frame_len > 1 { 1 + (rng.next_u64() as usize % (frame_len - 1)) } else { 0 };
            return FrameFate::Truncate { keep };
        }
        if self.delay_rate > 0.0 && rng.next_f64() < self.delay_rate {
            let ms = 1 + rng.next_u64() % self.max_delay_ms.max(1);
            return FrameFate::Delay { ms };
        }
        FrameFate::Deliver
    }
}

/// What happens to one frame in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Delivered verbatim.
    Deliver,
    /// Lost entirely.
    Drop,
    /// Delivered twice back to back.
    Duplicate,
    /// Only the first `keep` bytes arrive; the rest (and the frame
    /// terminator) never do.
    Truncate {
        /// Bytes of the frame that survive.
        keep: usize,
    },
    /// Delivered intact but `ms` milliseconds late.
    Delay {
        /// Extra wall-clock delay, milliseconds.
        ms: u64,
    },
}

/// Applies [`TransportFaults`] to a sequence of complete frames,
/// producing the byte chunks (and delays) the receiver observes.
#[derive(Debug)]
pub struct FrameMangler {
    faults: TransportFaults,
    rng: SplitMix64,
    dropped: u64,
    duplicated: u64,
    truncated: u64,
    delayed: u64,
}

impl FrameMangler {
    /// A mangler for one `(seed, shard, attempt)` link.
    pub fn new(faults: TransportFaults, seed: u64, shard: u64, attempt: u64) -> Self {
        FrameMangler {
            faults,
            rng: TransportFaults::stream(seed, shard, attempt),
            dropped: 0,
            duplicated: 0,
            truncated: 0,
            delayed: 0,
        }
    }

    /// Mangles one complete frame: the bytes to forward (possibly empty,
    /// possibly doubled, possibly a torn prefix) and any wall-clock delay
    /// to impose before forwarding them.
    pub fn mangle(&mut self, frame: &[u8]) -> (Vec<u8>, std::time::Duration) {
        match self.faults.fate(&mut self.rng, frame.len()) {
            FrameFate::Deliver => (frame.to_vec(), std::time::Duration::ZERO),
            FrameFate::Drop => {
                self.dropped += 1;
                (Vec::new(), std::time::Duration::ZERO)
            }
            FrameFate::Duplicate => {
                self.duplicated += 1;
                let mut twice = frame.to_vec();
                twice.extend_from_slice(frame);
                (twice, std::time::Duration::ZERO)
            }
            FrameFate::Truncate { keep } => {
                self.truncated += 1;
                (frame[..keep.min(frame.len())].to_vec(), std::time::Duration::ZERO)
            }
            FrameFate::Delay { ms } => {
                self.delayed += 1;
                (frame.to_vec(), std::time::Duration::from_millis(ms))
            }
        }
    }

    /// Frames dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Frames truncated so far.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Frames delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }
}

/// How a scheduled agent-level failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageKind {
    /// The agent aborts the instant it has journalled its `n`th new
    /// checkpoint record (1-based): the record is durable, the process
    /// dies before announcing it.
    CrashAtCheckpoint(u32),
    /// The agent's worker wedges (stops making checkpoint progress
    /// forever) after journalling its `n`th new record — heartbeats keep
    /// flowing, which is exactly what the supervisor's progress watchdog
    /// exists to catch.
    WedgeAtCheckpoint(u32),
    /// The *supervisor* SIGKILLs the agent upon receiving its `n`th
    /// checkpoint frame — a kill aligned to a checkpoint boundary from
    /// the outside.
    KillAfterRecords(u32),
    /// The agent appends a torn half-frame to its own shard journal
    /// after its `n`th record, then aborts — the crash-mid-append case:
    /// the journal's valid prefix holds `n` records and ends in garbage.
    TearJournal(u32),
}

/// One scheduled failure, pinned to a `(shard, attempt)` so a chaos test
/// scripts exactly which dispatch dies and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSabotage {
    /// The shard whose dispatch is sabotaged.
    pub shard: u32,
    /// The attempt number (0 = first dispatch) the sabotage strikes on.
    pub attempt: u32,
    /// How it strikes.
    pub kind: SabotageKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_mangler_is_a_pass_through() {
        let mut m = FrameMangler::new(TransportFaults::none(), 1, 2, 3);
        for payload in [&b"abc"[..], &b""[..], &[0xB1, 0x00][..]] {
            let (out, delay) = m.mangle(payload);
            assert_eq!(out, payload);
            assert_eq!(delay, std::time::Duration::ZERO);
        }
        assert_eq!(m.dropped() + m.duplicated() + m.truncated() + m.delayed(), 0);
    }

    #[test]
    fn fates_are_reproducible_per_attempt() {
        let faults = TransportFaults::uniform(0.3);
        let frame = vec![7u8; 64];
        let run = |attempt: u64| {
            let mut m = FrameMangler::new(faults, 0x5eed_cafe, 4, attempt);
            (0..64).map(|_| m.mangle(&frame).0.len()).collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0));
        // A re-dispatched attempt sees a fresh pattern.
        assert_ne!(run(0), run(1));
    }

    #[test]
    fn truncation_always_tears_real_bytes() {
        let faults = TransportFaults { truncate_rate: 1.0, ..TransportFaults::uniform(0.0) };
        let mut rng = TransportFaults::stream(9, 0, 0);
        for len in [2usize, 3, 16, 100] {
            match faults.fate(&mut rng, len) {
                FrameFate::Truncate { keep } => {
                    assert!(keep >= 1 && keep < len, "keep {keep} of {len}")
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }
}
