//! Fault injection on the replay path.
//!
//! Wraps any [`Replayer`] and perturbs the event stream the way a lossy
//! input-injection channel does: events vanish in transit, or arrive late
//! by a bounded random extra delay (on top of whatever timing error the
//! wrapped replayer already models). Delayed events are re-stamped with
//! their actual (late) release time, exactly as the paper's `sendevent`
//! measurements show inaccuracy corrupting a replayed workload (§II-B).

use interlag_evdev::event::TimedEvent;
use interlag_evdev::replay::{ReplayStats, Replayer};
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};

use crate::config::ReplayFaults;

/// Counts of replay faults actually injected during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayFaultLog {
    /// Events lost in transit.
    pub lost: usize,
    /// Events delivered late with a re-stamped timestamp.
    pub delayed: usize,
}

/// A [`Replayer`] decorator injecting event loss and extra delay.
///
/// With both rates zero it is a strict pass-through: the wrapped
/// replayer's events come back untouched and no RNG draws are made.
#[derive(Debug)]
pub struct FaultyReplayer<R> {
    inner: R,
    faults: ReplayFaults,
    rng: SplitMix64,
    /// Delayed events waiting for their new release time, time-ordered.
    pending: Vec<TimedEvent>,
    log: ReplayFaultLog,
}

impl<R: Replayer> FaultyReplayer<R> {
    /// Wraps `inner`, drawing fault decisions from `rng`.
    pub fn new(inner: R, faults: ReplayFaults, rng: SplitMix64) -> Self {
        FaultyReplayer { inner, faults, rng, pending: Vec::new(), log: ReplayFaultLog::default() }
    }

    /// The faults injected so far.
    pub fn log(&self) -> ReplayFaultLog {
        self.log
    }

    fn quiescent(&self) -> bool {
        self.faults.event_loss_rate == 0.0
            && (self.faults.delay_rate == 0.0 || self.faults.max_delay_us == 0)
    }
}

impl<R: Replayer> Replayer for FaultyReplayer<R> {
    fn poll(&mut self, now: SimTime) -> Vec<TimedEvent> {
        let incoming = self.inner.poll(now);
        if self.quiescent() && self.pending.is_empty() {
            return incoming;
        }
        let mut out = Vec::with_capacity(incoming.len());
        for ev in incoming {
            if self.rng.chance(self.faults.event_loss_rate) {
                self.log.lost += 1;
                continue;
            }
            if self.faults.max_delay_us > 0 && self.rng.chance(self.faults.delay_rate) {
                let extra = self.rng.next_below(self.faults.max_delay_us + 1);
                let late = ev.time + SimDuration::from_micros(extra);
                self.pending.push(TimedEvent::new(late, ev.device, ev.event));
                self.log.delayed += 1;
                continue;
            }
            out.push(ev);
        }
        // Release delayed events that have become due and merge them into
        // time order with this poll's on-time events.
        self.pending.sort_by_key(|e| e.time);
        let due = self.pending.partition_point(|e| e.time <= now);
        out.extend(self.pending.drain(..due));
        out.sort_by_key(|e| e.time);
        out
    }

    fn is_finished(&self) -> bool {
        self.inner.is_finished() && self.pending.is_empty()
    }

    fn stats(&self) -> ReplayStats {
        self.inner.stats()
    }

    fn next_due(&self) -> Option<SimTime> {
        let held = self.pending.iter().map(|e| e.time).min();
        match (self.inner.next_due(), held) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_evdev::event::InputEvent;
    use interlag_evdev::replay::ReplayAgent;
    use interlag_evdev::trace::EventTrace;

    fn trace(n: u64) -> EventTrace {
        (0..n)
            .map(|i| TimedEvent::new(SimTime::from_millis(i * 10), 1, InputEvent::syn_report()))
            .collect()
    }

    fn faults(loss: f64, delay: f64, max_us: u64) -> ReplayFaults {
        ReplayFaults { event_loss_rate: loss, delay_rate: delay, max_delay_us: max_us }
    }

    fn drain<R: Replayer>(r: &mut R, until_ms: u64) -> Vec<TimedEvent> {
        let mut out = Vec::new();
        for ms in 0..=until_ms {
            out.extend(r.poll(SimTime::from_millis(ms)));
        }
        out
    }

    #[test]
    fn quiescent_wrapper_is_transparent() {
        let mut plain = ReplayAgent::new(trace(10));
        let mut wrapped = FaultyReplayer::new(
            ReplayAgent::new(trace(10)),
            faults(0.0, 0.0, 0),
            SplitMix64::new(1),
        );
        assert_eq!(drain(&mut wrapped, 200), drain(&mut plain, 200));
        assert!(wrapped.is_finished());
        assert_eq!(wrapped.log(), ReplayFaultLog::default());
    }

    #[test]
    fn total_loss_swallows_every_event() {
        let mut r = FaultyReplayer::new(
            ReplayAgent::new(trace(10)),
            faults(1.0, 0.0, 0),
            SplitMix64::new(2),
        );
        assert!(drain(&mut r, 200).is_empty());
        assert!(r.is_finished());
        assert_eq!(r.log().lost, 10);
    }

    #[test]
    fn delays_restamp_but_never_lose_events() {
        let mut r = FaultyReplayer::new(
            ReplayAgent::new(trace(10)),
            faults(0.0, 1.0, 5_000),
            SplitMix64::new(3),
        );
        let out = drain(&mut r, 200);
        assert_eq!(out.len(), 10, "delayed events must still all arrive");
        assert!(r.is_finished());
        assert_eq!(r.log().delayed, 10);
        // Output stays time-ordered and within the delay bound.
        for w in out.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for (i, ev) in out.iter().enumerate() {
            let intended = SimTime::from_millis(i as u64 * 10);
            assert!(ev.time >= intended);
            assert!(ev.time <= intended + SimDuration::from_micros(5_000));
        }
    }

    #[test]
    fn next_due_accounts_for_held_events() {
        let mut r = FaultyReplayer::new(
            ReplayAgent::new(trace(2)),
            faults(0.0, 1.0, 5_000),
            SplitMix64::new(4),
        );
        // Poll at the first event's time: it gets delayed and held.
        assert!(r.poll(SimTime::ZERO).is_empty());
        let due = r.next_due().expect("held event pending");
        assert!(due <= SimTime::from_micros(5_000));
        assert!(!r.is_finished());
    }

    #[test]
    fn fault_pattern_reproduces_from_the_stream_seed() {
        let run = |seed: u64| {
            let mut r = FaultyReplayer::new(
                ReplayAgent::new(trace(50)),
                faults(0.2, 0.2, 3_000),
                SplitMix64::new(seed),
            );
            drain(&mut r, 1_000)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
