//! Fault-rate configuration and deterministic stream derivation.
//!
//! Every fault draw in the crate comes from a [`SplitMix64`] stream
//! derived from `(seed, configuration, repetition, attempt, stage)`, so a
//! failure observed anywhere in a study is exactly reproducible — and so
//! a retried repetition sees a *different* but equally deterministic
//! fault pattern (backoff-free re-seeding).

use interlag_evdev::rng::SplitMix64;

/// Faults on the capture path (the [`CaptureLink`] boundary).
///
/// [`CaptureLink`]: interlag_video::capture::CaptureLink
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureFaults {
    /// Probability a frame is dropped (the previous frame is repeated, as
    /// a capture box holding its last good signal does).
    pub drop_rate: f64,
    /// Probability a frame is duplicated into the next slot.
    pub duplicate_rate: f64,
    /// Probability a frame arrives with corrupted pixels.
    pub corrupt_rate: f64,
    /// How many pixels a corrupted frame has flipped.
    pub corrupt_pixels: u32,
}

/// Faults on the replay path (the [`Replayer`] boundary).
///
/// [`Replayer`]: interlag_evdev::replay::Replayer
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayFaults {
    /// Probability an input event is lost in transit.
    pub event_loss_rate: f64,
    /// Probability an event is delayed by extra jitter.
    pub delay_rate: f64,
    /// Peak extra delay, microseconds (uniform in `[0, max]`).
    pub max_delay_us: u64,
}

/// Faults on the power-metering path (the activity-trace boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFaults {
    /// Probability a sample's busy time reads as zero (meter dropout).
    pub dropout_rate: f64,
    /// Probability a sample's busy time reads as fully busy (a spike).
    pub spike_rate: f64,
}

/// Faults on governor/DVFS transitions (the sysfs-write boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsFaults {
    /// Probability a requested OPP change is rejected and the previous
    /// frequency stays in force until the next decision.
    pub reject_rate: f64,
}

/// Wedge faults: a repetition whose governor path hangs in wall-clock
/// time, the failure mode the rep watchdog exists for.
///
/// Unlike the other fault families, a wedge does not perturb simulated
/// results — it stalls the *host* thread (as a livelocked kernel governor
/// stalls a real sweep), so without a watchdog the study never finishes.
/// It is therefore opt-in only: [`FaultConfig::uniform`] leaves it off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WedgeFaults {
    /// Probability one repetition attempt wedges, drawn once per attempt
    /// from the wedge stream.
    pub hang_rate: f64,
    /// Wall-clock stall per governor sample while wedged, milliseconds.
    pub stall_ms: u64,
}

impl WedgeFaults {
    /// No wedging.
    pub fn none() -> Self {
        WedgeFaults { hang_rate: 0.0, stall_ms: 0 }
    }
}

/// Complete fault-injection settings for one pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Root seed all fault streams derive from.
    pub seed: u64,
    /// Capture-path faults.
    pub capture: CaptureFaults,
    /// Replay-path faults.
    pub replay: ReplayFaults,
    /// Power-metering faults.
    pub power: PowerFaults,
    /// DVFS-transition faults.
    pub dvfs: DvfsFaults,
    /// Wall-clock wedge faults (watchdog fodder).
    pub wedge: WedgeFaults,
}

impl FaultConfig {
    /// All rates zero: wrappers become pass-throughs and the pipeline is
    /// bit-identical to running without them.
    pub fn quiescent(seed: u64) -> Self {
        FaultConfig {
            seed,
            capture: CaptureFaults {
                drop_rate: 0.0,
                duplicate_rate: 0.0,
                corrupt_rate: 0.0,
                corrupt_pixels: 0,
            },
            replay: ReplayFaults { event_loss_rate: 0.0, delay_rate: 0.0, max_delay_us: 0 },
            power: PowerFaults { dropout_rate: 0.0, spike_rate: 0.0 },
            dvfs: DvfsFaults { reject_rate: 0.0 },
            wedge: WedgeFaults::none(),
        }
    }

    /// Every per-stage fault fires with probability `rate`; magnitudes use
    /// chaos-test defaults (12 corrupted pixels, up to 2 ms extra delay).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            capture: CaptureFaults {
                drop_rate: rate,
                duplicate_rate: rate,
                corrupt_rate: rate,
                corrupt_pixels: 12,
            },
            replay: ReplayFaults { event_loss_rate: rate, delay_rate: rate, max_delay_us: 2_000 },
            power: PowerFaults { dropout_rate: rate, spike_rate: rate },
            dvfs: DvfsFaults { reject_rate: rate },
            // Wedges stall the host thread and need a watchdog to recover;
            // chaos sweeps that just want data-path noise must not hang.
            wedge: WedgeFaults::none(),
        }
    }

    /// `true` if every rate is zero — injection changes nothing.
    pub fn is_quiescent(&self) -> bool {
        self.capture.drop_rate == 0.0
            && self.capture.duplicate_rate == 0.0
            && self.capture.corrupt_rate == 0.0
            && self.replay.event_loss_rate == 0.0
            && self.replay.delay_rate == 0.0
            && self.power.dropout_rate == 0.0
            && self.power.spike_rate == 0.0
            && self.dvfs.reject_rate == 0.0
            && self.wedge.hang_rate == 0.0
    }
}

/// Per-stage RNG streams for one `(configuration, repetition, attempt)`.
///
/// Stages draw from disjoint streams so that, say, a dropped frame never
/// shifts which input event gets delayed — each stage's fault pattern is
/// a pure function of the derivation tuple.
#[derive(Debug, Clone)]
pub struct FaultStreams {
    /// Stream for [`CaptureFaults`].
    pub capture: SplitMix64,
    /// Stream for [`ReplayFaults`].
    pub replay: SplitMix64,
    /// Stream for [`PowerFaults`].
    pub power: SplitMix64,
    /// Stream for [`DvfsFaults`].
    pub dvfs: SplitMix64,
    /// Stream for [`WedgeFaults`].
    pub wedge: SplitMix64,
}

impl FaultStreams {
    /// Derives the four stage streams for one repetition attempt.
    pub fn derive(seed: u64, config: u64, rep: u64, attempt: u64) -> Self {
        let stage = |tag: u64| {
            let mut r = SplitMix64::new(seed);
            for part in [config, rep, attempt, tag] {
                r = SplitMix64::new(r.next_u64() ^ part.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            }
            r
        };
        FaultStreams {
            capture: stage(1),
            replay: stage(2),
            power: stage(3),
            dvfs: stage(4),
            wedge: stage(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_is_quiescent() {
        assert!(FaultConfig::quiescent(7).is_quiescent());
        assert!(!FaultConfig::uniform(7, 0.05).is_quiescent());
        assert!(FaultConfig::uniform(7, 0.0).is_quiescent());
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let mut a = FaultStreams::derive(1, 2, 3, 0);
        let mut b = FaultStreams::derive(1, 2, 3, 0);
        assert_eq!(a.capture.next_u64(), b.capture.next_u64());
        assert_eq!(a.replay.next_u64(), b.replay.next_u64());

        // Another attempt re-seeds every stream.
        let mut c = FaultStreams::derive(1, 2, 3, 1);
        assert_ne!(a.capture.next_u64(), c.capture.next_u64());
        // Stages do not share a stream.
        let mut d = FaultStreams::derive(1, 2, 3, 0);
        let (x, y) = (d.capture.next_u64(), d.replay.next_u64());
        assert_ne!(x, y);
    }
}
