//! Fault injection on the capture path.
//!
//! Wraps any [`CaptureLink`] and perturbs the frame stream the way a real
//! HDMI capture box misbehaves: dropped frames (the box repeats its last
//! good signal), duplicated frames (one frame latched into two slots) and
//! bit-flipped frames (transmission corruption). All draws come from the
//! stream handed in at construction, so the exact set of faulted frames is
//! a pure function of the derivation tuple.

use std::sync::Arc;

use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::SimTime;
use interlag_video::capture::CaptureLink;
use interlag_video::frame::FrameBuffer;

use crate::config::CaptureFaults;

/// Counts of capture faults actually injected during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaptureFaultLog {
    /// Frames replaced by a stale repeat of the previous frame.
    pub dropped: usize,
    /// Frames latched into the following slot as well.
    pub duplicated: usize,
    /// Frames delivered with flipped pixels.
    pub corrupted: usize,
}

/// A [`CaptureLink`] decorator injecting drop / duplicate / corrupt faults.
///
/// With all rates zero it is a strict pass-through: no RNG draws, no frame
/// copies — the wrapped link's output is returned untouched, which is what
/// keeps quiescent studies bit-identical to unwrapped ones.
#[derive(Debug)]
pub struct FaultyCapture<L> {
    inner: L,
    faults: CaptureFaults,
    rng: SplitMix64,
    /// Last frame delivered downstream; what a drop repeats.
    last: Option<Arc<FrameBuffer>>,
    /// A frame latched for duplication into the next slot.
    held: Option<Arc<FrameBuffer>>,
    log: CaptureFaultLog,
}

impl<L: CaptureLink> FaultyCapture<L> {
    /// Wraps `inner`, drawing fault decisions from `rng`.
    pub fn new(inner: L, faults: CaptureFaults, rng: SplitMix64) -> Self {
        FaultyCapture {
            inner,
            faults,
            rng,
            last: None,
            held: None,
            log: CaptureFaultLog::default(),
        }
    }

    /// The faults injected so far.
    pub fn log(&self) -> CaptureFaultLog {
        self.log
    }

    fn quiescent(&self) -> bool {
        self.faults.drop_rate == 0.0
            && self.faults.duplicate_rate == 0.0
            && self.faults.corrupt_rate == 0.0
    }
}

impl<L: CaptureLink> CaptureLink for FaultyCapture<L> {
    fn capture(&mut self, time: SimTime, screen: &FrameBuffer) -> Arc<FrameBuffer> {
        if self.quiescent() {
            return self.inner.capture(time, screen);
        }
        // A latched duplicate owns this slot outright; the live screen
        // content for this instant is simply never captured.
        if let Some(held) = self.held.take() {
            self.log.duplicated += 1;
            self.last = Some(held.clone());
            return held;
        }
        let live = self.inner.capture(time, screen);
        let frame = if self.rng.chance(self.faults.drop_rate) {
            self.log.dropped += 1;
            self.last.clone().unwrap_or_else(|| live.clone())
        } else if self.rng.chance(self.faults.corrupt_rate) && self.faults.corrupt_pixels > 0 {
            self.log.corrupted += 1;
            let mut buf = (*live).clone();
            let len = buf.pixels().len() as u64;
            for _ in 0..self.faults.corrupt_pixels {
                let i = self.rng.next_below(len) as usize;
                // Flip at least one bit so the pixel really changes.
                let flip = (self.rng.next_u64() & 0xff) as u8 | 0x01;
                buf.pixels_mut()[i] ^= flip;
            }
            Arc::new(buf)
        } else {
            live
        };
        if self.rng.chance(self.faults.duplicate_rate) {
            self.held = Some(frame.clone());
        }
        self.last = Some(frame.clone());
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_video::capture::HdmiCapture;

    fn screen(v: u8) -> FrameBuffer {
        let mut fb = FrameBuffer::new(8, 8);
        fb.fill(v);
        fb
    }

    fn always(drop: f64, dup: f64, corrupt: f64) -> CaptureFaults {
        CaptureFaults {
            drop_rate: drop,
            duplicate_rate: dup,
            corrupt_rate: corrupt,
            corrupt_pixels: 4,
        }
    }

    #[test]
    fn quiescent_wrapper_shares_the_inner_links_allocations() {
        let mut link =
            FaultyCapture::new(HdmiCapture::new(), always(0.0, 0.0, 0.0), SplitMix64::new(1));
        let s = screen(10);
        let a = link.capture(SimTime::ZERO, &s);
        let b = link.capture(SimTime::from_millis(33), &s);
        assert!(Arc::ptr_eq(&a, &b), "pass-through must preserve dedup");
        assert_eq!(link.log(), CaptureFaultLog::default());
    }

    #[test]
    fn drops_repeat_the_previous_frame() {
        let mut link =
            FaultyCapture::new(HdmiCapture::new(), always(1.0, 0.0, 0.0), SplitMix64::new(2));
        let first = link.capture(SimTime::ZERO, &screen(10));
        // Every subsequent frame is dropped, so the stale first frame
        // repeats no matter what the screen shows.
        let second = link.capture(SimTime::from_millis(33), &screen(200));
        assert_eq!(second.as_ref(), first.as_ref());
        assert!(link.log().dropped >= 1);
    }

    #[test]
    fn corruption_flips_a_bounded_number_of_pixels() {
        let mut link =
            FaultyCapture::new(HdmiCapture::new(), always(0.0, 0.0, 1.0), SplitMix64::new(3));
        let s = screen(128);
        let shot = link.capture(SimTime::ZERO, &s);
        let diff = shot.count_diff(&s, 0);
        assert!((1..=4).contains(&diff), "expected 1..=4 flipped pixels, got {diff}");
        assert_eq!(link.log().corrupted, 1);
    }

    #[test]
    fn duplicates_latch_into_the_next_slot() {
        let mut link =
            FaultyCapture::new(HdmiCapture::new(), always(0.0, 1.0, 0.0), SplitMix64::new(4));
        let a = link.capture(SimTime::ZERO, &screen(10));
        // The next capture returns the latched frame, not the new screen.
        let b = link.capture(SimTime::from_millis(33), &screen(200));
        assert_eq!(b.as_ref(), a.as_ref());
        assert_eq!(link.log().duplicated, 1);
    }

    #[test]
    fn fault_pattern_reproduces_from_the_stream_seed() {
        let shots = |seed: u64| {
            let mut link = FaultyCapture::new(
                HdmiCapture::new(),
                always(0.3, 0.3, 0.3),
                SplitMix64::new(seed),
            );
            (0..40u8)
                .map(|i| {
                    link.capture(SimTime::from_millis(i as u64 * 33), &screen(i)).as_ref().clone()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shots(77), shots(77));
        assert_ne!(shots(77), shots(78));
    }
}
