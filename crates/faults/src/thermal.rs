//! Deterministic thermal pressure on the DVFS path.
//!
//! The paper's testbed never throttled — one Krait core under a lab
//! bench. A big.LITTLE phone does: sustained residency at the top of the
//! big cluster's OPP table trips the thermal governor, which caps the
//! cluster's ceiling until it cools. [`ThermalEnvelope`] models that as a
//! [`Governor`] decorator in the same mould as
//! [`FaultyGovernor`](crate::dvfs::FaultyGovernor): the wrapped policy
//! runs unchanged, and the envelope vetoes its *output* while throttled.
//!
//! Unlike the rest of this crate the envelope draws **no randomness** at
//! all — thermal state is a pure function of the frequency trajectory, so
//! any run replays exactly. A deterministic integer heat account stands
//! in for die temperature: time spent at or above `hot_freq` accrues
//! heat one-for-one, cooler residency drains it `cool_rate` times as
//! fast, and the cap engages when the account reaches `budget`, releasing
//! only once it has fully drained (hysteresis, so the ceiling does not
//! flap at the trip point).
//!
//! A [`ThermalFaults::quiescent`] envelope is a strict pass-through — no
//! state, no clamping — so a thermally-off run stays bit-identical to one
//! without the wrapper, the crate-wide transparency rule.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// The thermal envelope's deterministic pressure parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThermalFaults {
    /// Whether the envelope is active at all; `false` is the quiescent
    /// strict pass-through.
    pub enabled: bool,
    /// Frequencies at or above this accrue heat.
    pub hot_freq: Frequency,
    /// Sustained hot residency that trips the cap.
    pub budget: SimDuration,
    /// How many times faster heat drains below `hot_freq` than it
    /// accrues at or above it.
    pub cool_rate: u32,
    /// The cluster's ceiling while throttled (quantized down onto the
    /// table in force).
    pub cap: Frequency,
}

impl ThermalFaults {
    /// The disabled envelope: a strict pass-through.
    pub fn quiescent() -> Self {
        ThermalFaults {
            enabled: false,
            hot_freq: Frequency::from_khz(u32::MAX),
            budget: SimDuration::ZERO,
            cool_rate: 1,
            cap: Frequency::from_khz(u32::MAX),
        }
    }

    /// A Snapdragon-class envelope for `table`: residency at the top two
    /// OPPs is hot, two sustained seconds trip the cap, the ceiling drops
    /// to the table's midpoint, and cooling runs twice as fast as
    /// heating.
    pub fn for_table(table: &OppTable) -> Self {
        let mid = table.opps()[table.len() / 2].freq;
        ThermalFaults {
            enabled: true,
            hot_freq: table.step_down(table.max_freq(), 1),
            budget: SimDuration::from_secs(2),
            cool_rate: 2,
            cap: mid,
        }
    }

    /// `true` when the envelope can never throttle.
    pub fn is_quiescent(&self) -> bool {
        !self.enabled
    }
}

/// A [`Governor`] decorator imposing the thermal envelope on the wrapped
/// policy's frequency decisions.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::{FixedGovernor, Governor, LoadSample};
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_faults::thermal::{ThermalEnvelope, ThermalFaults};
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut pinned = FixedGovernor::new(table.max_freq());
/// let mut enveloped = ThermalEnvelope::new(&mut pinned, ThermalFaults::for_table(&table));
/// enveloped.init(&table);
/// let window = SimDuration::from_millis(100);
/// let busy = LoadSample { busy: window, window };
/// // 2 s of max-frequency residency trips the cap.
/// let mut f = table.max_freq();
/// for i in 1..=25 {
///     f = enveloped.on_sample(SimTime::from_millis(100 * i), busy, &table);
/// }
/// assert!(f < table.max_freq());
/// assert!(enveloped.throttled());
/// ```
pub struct ThermalEnvelope<'a> {
    inner: &'a mut dyn Governor,
    faults: ThermalFaults,
    heat: SimDuration,
    last_seen: SimTime,
    last_freq: Frequency,
    throttled: bool,
    trips: u64,
}

impl<'a> ThermalEnvelope<'a> {
    /// Wraps `inner` under the given envelope.
    pub fn new(inner: &'a mut dyn Governor, faults: ThermalFaults) -> Self {
        ThermalEnvelope {
            inner,
            faults,
            heat: SimDuration::ZERO,
            last_seen: SimTime::ZERO,
            last_freq: Frequency::default(),
            throttled: false,
            trips: 0,
        }
    }

    /// Whether the cap is currently engaged.
    pub fn throttled(&self) -> bool {
        self.throttled
    }

    /// How many times the cap has engaged so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The heat account, for inspection in tests.
    pub fn heat(&self) -> SimDuration {
        self.heat
    }

    /// Accrues or drains heat for the time elapsed at `last_freq`.
    fn account(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_seen);
        self.last_seen = now;
        if self.last_freq >= self.faults.hot_freq {
            self.heat = (self.heat + elapsed).min(self.faults.budget);
        } else {
            let drained = SimDuration::from_micros(
                elapsed.as_micros().saturating_mul(u64::from(self.faults.cool_rate.max(1))),
            );
            self.heat = self.heat.saturating_sub(drained);
        }
    }

    /// Applies the cap to one requested frequency.
    fn admit(&mut self, want: Frequency, table: &OppTable) -> Frequency {
        if !self.throttled && self.heat >= self.faults.budget {
            self.throttled = true;
            self.trips += 1;
        } else if self.throttled && self.heat.is_zero() {
            self.throttled = false;
        }
        let admitted =
            if self.throttled { want.min(table.highest_at_most(self.faults.cap)) } else { want };
        self.last_freq = admitted;
        admitted
    }
}

impl Governor for ThermalEnvelope<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.heat = SimDuration::ZERO;
        self.last_seen = SimTime::ZERO;
        self.throttled = false;
        let f = self.inner.init(table);
        self.last_freq = f;
        f
    }

    fn sample_period(&self) -> SimDuration {
        self.inner.sample_period()
    }

    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let want = self.inner.on_sample(now, load, table);
        if self.faults.is_quiescent() {
            return want;
        }
        self.account(now);
        self.admit(want, table)
    }

    fn on_input(&mut self, now: SimTime, table: &OppTable) -> Option<Frequency> {
        let want = self.inner.on_input(now, table)?;
        if self.faults.is_quiescent() {
            return Some(want);
        }
        self.account(now);
        Some(self.admit(want, table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_device::dvfs::FixedGovernor;
    use interlag_governors::interactive::Interactive;

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    fn saturated(window_ms: u64) -> LoadSample {
        let window = SimDuration::from_millis(window_ms);
        LoadSample { busy: window, window }
    }

    #[test]
    fn quiescent_envelope_is_transparent() {
        let t = table();
        // Drive an interactive governor through a boost + sample sequence
        // twice — naked and wrapped — and require identical outputs.
        let drive = |g: &mut dyn Governor| {
            let mut out = vec![g.init(&t)];
            out.extend(g.on_input(SimTime::from_millis(5), &t));
            for i in 1..=200u64 {
                out.push(g.on_sample(SimTime::from_millis(20 * i), saturated(20), &t));
            }
            out
        };
        let mut naked = Interactive::for_table(&t);
        let baseline = drive(&mut naked);
        let mut inner = Interactive::for_table(&t);
        let mut wrapped = ThermalEnvelope::new(&mut inner, ThermalFaults::quiescent());
        assert_eq!(drive(&mut wrapped), baseline);
        assert_eq!(wrapped.trips(), 0);
        assert!(!wrapped.throttled());
    }

    #[test]
    fn sustained_hot_residency_caps_then_recovers() {
        let t = table();
        let faults = ThermalFaults::for_table(&t);
        let mut pinned = FixedGovernor::new(t.max_freq());
        let mut env = ThermalEnvelope::new(&mut pinned, faults);
        env.init(&t);

        // Heat up: 2 s at the max trips the cap.
        let mut f = t.max_freq();
        let mut ms = 0;
        while !env.throttled() {
            ms += 100;
            assert!(ms <= 2_200, "never tripped");
            f = env.on_sample(SimTime::from_millis(ms), saturated(100), &t);
        }
        assert_eq!(env.trips(), 1);
        assert_eq!(f, t.highest_at_most(faults.cap), "ceiling drops to the cap");

        // While capped the governor keeps asking for max and keeps being
        // refused; the capped residency is cool, so heat drains at
        // cool_rate and the cap releases after budget / cool_rate.
        let release_ms = ms + 2_000 / u64::from(faults.cool_rate);
        while env.throttled() {
            ms += 100;
            assert!(ms <= release_ms + 200, "never released");
            f = env.on_sample(SimTime::from_millis(ms), saturated(100), &t);
        }
        assert_eq!(f, t.max_freq(), "full ceiling restored after cooling");
    }

    #[test]
    fn cool_running_governors_never_trip() {
        let t = table();
        let mut pinned = FixedGovernor::new(Frequency::from_mhz(960));
        let mut env = ThermalEnvelope::new(&mut pinned, ThermalFaults::for_table(&t));
        env.init(&t);
        for i in 1..=600u64 {
            env.on_sample(SimTime::from_millis(100 * i), saturated(100), &t);
        }
        assert_eq!(env.trips(), 0);
        assert!(env.heat().is_zero());
    }

    #[test]
    fn hysteresis_holds_the_cap_through_the_trip_point() {
        // Right after tripping, heat is at budget; one cool window must
        // not release the cap (it releases only at zero).
        let t = table();
        let faults = ThermalFaults::for_table(&t);
        let mut pinned = FixedGovernor::new(t.max_freq());
        let mut env = ThermalEnvelope::new(&mut pinned, faults);
        env.init(&t);
        let mut ms = 0;
        while !env.throttled() {
            ms += 100;
            env.on_sample(SimTime::from_millis(ms), saturated(100), &t);
        }
        ms += 100;
        env.on_sample(SimTime::from_millis(ms), saturated(100), &t);
        assert!(env.throttled(), "cap must hold until fully drained");
        assert!(!env.heat().is_zero());
    }
}
