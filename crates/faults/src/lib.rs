//! # interlag-faults — deterministic fault injection for the pipeline
//!
//! The paper's measurement chain is long: a replay agent injects recorded
//! input (§II-B), the device renders, an HDMI capture box records frames
//! (§II-C), a power meter logs activity (§III-B), and a governor writes
//! frequencies through cpufreq. Every link can and does misbehave on real
//! hardware. This crate wraps each stage boundary with a seeded fault
//! injector so the rest of the pipeline can be hardened — and *tested* —
//! against exactly those failures:
//!
//! * [`FaultyCapture`] — dropped, duplicated and bit-flipped frames;
//! * [`FaultyReplayer`] — lost input events and bounded extra delay;
//! * [`PowerFaults::perturb`] — meter dropouts and spikes on the
//!   activity trace;
//! * [`FaultyGovernor`] — rejected OPP writes;
//! * [`ThermalEnvelope`] — the deterministic (RNG-free) thermal pressure
//!   family: sustained high-OPP residency caps a cluster's ceiling;
//! * [`transport`] — dropped/duplicated/truncated/delayed frames on the
//!   sharded-sweep agent↔supervisor link, plus scheduled agent sabotage
//!   (crash/wedge on the nth checkpoint, SIGKILL after the nth record);
//! * [`net`] — a seeded in-process TCP relay ([`ChaosProxy`]) injecting
//!   partitions, RST-style resets, delay, reordering, duplication and
//!   mid-frame truncation into the multi-machine sweep transport.
//!
//! Two properties make the injectors usable inside the study pipeline:
//!
//! 1. **Determinism.** All draws come from [`SplitMix64`] streams derived
//!    by [`FaultStreams::derive`] from `(seed, configuration, repetition,
//!    attempt)`, one disjoint stream per stage. Any observed failure
//!    replays exactly; a retried repetition re-derives with `attempt + 1`
//!    and sees a fresh, equally deterministic pattern.
//! 2. **Quiescent transparency.** With all rates zero every wrapper is a
//!    strict pass-through — no RNG draws, no copies — so a zero-fault
//!    study stays bit-identical to one run without the wrappers at all.
//!
//! [`SplitMix64`]: interlag_evdev::rng::SplitMix64
//! [`FaultyCapture`]: capture::FaultyCapture
//! [`FaultyReplayer`]: replay::FaultyReplayer
//! [`FaultyGovernor`]: dvfs::FaultyGovernor
//! [`PowerFaults::perturb`]: config::PowerFaults::perturb

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod config;
pub mod dvfs;
pub mod net;
pub mod power;
pub mod replay;
pub mod thermal;
pub mod transport;

pub use capture::{CaptureFaultLog, FaultyCapture};
pub use config::{
    CaptureFaults, DvfsFaults, FaultConfig, FaultStreams, PowerFaults, ReplayFaults, WedgeFaults,
};
pub use dvfs::{FaultyGovernor, WedgedGovernor};
pub use net::{ChaosProxy, NetFaultCounts, NetFaults};
pub use power::PowerFaultLog;
pub use replay::{FaultyReplayer, ReplayFaultLog};
pub use thermal::{ThermalEnvelope, ThermalFaults};
pub use transport::{AgentSabotage, FrameFate, FrameMangler, SabotageKind, TransportFaults};
