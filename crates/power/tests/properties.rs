//! Property-based tests of the power substrate: physical sanity of the
//! model, calibration, and energy accounting.

use proptest::prelude::*;

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::calibrate::{calibrate, CalibrationConfig};
use interlag_power::energy::{ActivitySample, ActivityTrace, EnergyMeter};
use interlag_power::model::PowerModel;
use interlag_power::opp::{Frequency, OppTable};

fn meter() -> EnergyMeter {
    let table = OppTable::snapdragon_8074();
    EnergyMeter::new(calibrate(&table, &PowerModel::krait_like(), &CalibrationConfig::default()))
}

/// Samples over a fixed 20 ms grid with bounded busy fractions.
fn arb_trace() -> impl Strategy<Value = ActivityTrace> {
    prop::collection::vec((0usize..14, 0u64..=20), 1..200).prop_map(|slots| {
        let freqs: Vec<Frequency> = OppTable::snapdragon_8074().frequencies().collect();
        let mut t = ActivityTrace::new();
        for (i, (fi, busy_ms)) in slots.into_iter().enumerate() {
            t.push(ActivitySample {
                start: SimTime::from_millis(i as u64 * 20),
                duration: SimDuration::from_millis(20),
                freq: freqs[fi],
                busy: SimDuration::from_millis(busy_ms),
            });
        }
        t
    })
}

proptest! {
    /// Dynamic energy is non-negative and zero exactly when nothing ran.
    #[test]
    fn energy_is_nonnegative_and_zero_iff_idle(trace in arb_trace()) {
        let report = meter().measure(&trace);
        prop_assert!(report.dynamic_mj >= 0.0);
        prop_assert_eq!(report.dynamic_mj == 0.0, trace.busy_time().is_zero());
        prop_assert!(report.idle_mj > 0.0);
        prop_assert!(report.total_mj() >= report.dynamic_mj);
    }

    /// Energy is additive over any time split of the trace.
    #[test]
    fn energy_is_additive_over_slices(trace in arb_trace(), cut_ms in 0u64..4_000) {
        let m = meter();
        let whole = m.measure(&trace).dynamic_mj;
        let cut = SimTime::from_millis(cut_ms);
        let end = SimTime::from_millis(1_000_000);
        let a = m.measure(&trace.slice(SimTime::ZERO, cut)).dynamic_mj;
        let b = m.measure(&trace.slice(cut, end)).dynamic_mj;
        prop_assert!((whole - (a + b)).abs() < 1e-6 * whole.max(1.0),
            "{whole} != {a} + {b}");
    }

    /// More busy time at the same frequency never costs less.
    #[test]
    fn energy_is_monotone_in_busy_time(fi in 0usize..14, busy_a in 0u64..=20, busy_b in 0u64..=20) {
        let freqs: Vec<Frequency> = OppTable::snapdragon_8074().frequencies().collect();
        let mk = |busy_ms: u64| {
            let mut t = ActivityTrace::new();
            t.push(ActivitySample {
                start: SimTime::ZERO,
                duration: SimDuration::from_millis(20),
                freq: freqs[fi],
                busy: SimDuration::from_millis(busy_ms),
            });
            t
        };
        let m = meter();
        let (lo, hi) = (busy_a.min(busy_b), busy_a.max(busy_b));
        prop_assert!(m.measure(&mk(hi)).dynamic_mj >= m.measure(&mk(lo)).dynamic_mj);
    }

    /// Calibration noise may flip the measured optimum to a neighbouring
    /// point (the true 0.88/0.96 GHz gap is ~0.3 %, below realistic meter
    /// noise), but the *energy cost* of the measured optimum stays within
    /// noise of the true optimum, and dynamic power stays monotone.
    #[test]
    fn calibration_is_robust_to_seeds(seed in proptest::num::u64::ANY) {
        let table = OppTable::snapdragon_8074();
        let cfg = CalibrationConfig { seed, ..Default::default() };
        let measured = calibrate(&table, &PowerModel::krait_like(), &cfg);
        let model = PowerModel::krait_like();
        let picked = measured.most_efficient_freq();
        let true_opt = model.most_efficient_freq(&table);
        let e_picked = model.energy_per_cycle_nj(table.opp_of(picked).expect("on table"));
        let e_true = model.energy_per_cycle_nj(table.opp_of(true_opt).expect("on table"));
        prop_assert!(
            e_picked <= e_true * 1.01,
            "picked {picked} costs {e_picked:.4} vs optimum {e_true:.4}"
        );
        let powers: Vec<f64> =
            table.frequencies().map(|f| measured.dynamic_power(f)).collect();
        for pair in powers.windows(2) {
            prop_assert!(pair[1] > pair[0] * 0.98, "dynamic power must rise with frequency");
        }
    }

    /// Frequency cycle arithmetic is self-consistent: executing for the
    /// computed time yields at least the requested cycles.
    #[test]
    fn time_for_covers_cycles(fi in 0usize..14, cycles in 1u64..10_000_000_000) {
        let freqs: Vec<Frequency> = OppTable::snapdragon_8074().frequencies().collect();
        let f = freqs[fi];
        let t = f.time_for(cycles);
        prop_assert!(f.cycles_in(t) >= cycles);
        // And not more than one microsecond's worth of slack.
        let slack = f.cycles_in(t) - cycles;
        prop_assert!(slack <= f.as_khz() as u64 / 1_000 + 1);
    }
}
