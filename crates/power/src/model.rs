//! The parametric CPU power model.
//!
//! The paper measures power directly; we generate it from the standard CMOS
//! decomposition — P_busy(f) = P_idle + P_active_base + C_eff · V(f)² · f —
//! with Krait-class voltages from the OPP table. The *active base* term
//! (uncore, caches, memory interface: power drawn whenever the core is not
//! idle, independent of frequency) is what creates the race-to-idle effect:
//! finishing faster spends less time paying it, so energy per cycle is
//! minimised at a mid-table frequency (0.96 GHz on this platform, as in the
//! paper) rather than at the slowest point.

use serde::{Deserialize, Serialize};

use crate::opp::{Frequency, Opp, OppTable};

/// Milliwatts, the model's power unit.
pub type Milliwatts = f64;

/// The parametric power model of a single core plus the uncore it drags
/// along while busy.
///
/// # Examples
///
/// ```
/// use interlag_power::model::PowerModel;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let model = PowerModel::krait_like();
/// let slow = model.busy_power(&table.opps()[0]);
/// let fast = model.busy_power(&table.opps()[13]);
/// assert!(fast > 4.0 * slow, "dynamic power grows superlinearly");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power drawn by the whole platform when the CPU idles (display and
    /// radios excluded), mW.
    pub idle_mw: Milliwatts,
    /// Extra power drawn whenever the core executes, independent of
    /// frequency (uncore/caches/memory), mW.
    pub active_base_mw: Milliwatts,
    /// Effective switched capacitance coefficient: dynamic power in mW per
    /// MHz per V².
    pub ceff_mw_per_mhz_v2: f64,
}

impl PowerModel {
    /// Parameters fitted to a Krait-400-class SoC with the energy-per-cycle
    /// curve the paper's Figure 12 implies: a shallow optimum at 0.96 GHz
    /// (race-to-idle), ~+14 % per cycle at 0.30 GHz, ~+74 % at 2.15 GHz.
    pub fn krait_like() -> Self {
        PowerModel { idle_mw: 25.0, active_base_mw: 41.0, ceff_mw_per_mhz_v2: 0.68 }
    }

    /// Power while executing at `opp` (idle + active base + dynamic), mW.
    pub fn busy_power(&self, opp: &Opp) -> Milliwatts {
        self.idle_mw + self.dynamic_power(opp)
    }

    /// Power above idle while executing at `opp`, mW. This is the quantity
    /// the paper derives from measurements by subtracting idle power.
    pub fn dynamic_power(&self, opp: &Opp) -> Milliwatts {
        let v = opp.voltage_v();
        self.active_base_mw + self.ceff_mw_per_mhz_v2 * opp.freq.as_mhz() * v * v
    }

    /// Energy above idle per cycle at `opp`, in nanojoules. The frequency
    /// minimising this is the race-to-idle optimum.
    pub fn energy_per_cycle_nj(&self, opp: &Opp) -> f64 {
        // mW / MHz = nJ per cycle.
        self.dynamic_power(opp) / opp.freq.as_mhz()
    }

    /// The table frequency with the lowest energy per cycle.
    pub fn most_efficient_freq(&self, table: &OppTable) -> Frequency {
        table
            .opps()
            .iter()
            .min_by(|a, b| {
                self.energy_per_cycle_nj(a)
                    .partial_cmp(&self.energy_per_cycle_nj(b))
                    .expect("power model produces finite values")
            })
            .expect("OPP tables are never empty")
            .freq
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::krait_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_at_0_96_ghz() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        assert_eq!(model.most_efficient_freq(&table), Frequency::from_khz(960_000));
    }

    #[test]
    fn energy_per_cycle_is_u_shaped() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        let e: Vec<f64> = table.opps().iter().map(|o| model.energy_per_cycle_nj(o)).collect();
        let opt = table.index_of(model.most_efficient_freq(&table)).unwrap();
        // Strictly decreasing into the optimum, strictly increasing after.
        for i in 1..=opt {
            assert!(e[i] < e[i - 1], "should fall towards the optimum at index {i}");
        }
        for i in opt + 1..e.len() {
            assert!(e[i] > e[i - 1], "should rise past the optimum at index {i}");
        }
    }

    #[test]
    fn top_frequency_costs_most_per_cycle_among_fixed() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        let top = model.energy_per_cycle_nj(&table.opps()[13]);
        for o in table.opps() {
            assert!(model.energy_per_cycle_nj(o) <= top);
        }
        // The paper's Figure 12 shape: the top frequency costs roughly
        // 1.5–2× the optimum per cycle.
        let opt =
            model.energy_per_cycle_nj(table.opp_of(model.most_efficient_freq(&table)).unwrap());
        let ratio = top / opt;
        assert!((1.4..2.1).contains(&ratio), "top/optimum ratio {ratio:.2} out of band");
    }

    #[test]
    fn busy_power_includes_idle_floor() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        for o in table.opps() {
            assert!(model.busy_power(o) > model.idle_mw);
            assert!((model.busy_power(o) - model.dynamic_power(o) - model.idle_mw).abs() < 1e-9);
        }
    }
}
