//! Power-model calibration: the paper's micro-benchmark procedure.
//!
//! §III-C of the paper: *"We execute a CPU intensive micro benchmark for
//! each core frequency and measure overall system power. We then subtract
//! the idle system power to get dynamic core power for each frequency."*
//!
//! The same procedure runs here against the simulated power rig: a busy
//! loop is "executed" at every OPP, the virtual power meter (the
//! [`PowerModel`] plus optional measurement noise) is sampled, idle power
//! is measured separately and subtracted, and the result is a
//! [`MeasuredPowerTable`] — the artifact every energy computation in the
//! experiments consumes. Calibration-vs-model agreement is itself a test.

use serde::{Deserialize, Serialize};

use interlag_evdev::rng::SplitMix64;

use crate::model::{Milliwatts, PowerModel};
use crate::opp::{Frequency, OppTable};

/// Per-frequency dynamic power derived from (simulated) measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPowerTable {
    entries: Vec<(Frequency, Milliwatts)>,
    idle_mw: Milliwatts,
}

impl MeasuredPowerTable {
    /// Builds a table from raw `(frequency, dynamic power)` pairs plus the
    /// measured idle power.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn new(mut entries: Vec<(Frequency, Milliwatts)>, idle_mw: Milliwatts) -> Self {
        assert!(!entries.is_empty(), "a power table needs at least one entry");
        entries.sort_by_key(|(f, _)| *f);
        MeasuredPowerTable { entries, idle_mw }
    }

    /// The measured idle power, mW.
    pub fn idle_mw(&self) -> Milliwatts {
        self.idle_mw
    }

    /// The `(frequency, dynamic power)` pairs, slowest first.
    pub fn entries(&self) -> &[(Frequency, Milliwatts)] {
        &self.entries
    }

    /// Dynamic power at `freq`.
    ///
    /// Exact table hits return the measured value; frequencies between
    /// points interpolate linearly (a governor may be asked about a
    /// frequency the rig never measured); beyond the ends the edge value
    /// is used.
    pub fn dynamic_power(&self, freq: Frequency) -> Milliwatts {
        match self.entries.binary_search_by_key(&freq, |(f, _)| *f) {
            Ok(i) => self.entries[i].1,
            Err(0) => self.entries[0].1,
            Err(i) if i == self.entries.len() => self.entries[i - 1].1,
            Err(i) => {
                let (f0, p0) = self.entries[i - 1];
                let (f1, p1) = self.entries[i];
                let t = (freq.as_khz() - f0.as_khz()) as f64 / (f1.as_khz() - f0.as_khz()) as f64;
                p0 + (p1 - p0) * t
            }
        }
    }

    /// Dynamic energy per cycle at `freq`, nanojoules.
    pub fn energy_per_cycle_nj(&self, freq: Frequency) -> f64 {
        self.dynamic_power(freq) / freq.as_mhz()
    }

    /// The measured frequency with the lowest dynamic energy per cycle —
    /// the frequency the oracle runs at outside interaction lags.
    pub fn most_efficient_freq(&self) -> Frequency {
        self.entries
            .iter()
            .map(|(f, _)| *f)
            .min_by(|a, b| {
                self.energy_per_cycle_nj(*a)
                    .partial_cmp(&self.energy_per_cycle_nj(*b))
                    .expect("finite energies")
            })
            .expect("tables are never empty")
    }
}

/// Configuration of the calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Relative 1-sigma noise of each power-meter sample (0.01 = 1 %).
    pub meter_noise_rel: f64,
    /// Samples averaged per operating point.
    pub samples_per_opp: u32,
    /// PRNG seed for the meter noise.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig { meter_noise_rel: 0.01, samples_per_opp: 16, seed: 0x0ca1_1b0a }
    }
}

/// Runs the micro-benchmark calibration against a virtual power rig backed
/// by `model`, producing the measured table.
///
/// # Examples
///
/// ```
/// use interlag_power::calibrate::{calibrate, CalibrationConfig};
/// use interlag_power::model::PowerModel;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let measured = calibrate(&table, &PowerModel::krait_like(), &CalibrationConfig::default());
/// assert_eq!(measured.entries().len(), 14);
/// assert_eq!(measured.most_efficient_freq().to_string(), "0.96 GHz");
/// ```
pub fn calibrate(
    table: &OppTable,
    model: &PowerModel,
    config: &CalibrationConfig,
) -> MeasuredPowerTable {
    let mut rng = SplitMix64::new(config.seed);
    let mut sample = |true_mw: Milliwatts| -> Milliwatts {
        let n = config.samples_per_opp.max(1);
        let mut acc = 0.0;
        for _ in 0..n {
            // Uniform noise with the requested relative sigma
            // (uniform(-a, a) has sigma a/sqrt(3)).
            let a = config.meter_noise_rel * 3f64.sqrt();
            let noise = (rng.next_f64() * 2.0 - 1.0) * a;
            acc += true_mw * (1.0 + noise);
        }
        acc / n as f64
    };

    // Step 1: measure the idle system.
    let idle_mw = sample(model.idle_mw);

    // Step 2: run the busy loop at every OPP, measure, subtract idle.
    let entries = table
        .opps()
        .iter()
        .map(|opp| (opp.freq, sample(model.busy_power(opp)) - idle_mw))
        .collect();

    MeasuredPowerTable::new(entries, idle_mw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured() -> (OppTable, PowerModel, MeasuredPowerTable) {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        let m = calibrate(&table, &model, &CalibrationConfig::default());
        (table, model, m)
    }

    #[test]
    fn calibration_recovers_the_model_within_noise() {
        let (table, model, m) = measured();
        for opp in table.opps() {
            let truth = model.dynamic_power(opp);
            let meas = m.dynamic_power(opp.freq);
            let rel = (meas - truth).abs() / truth;
            assert!(rel < 0.02, "{}: {:.1} vs {:.1} mW", opp.freq, meas, truth);
        }
    }

    #[test]
    fn calibration_is_deterministic() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        let a = calibrate(&table, &model, &CalibrationConfig::default());
        let b = calibrate(&table, &model, &CalibrationConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_calibration_is_exact() {
        let table = OppTable::snapdragon_8074();
        let model = PowerModel::krait_like();
        let cfg = CalibrationConfig { meter_noise_rel: 0.0, ..Default::default() };
        let m = calibrate(&table, &model, &cfg);
        for opp in table.opps() {
            assert!((m.dynamic_power(opp.freq) - model.dynamic_power(opp)).abs() < 1e-9);
        }
        assert!((m.idle_mw() - model.idle_mw).abs() < 1e-9);
    }

    #[test]
    fn interpolation_between_points() {
        let m = MeasuredPowerTable::new(
            vec![(Frequency::from_mhz(1_000), 100.0), (Frequency::from_mhz(2_000), 300.0)],
            10.0,
        );
        assert!((m.dynamic_power(Frequency::from_mhz(1_500)) - 200.0).abs() < 1e-9);
        // Clamped at the edges.
        assert!((m.dynamic_power(Frequency::from_mhz(500)) - 100.0).abs() < 1e-9);
        assert!((m.dynamic_power(Frequency::from_mhz(3_000)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn measured_optimum_matches_model_optimum() {
        let (table, model, m) = measured();
        assert_eq!(m.most_efficient_freq(), model.most_efficient_freq(&table));
    }
}
