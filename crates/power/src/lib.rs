//! # interlag-power — OPP tables, power modelling and energy metering
//!
//! The governor study of *Seeker et al., IISWC 2014* ranks configurations
//! by the energy they spend servicing the same replayed workload. This
//! crate reproduces the power side of that study:
//!
//! * [`opp`] — frequencies and the 14-point Snapdragon 8074 OPP table;
//! * [`model`] — the parametric CMOS power model with its race-to-idle
//!   optimum at 0.96 GHz;
//! * [`calibrate`] — the paper's micro-benchmark calibration procedure,
//!   producing the measured per-frequency dynamic-power table;
//! * [`energy`] — integrating frequency/load traces into energy reports.
//!
//! # Examples
//!
//! Calibrate the rig and meter a synthetic run:
//!
//! ```
//! use interlag_evdev::time::{SimDuration, SimTime};
//! use interlag_power::calibrate::{calibrate, CalibrationConfig};
//! use interlag_power::energy::{ActivitySample, ActivityTrace, EnergyMeter};
//! use interlag_power::model::PowerModel;
//! use interlag_power::opp::OppTable;
//!
//! let opps = OppTable::snapdragon_8074();
//! let measured = calibrate(&opps, &PowerModel::krait_like(), &CalibrationConfig::default());
//! let meter = EnergyMeter::new(measured);
//!
//! let mut trace = ActivityTrace::new();
//! trace.push(ActivitySample {
//!     start: SimTime::ZERO,
//!     duration: SimDuration::from_secs(1),
//!     freq: opps.max_freq(),
//!     busy: SimDuration::from_millis(400),
//! });
//! let report = meter.measure(&trace);
//! assert!(report.dynamic_mj > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrate;
pub mod energy;
pub mod model;
pub mod opp;

pub use calibrate::{calibrate, CalibrationConfig, MeasuredPowerTable};
pub use energy::{ActivitySample, ActivityTrace, EnergyMeter, EnergyReport};
pub use model::PowerModel;
pub use opp::{Frequency, Opp, OppTable};
