//! Operating performance points: the frequency/voltage steps of the CPU.
//!
//! The paper's platform is a Qualcomm Dragonboard APQ8074 (Snapdragon 8074,
//! Krait 400) exposing 14 frequency points from 0.30 GHz to 2.15 GHz. The
//! same table, with Krait-class voltages, is the default here; custom
//! tables are supported for ablations.

use std::fmt;

use serde::{Deserialize, Serialize};

use interlag_evdev::time::SimDuration;

/// A CPU clock frequency, stored in kHz as cpufreq does.
///
/// # Examples
///
/// ```
/// use interlag_power::opp::Frequency;
///
/// let f = Frequency::from_mhz(960);
/// assert_eq!(f.as_khz(), 960_000);
/// assert_eq!(f.to_string(), "0.96 GHz");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from kHz.
    pub const fn from_khz(khz: u32) -> Self {
        Frequency(khz)
    }

    /// Creates a frequency from MHz.
    pub const fn from_mhz(mhz: u32) -> Self {
        Frequency(mhz * 1_000)
    }

    /// The frequency in kHz.
    pub const fn as_khz(self) -> u32 {
        self.0
    }

    /// The frequency in MHz as a float.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The frequency in GHz as a float.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Cycles executed in `span` at this frequency.
    pub fn cycles_in(self, span: SimDuration) -> u64 {
        // khz × µs / 1000 = cycles, exact in integer arithmetic.
        self.0 as u64 * span.as_micros() / 1_000
    }

    /// The time needed to execute `cycles` at this frequency, rounded up
    /// to the next microsecond so work never finishes early.
    pub fn time_for(self, cycles: u64) -> SimDuration {
        let khz = self.0 as u64;
        SimDuration::from_micros((cycles * 1_000).div_ceil(khz))
    }
}

impl fmt::Display for Frequency {
    /// Formats like the paper's axis labels: `0.96 GHz`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GHz", self.as_ghz())
    }
}

/// One operating point: a frequency and the supply voltage it requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Opp {
    /// Clock frequency.
    pub freq: Frequency,
    /// Supply voltage in millivolts.
    pub voltage_mv: u32,
}

impl Opp {
    /// Creates an operating point.
    pub const fn new(khz: u32, voltage_mv: u32) -> Self {
        Opp { freq: Frequency::from_khz(khz), voltage_mv }
    }

    /// Supply voltage in volts.
    pub fn voltage_v(&self) -> f64 {
        self.voltage_mv as f64 / 1_000.0
    }
}

/// An ordered table of operating points.
///
/// # Examples
///
/// ```
/// use interlag_power::opp::{Frequency, OppTable};
///
/// let table = OppTable::snapdragon_8074();
/// assert_eq!(table.len(), 14);
/// assert_eq!(table.min_freq(), Frequency::from_mhz(300));
/// assert_eq!(table.max_freq(), Frequency::from_khz(2_150_400));
/// let f = table.lowest_at_least(Frequency::from_mhz(1_000)).unwrap();
/// assert_eq!(f, Frequency::from_khz(1_036_800));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OppTable {
    opps: Vec<Opp>,
}

impl OppTable {
    /// Creates a table from operating points, sorting them by frequency.
    ///
    /// # Panics
    ///
    /// Panics if `opps` is empty or contains duplicate frequencies.
    pub fn new(mut opps: Vec<Opp>) -> Self {
        assert!(!opps.is_empty(), "an OPP table needs at least one point");
        opps.sort_by_key(|o| o.freq);
        for pair in opps.windows(2) {
            assert_ne!(pair[0].freq, pair[1].freq, "duplicate OPP frequency {}", pair[0].freq);
        }
        OppTable { opps }
    }

    /// The 14-point Snapdragon 8074 table used throughout the paper, with
    /// Krait-400-class voltages.
    pub fn snapdragon_8074() -> Self {
        OppTable::new(vec![
            Opp::new(300_000, 800),
            Opp::new(422_400, 805),
            Opp::new(652_800, 812),
            Opp::new(729_600, 815),
            Opp::new(883_200, 820),
            Opp::new(960_000, 822),
            Opp::new(1_036_800, 840),
            Opp::new(1_190_400, 870),
            Opp::new(1_267_200, 890),
            Opp::new(1_497_600, 950),
            Opp::new(1_574_400, 970),
            Opp::new(1_728_000, 1_020),
            Opp::new(1_958_400, 1_080),
            Opp::new(2_150_400, 1_120),
        ])
    }

    /// An 8-point Cortex-A7-class LITTLE-cluster table, 0.30–1.19 GHz,
    /// for the heterogeneous big.LITTLE topology: the low half of the
    /// Snapdragon curve at efficiency-core voltages.
    pub fn cortex_a7_little() -> Self {
        OppTable::new(vec![
            Opp::new(300_000, 775),
            Opp::new(422_400, 780),
            Opp::new(652_800, 790),
            Opp::new(729_600, 795),
            Opp::new(883_200, 800),
            Opp::new(960_000, 805),
            Opp::new(1_036_800, 815),
            Opp::new(1_190_400, 830),
        ])
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// `false`: tables are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All points, slowest first.
    pub fn opps(&self) -> &[Opp] {
        &self.opps
    }

    /// All frequencies, slowest first.
    pub fn frequencies(&self) -> impl Iterator<Item = Frequency> + '_ {
        self.opps.iter().map(|o| o.freq)
    }

    /// The slowest frequency.
    pub fn min_freq(&self) -> Frequency {
        self.opps[0].freq
    }

    /// The fastest frequency.
    pub fn max_freq(&self) -> Frequency {
        self.opps[self.opps.len() - 1].freq
    }

    /// The operating point running at `freq`, if it is in the table.
    pub fn opp_of(&self, freq: Frequency) -> Option<&Opp> {
        self.opps.iter().find(|o| o.freq == freq)
    }

    /// Index of `freq` within the table.
    pub fn index_of(&self, freq: Frequency) -> Option<usize> {
        self.opps.iter().position(|o| o.freq == freq)
    }

    /// The point `steps` above `freq`, saturating at the fastest.
    pub fn step_up(&self, freq: Frequency, steps: usize) -> Frequency {
        match self.index_of(freq) {
            Some(i) => self.opps[(i + steps).min(self.opps.len() - 1)].freq,
            None => self.max_freq(),
        }
    }

    /// The point `steps` below `freq`, saturating at the slowest.
    pub fn step_down(&self, freq: Frequency, steps: usize) -> Frequency {
        match self.index_of(freq) {
            Some(i) => self.opps[i.saturating_sub(steps)].freq,
            None => self.min_freq(),
        }
    }

    /// The slowest frequency that is at least `target`, or `None` if even
    /// the fastest point is below it.
    pub fn lowest_at_least(&self, target: Frequency) -> Option<Frequency> {
        self.opps.iter().map(|o| o.freq).find(|f| *f >= target)
    }

    /// The fastest frequency that is at most `target`; falls back to the
    /// slowest point if `target` is below the table.
    pub fn highest_at_most(&self, target: Frequency) -> Frequency {
        self.opps.iter().map(|o| o.freq).rfind(|f| *f <= target).unwrap_or_else(|| self.min_freq())
    }

    /// Clamps an arbitrary frequency onto the nearest table entry at or
    /// above it (cpufreq's `CPUFREQ_RELATION_L`).
    pub fn quantize_up(&self, target: Frequency) -> Frequency {
        self.lowest_at_least(target).unwrap_or_else(|| self.max_freq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapdragon_table_matches_paper_labels() {
        let t = OppTable::snapdragon_8074();
        let labels: Vec<String> = t.frequencies().map(|f| f.to_string()).collect();
        assert_eq!(
            labels,
            [
                "0.30 GHz", "0.42 GHz", "0.65 GHz", "0.73 GHz", "0.88 GHz", "0.96 GHz", "1.04 GHz",
                "1.19 GHz", "1.27 GHz", "1.50 GHz", "1.57 GHz", "1.73 GHz", "1.96 GHz", "2.15 GHz"
            ]
        );
    }

    #[test]
    fn voltages_rise_with_frequency() {
        let t = OppTable::snapdragon_8074();
        for pair in t.opps().windows(2) {
            assert!(pair[0].voltage_mv <= pair[1].voltage_mv);
        }
    }

    #[test]
    fn cycles_and_time_roundtrip() {
        let f = Frequency::from_mhz(960);
        let d = SimDuration::from_millis(10);
        let cycles = f.cycles_in(d);
        assert_eq!(cycles, 9_600_000);
        assert_eq!(f.time_for(cycles), d);
        // time_for rounds up.
        assert_eq!(Frequency::from_khz(1_000).time_for(1), SimDuration::from_micros(1));
    }

    #[test]
    fn stepping_saturates() {
        let t = OppTable::snapdragon_8074();
        assert_eq!(t.step_down(t.min_freq(), 3), t.min_freq());
        assert_eq!(t.step_up(t.max_freq(), 1), t.max_freq());
        assert_eq!(t.step_up(t.min_freq(), 1), Frequency::from_khz(422_400));
        // Unknown frequency saturates to the extremes.
        assert_eq!(t.step_up(Frequency::from_mhz(5_000), 1), t.max_freq());
        assert_eq!(t.step_down(Frequency::from_mhz(5_000), 1), t.min_freq());
    }

    #[test]
    fn quantization() {
        let t = OppTable::snapdragon_8074();
        assert_eq!(t.quantize_up(Frequency::from_mhz(1)), t.min_freq());
        assert_eq!(t.quantize_up(Frequency::from_mhz(2_149)), t.max_freq());
        assert_eq!(t.quantize_up(Frequency::from_mhz(9_999)), t.max_freq());
        assert_eq!(t.highest_at_most(Frequency::from_mhz(1_000)), Frequency::from_khz(960_000));
        assert_eq!(t.highest_at_most(Frequency::from_mhz(1)), t.min_freq());
        assert_eq!(t.lowest_at_least(Frequency::from_mhz(9_999)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate OPP")]
    fn duplicate_frequencies_rejected() {
        OppTable::new(vec![Opp::new(1_000, 800), Opp::new(1_000, 900)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_table_rejected() {
        OppTable::new(Vec::new());
    }
}
