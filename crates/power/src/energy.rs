//! Energy accounting over frequency/load traces.
//!
//! During every workload execution the device logs which frequency the
//! core ran at and how much of each interval it was busy (§III-B: *"we
//! collect frequency and CPU load traces in the background for each
//! run"*). The [`EnergyMeter`] integrates such an [`ActivityTrace`]
//! against a [`MeasuredPowerTable`] to produce the energy numbers of
//! Figures 12–14. Following the paper, the headline quantity is *dynamic*
//! energy — busy power minus idle power — because idle platform power is
//! identical across configurations and would only compress the ratios.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};

use crate::calibrate::MeasuredPowerTable;
use crate::opp::Frequency;

/// One homogeneous interval of CPU activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivitySample {
    /// Interval start.
    pub start: SimTime,
    /// Interval length.
    pub duration: SimDuration,
    /// Frequency the core was set to.
    pub freq: Frequency,
    /// Time within the interval the core actually executed.
    pub busy: SimDuration,
}

/// A time-ordered log of [`ActivitySample`]s covering a whole execution.
///
/// Adjacent samples with the same frequency are merged on push, so a
/// 10-minute run compresses to a few thousand entries.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityTrace {
    samples: Vec<ActivitySample>,
}

impl ActivityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ActivityTrace::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample overlaps the previous one, or if `busy`
    /// exceeds `duration`.
    pub fn push(&mut self, sample: ActivitySample) {
        assert!(
            sample.busy <= sample.duration,
            "busy time {} exceeds interval {}",
            sample.busy,
            sample.duration
        );
        if let Some(last) = self.samples.last_mut() {
            let last_end = last.start + last.duration;
            assert!(
                sample.start >= last_end,
                "activity samples must not overlap ({} < {})",
                sample.start,
                last_end
            );
            // Merge contiguous same-frequency samples.
            if sample.start == last_end && sample.freq == last.freq {
                last.duration += sample.duration;
                last.busy += sample.busy;
                return;
            }
        }
        self.samples.push(sample);
    }

    /// The (merged) samples in order.
    pub fn samples(&self) -> &[ActivitySample] {
        &self.samples
    }

    /// Total covered time.
    pub fn total_duration(&self) -> SimDuration {
        self.samples.iter().map(|s| s.duration).sum()
    }

    /// Total busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.samples.iter().map(|s| s.busy).sum()
    }

    /// Busy time per frequency, slowest first.
    pub fn busy_by_freq(&self) -> Vec<(Frequency, SimDuration)> {
        let mut map: BTreeMap<Frequency, SimDuration> = BTreeMap::new();
        for s in &self.samples {
            *map.entry(s.freq).or_default() += s.busy;
        }
        map.into_iter().collect()
    }

    /// The frequency set at `time`, if the trace covers it.
    pub fn freq_at(&self, time: SimTime) -> Option<Frequency> {
        let i = self.samples.partition_point(|s| s.start <= time);
        let s = &self.samples[..i].last()?;
        (time < s.start + s.duration).then_some(s.freq)
    }

    /// Restricts the trace to `[from, to)`, splitting boundary samples
    /// proportionally (busy time is assumed uniform within a sample).
    pub fn slice(&self, from: SimTime, to: SimTime) -> ActivityTrace {
        let mut out = ActivityTrace::new();
        for s in &self.samples {
            let s_end = s.start + s.duration;
            let lo = s.start.max(from);
            let hi = s_end.min(to);
            if lo >= hi {
                continue;
            }
            let part = hi - lo;
            let busy_part = if s.duration.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(
                    s.busy.as_micros() * part.as_micros() / s.duration.as_micros(),
                )
            };
            out.push(ActivitySample { start: lo, duration: part, freq: s.freq, busy: busy_part });
        }
        out
    }
}

/// Energy totals of one execution, in millijoules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic (above-idle) energy: the paper's headline quantity.
    pub dynamic_mj: f64,
    /// Idle-floor energy over the whole span.
    pub idle_mj: f64,
    /// Dynamic energy broken down by frequency, slowest first.
    pub by_freq: Vec<(Frequency, f64)>,
}

impl EnergyReport {
    /// Dynamic plus idle energy.
    pub fn total_mj(&self) -> f64 {
        self.dynamic_mj + self.idle_mj
    }

    /// Dynamic energy in joules.
    pub fn dynamic_j(&self) -> f64 {
        self.dynamic_mj / 1_000.0
    }
}

/// Integrates activity traces against a measured power table.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    table: MeasuredPowerTable,
}

impl EnergyMeter {
    /// Creates a meter using `table` for power lookups.
    pub fn new(table: MeasuredPowerTable) -> Self {
        EnergyMeter { table }
    }

    /// The power table in use.
    pub fn table(&self) -> &MeasuredPowerTable {
        &self.table
    }

    /// Computes the energy of one execution.
    pub fn measure(&self, trace: &ActivityTrace) -> EnergyReport {
        let mut by_freq: BTreeMap<Frequency, f64> = BTreeMap::new();
        let mut dynamic_mj = 0.0;
        for s in trace.samples() {
            let p = self.table.dynamic_power(s.freq); // mW
            let e = p * s.busy.as_secs_f64(); // mW·s = mJ
            dynamic_mj += e;
            *by_freq.entry(s.freq).or_default() += e;
        }
        let idle_mj = self.table.idle_mw() * trace.total_duration().as_secs_f64();
        EnergyReport { dynamic_mj, idle_mj, by_freq: by_freq.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_table() -> MeasuredPowerTable {
        MeasuredPowerTable::new(
            vec![(Frequency::from_mhz(300), 300.0), (Frequency::from_mhz(1_000), 1_000.0)],
            50.0,
        )
    }

    fn sample(start_ms: u64, dur_ms: u64, mhz: u32, busy_ms: u64) -> ActivitySample {
        ActivitySample {
            start: SimTime::from_millis(start_ms),
            duration: SimDuration::from_millis(dur_ms),
            freq: Frequency::from_mhz(mhz),
            busy: SimDuration::from_millis(busy_ms),
        }
    }

    #[test]
    fn merging_contiguous_same_freq() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 300, 5));
        t.push(sample(10, 10, 300, 10));
        t.push(sample(20, 10, 1_000, 2));
        assert_eq!(t.samples().len(), 2);
        assert_eq!(t.total_duration(), SimDuration::from_millis(30));
        assert_eq!(t.busy_time(), SimDuration::from_millis(17));
    }

    #[test]
    fn gaps_prevent_merging() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 300, 5));
        t.push(sample(20, 10, 300, 5));
        assert_eq!(t.samples().len(), 2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlap_rejected() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 300, 5));
        t.push(sample(5, 10, 300, 5));
    }

    #[test]
    #[should_panic(expected = "busy time")]
    fn busy_beyond_duration_rejected() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 300, 11));
    }

    #[test]
    fn energy_integration() {
        let mut t = ActivityTrace::new();
        // 1 s fully busy at 1 GHz (1 000 mW) = 1 000 mJ dynamic.
        t.push(sample(0, 1_000, 1_000, 1_000));
        // 1 s idle at 300 MHz: no dynamic energy.
        t.push(sample(1_000, 1_000, 300, 0));
        let meter = EnergyMeter::new(flat_table());
        let report = meter.measure(&t);
        assert!((report.dynamic_mj - 1_000.0).abs() < 1e-9);
        // Idle floor: 50 mW × 2 s = 100 mJ.
        assert!((report.idle_mj - 100.0).abs() < 1e-9);
        assert!((report.total_mj() - 1_100.0).abs() < 1e-9);
        assert_eq!(report.by_freq.len(), 2);
        assert!((report.by_freq[0].1 - 0.0).abs() < 1e-9);
    }

    #[test]
    fn freq_at_lookup() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 300, 0));
        t.push(sample(10, 10, 1_000, 0));
        assert_eq!(t.freq_at(SimTime::from_millis(5)), Some(Frequency::from_mhz(300)));
        assert_eq!(t.freq_at(SimTime::from_millis(10)), Some(Frequency::from_mhz(1_000)));
        assert_eq!(t.freq_at(SimTime::from_millis(25)), None);
    }

    #[test]
    fn slice_splits_proportionally() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 100, 300, 50));
        let s = t.slice(SimTime::from_millis(25), SimTime::from_millis(75));
        assert_eq!(s.total_duration(), SimDuration::from_millis(50));
        assert_eq!(s.busy_time(), SimDuration::from_millis(25));
        assert_eq!(s.samples()[0].start, SimTime::from_millis(25));
    }

    #[test]
    fn busy_by_freq_accumulates() {
        let mut t = ActivityTrace::new();
        t.push(sample(0, 10, 1_000, 4));
        t.push(sample(10, 10, 300, 3));
        t.push(sample(30, 10, 1_000, 2));
        let by = t.busy_by_freq();
        assert_eq!(by[0], (Frequency::from_mhz(300), SimDuration::from_millis(3)));
        assert_eq!(by[1], (Frequency::from_mhz(1_000), SimDuration::from_millis(6)));
    }
}
