//! How the supervisor runs agents: child processes or threads.
//!
//! A [`Transport`] turns a [`ShardTask`] into a running agent and a
//! stream of tagged [`AgentEvent`]s on a channel the supervisor owns.
//! Two implementations share one receive pipeline (mangle → reframe →
//! parse, in [`LinePump`]):
//!
//! * [`ProcessTransport`] — the real thing: spawns `interlag agent`
//!   child processes with piped stdout, so agent crashes are real
//!   `abort()`s and kills are real `SIGKILL`s;
//! * [`ThreadTransport`] — the same agent entry point on an in-process
//!   thread writing into a channel, for fast deterministic chaos tests
//!   (death is a caught panic, kill is a [`KillSwitch`]).
//!
//! Both apply [`TransportFaults`] *between* the agent's clean framed
//! output and the supervisor's [`FrameReader`], so dropped, duplicated,
//! truncated and delayed frames exercise the real resynchronisation
//! path, not a simulation of it.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use interlag_core::experiment::{LabConfig, StudyScope, SweepStage};
use interlag_faults::{AgentSabotage, FrameMangler, SabotageKind, TransportFaults};
use interlag_workloads::gen::Workload;

use crate::agent::{run_agent, stage_name, AgentConfig, KillSwitch};
use crate::wire::{FrameReader, WireMsg};

/// Identity of one dispatch attempt, tagged onto every event it emits so
/// stale attempts (killed stragglers, zombies past their watchdog) can
/// never impersonate their replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttemptKey {
    /// The wave.
    pub stage: SweepStage,
    /// The shard within the wave.
    pub shard: u32,
    /// The dispatch attempt (0 = first).
    pub attempt: u32,
}

/// One unit of dispatch: a shard scope, which attempt this is, and the
/// attempt's own journal file (pre-seeded by the supervisor with the
/// valid prefix of its predecessor, so paid-for work replays).
#[derive(Debug, Clone)]
pub struct ShardTask {
    /// The shard of the grid the agent must sweep.
    pub scope: StudyScope,
    /// The dispatch attempt (0 = first).
    pub attempt: u32,
    /// The attempt's private shard journal path.
    pub journal_path: PathBuf,
}

impl ShardTask {
    /// The event tag for this dispatch.
    pub fn key(&self) -> AttemptKey {
        AttemptKey { stage: self.scope.stage, shard: self.scope.shard, attempt: self.attempt }
    }
}

/// What the supervisor hears from one attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentEvent {
    /// A checksum-valid protocol message.
    Msg(WireMsg),
    /// One damaged frame was skipped by the reader (counted as
    /// quarantined wire data).
    Garbage,
    /// The agent is gone and its event stream is complete. `clean` is
    /// `true` only for a voluntary, successful exit.
    Exited {
        /// Did the agent exit of its own accord with success status?
        clean: bool,
    },
}

/// A handle to one running attempt. Dropping it does *not* kill the
/// agent — the supervisor kills explicitly (watchdogs, straggler losers)
/// and otherwise lets agents finish.
pub struct RunningShard {
    kill: Box<dyn FnMut() + Send>,
}

impl RunningShard {
    /// Kills the attempt: `SIGKILL` for a child process, the
    /// [`KillSwitch`] for a thread. Idempotent; the attempt's
    /// [`AgentEvent::Exited`] still arrives afterwards.
    pub fn kill(&mut self) {
        (self.kill)();
    }

    /// Wraps a kill action (for sibling transports like
    /// [`TcpTransport`](crate::tcp::TcpTransport)).
    pub(crate) fn from_fn(kill: impl FnMut() + Send + 'static) -> Self {
        RunningShard { kill: Box::new(kill) }
    }
}

impl std::fmt::Debug for RunningShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningShard").finish_non_exhaustive()
    }
}

/// A way of running agents.
pub trait Transport {
    /// Starts one attempt; its events arrive on `events` tagged with
    /// [`ShardTask::key`], ending with exactly one [`AgentEvent::Exited`].
    fn dispatch(
        &mut self,
        task: &ShardTask,
        events: Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<RunningShard>;
}

/// The shared receive pipeline: one *clean* frame (a whole line as the
/// agent wrote it) goes through the fault mangler, the mangled bytes
/// through the resynchronising [`FrameReader`], and every resulting
/// message out to the supervisor.
struct LinePump {
    key: AttemptKey,
    mangler: Option<FrameMangler>,
    reader: FrameReader,
    /// Per-frame ceiling on an injected delay sleep. The pump serves
    /// *all* of an attempt's frames — heartbeats included — from one
    /// thread, so an unbounded mangler delay would stall every later
    /// frame and could spuriously trip the supervisor's heartbeat
    /// watchdog for an agent that is alive and beating. Transports pass
    /// the heartbeat period here: the watchdog budget is always several
    /// periods (the CLI enforces `>= 4x`), so a capped sleep consumes at
    /// most a fraction of the remaining budget and the next (possibly
    /// heartbeat) frame always lands before the deadline.
    delay_cap: Duration,
    garbage_sent: u64,
    checkpoints: u32,
}

impl LinePump {
    fn new(key: AttemptKey, faults: TransportFaults, fault_seed: u64, delay_cap: Duration) -> Self {
        let mangler = if faults.is_quiescent() {
            None
        } else {
            Some(FrameMangler::new(faults, fault_seed, key.shard as u64, key.attempt as u64))
        };
        LinePump {
            key,
            mangler,
            reader: FrameReader::new(),
            delay_cap,
            garbage_sent: 0,
            checkpoints: 0,
        }
    }

    /// Feeds one clean frame; returns checkpoint frames seen so far (the
    /// trigger for [`SabotageKind::KillAfterRecords`]).
    fn feed(&mut self, line: &[u8], events: &Sender<(AttemptKey, AgentEvent)>) -> u32 {
        let (bytes, delay) = match &mut self.mangler {
            Some(m) => m.mangle(line),
            None => (line.to_vec(), Duration::ZERO),
        };
        if !delay.is_zero() {
            std::thread::sleep(delay.min(self.delay_cap));
        }
        for msg in self.reader.push(&bytes) {
            if matches!(msg, WireMsg::Checkpoint { .. }) {
                self.checkpoints += 1;
            }
            let _ = events.send((self.key, AgentEvent::Msg(msg)));
        }
        while self.garbage_sent < self.reader.garbage() {
            self.garbage_sent += 1;
            let _ = events.send((self.key, AgentEvent::Garbage));
        }
        self.checkpoints
    }
}

/// Picks the sabotage scheduled for this exact `(shard, attempt)`, if
/// any. Sabotage is stage-blind: a schedule entry strikes whichever wave
/// dispatches that shard/attempt pair (chaos tests pick checkpoint
/// numbers only the intended wave can reach).
fn scheduled(sabotage: &[AgentSabotage], task: &ShardTask) -> Option<SabotageKind> {
    sabotage
        .iter()
        .find(|s| s.shard == task.scope.shard && s.attempt == task.attempt)
        .map(|s| s.kind)
}

/// The supervisor-side half of a sabotage schedule: at which received
/// checkpoint frame to kill the agent from the outside.
fn kill_after(kind: Option<SabotageKind>) -> Option<u32> {
    match kind {
        Some(SabotageKind::KillAfterRecords(n)) => Some(n),
        _ => None,
    }
}

/// The agent-side half: the `--sabotage` flag value for the child, or
/// the [`AgentConfig::sabotage`] for a thread.
fn agent_side(kind: Option<SabotageKind>) -> Option<SabotageKind> {
    match kind {
        Some(SabotageKind::KillAfterRecords(_)) | None => None,
        other => other,
    }
}

/// Formats an agent-side sabotage as the `interlag agent --sabotage`
/// flag value (`crash@N`, `wedge@N`, `tear@N`).
pub fn sabotage_flag(kind: SabotageKind) -> Option<String> {
    match kind {
        SabotageKind::CrashAtCheckpoint(n) => Some(format!("crash@{n}")),
        SabotageKind::WedgeAtCheckpoint(n) => Some(format!("wedge@{n}")),
        SabotageKind::TearJournal(n) => Some(format!("tear@{n}")),
        SabotageKind::KillAfterRecords(_) => None,
    }
}

/// Runs agents as `interlag agent` child processes over piped stdio.
#[derive(Debug, Clone)]
pub struct ProcessTransport {
    /// The `interlag` binary to spawn.
    pub exe: PathBuf,
    /// The dataset name the agent should sweep (must resolve to the same
    /// workload the supervisor fingerprinted).
    pub dataset: String,
    /// Repetitions per configuration (ditto).
    pub reps: u32,
    /// Heartbeat period to ask agents for.
    pub heartbeat: Duration,
    /// Wire faults injected between child stdout and the supervisor.
    pub faults: TransportFaults,
    /// Seed for the per-attempt fault streams.
    pub fault_seed: u64,
    /// Scheduled agent failures for chaos runs.
    pub sabotage: Vec<AgentSabotage>,
    /// Extra arguments appended to every agent invocation (matrix
    /// bindings like `--jitter-us N` that must reach the agent's lab
    /// configuration for its fingerprint to match the supervisor's).
    pub extra_args: Vec<String>,
}

impl Transport for ProcessTransport {
    fn dispatch(
        &mut self,
        task: &ShardTask,
        events: Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<RunningShard> {
        let key = task.key();
        let kind = scheduled(&self.sabotage, task);
        let mut cmd = Command::new(&self.exe);
        cmd.arg("agent")
            .arg(&self.dataset)
            .args(["-r", &self.reps.to_string()])
            .args(["--shard", &task.scope.shard.to_string()])
            .args(["--of", &task.scope.of.to_string()])
            .args(["--stage", stage_name(task.scope.stage)])
            .arg("--journal")
            .arg(&task.journal_path)
            .args(["--heartbeat-ms", &self.heartbeat.as_millis().to_string()])
            .args(&self.extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(flag) = agent_side(kind).and_then(sabotage_flag) {
            cmd.args(["--sabotage", &flag]);
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let child = Arc::new(Mutex::new(child));

        let kill_handle = {
            let child = Arc::clone(&child);
            move || {
                if let Ok(mut c) = child.lock() {
                    let _ = c.kill();
                }
            }
        };
        let reader_kill = kill_handle.clone();
        let kill_at = kill_after(kind);
        let faults = self.faults;
        let fault_seed = self.fault_seed;
        let delay_cap = self.heartbeat;
        std::thread::spawn(move || {
            let mut pump = LinePump::new(key, faults, fault_seed, delay_cap);
            let mut reader = BufReader::new(stdout);
            let mut killed = false;
            let mut line = Vec::new();
            loop {
                line.clear();
                match reader.read_until(b'\n', &mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let seen = pump.feed(&line, &events);
                        if let Some(at) = kill_at {
                            if !killed && seen >= at {
                                // A kill aligned to a checkpoint
                                // boundary, from the outside.
                                reader_kill();
                                killed = true;
                            }
                        }
                    }
                }
            }
            // Stdout is closed, so the child is exiting (or already
            // gone): wait() cannot block against a later kill().
            let clean = child
                .lock()
                .ok()
                .and_then(|mut c| c.wait().ok())
                .is_some_and(|status| status.success());
            let _ = events.send((key, AgentEvent::Exited { clean }));
        });

        Ok(RunningShard { kill: Box::new(kill_handle) })
    }
}

/// A `Write` that ships each write (one framed line, the way the agent
/// writes) down a channel. Send failures are swallowed — a gone reader
/// must not kill a healthy agent, mirroring the pipe semantics.
struct ChannelWriter(Sender<Vec<u8>>);

impl Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let _ = self.0.send(buf.to_vec());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs agents on in-process threads: the same [`run_agent`] entry
/// point, death by caught panic, kill by [`KillSwitch`]. The lab is
/// forced to `workers = 1` so a crashing repetition unwinds the agent
/// thread directly instead of poisoning a worker pool.
#[derive(Debug, Clone)]
pub struct ThreadTransport {
    /// The workload to sweep.
    pub workload: Workload,
    /// The lab configuration agents run under.
    pub lab: LabConfig,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Wire faults injected between agent writes and the supervisor.
    pub faults: TransportFaults,
    /// Seed for the per-attempt fault streams.
    pub fault_seed: u64,
    /// Scheduled agent failures for chaos runs.
    pub sabotage: Vec<AgentSabotage>,
}

impl Transport for ThreadTransport {
    fn dispatch(
        &mut self,
        task: &ShardTask,
        events: Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<RunningShard> {
        let key = task.key();
        let kind = scheduled(&self.sabotage, task);
        let kill = Arc::new(KillSwitch::new());
        let clean = Arc::new(AtomicBool::new(false));
        let (byte_tx, byte_rx) = std::sync::mpsc::channel::<Vec<u8>>();

        let mut lab = self.lab.clone();
        lab.workers = 1;
        let cfg = AgentConfig {
            workload: self.workload.clone(),
            lab,
            scope: task.scope,
            journal_path: task.journal_path.clone(),
            heartbeat: self.heartbeat,
            sabotage: agent_side(kind),
            abort_on_crash: false,
            kill: Some(Arc::clone(&kill)),
        };
        {
            let kill = Arc::clone(&kill);
            let clean = Arc::clone(&clean);
            std::thread::spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_agent(cfg, Box::new(ChannelWriter(byte_tx)))
                }));
                clean.store(matches!(outcome, Ok(Ok(_))), Ordering::SeqCst);
                // Raise the switch even on clean exits: it stops any
                // still-running heartbeat thread, whose sender clone is
                // what keeps the byte channel open.
                kill.kill();
            });
        }

        let kill_at = kill_after(kind);
        let reader_kill = Arc::clone(&kill);
        let faults = self.faults;
        let fault_seed = self.fault_seed;
        let delay_cap = self.heartbeat;
        std::thread::spawn(move || {
            let mut pump = LinePump::new(key, faults, fault_seed, delay_cap);
            while let Ok(chunk) = byte_rx.recv() {
                let seen = pump.feed(&chunk, &events);
                if let Some(at) = kill_at {
                    if seen >= at && !reader_kill.is_killed() {
                        reader_kill.kill();
                    }
                }
            }
            // Channel disconnected: agent and heartbeat threads are
            // done, and `clean` was stored before the switch was raised.
            let _ = events.send((key, AgentEvent::Exited { clean: clean.load(Ordering::SeqCst) }));
        });

        Ok(RunningShard { kill: Box::new(move || kill.kill()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_msg;

    fn key() -> AttemptKey {
        AttemptKey { stage: SweepStage::Stage1, shard: 1, attempt: 0 }
    }

    #[test]
    fn quiescent_pump_forwards_every_message() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pump = LinePump::new(key(), TransportFaults::none(), 0, Duration::from_secs(1));
        let msgs = [
            WireMsg::Heartbeat { seq: 1, completed: 0 },
            WireMsg::Done { completed: 3, write_errors: 0 },
        ];
        for m in &msgs {
            pump.feed(&encode_msg(m), &tx);
        }
        drop(tx);
        let got: Vec<_> = rx.iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(k, _)| *k == key()));
        assert!(matches!(&got[0].1, AgentEvent::Msg(WireMsg::Heartbeat { seq: 1, .. })));
    }

    #[test]
    fn pump_counts_checkpoints_and_reports_garbage() {
        use interlag_core::checkpoint::CheckpointRecord;
        use interlag_core::experiment::{placeholder_result, RepOutcome};
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pump = LinePump::new(key(), TransportFaults::none(), 0, Duration::from_secs(1));
        let rec = CheckpointRecord::new(1, 0, 0, &placeholder_result("t"), &RepOutcome::Ok);
        let n = pump.feed(&encode_msg(&WireMsg::Checkpoint { seq: 1, record: rec }), &tx);
        assert_eq!(n, 1);
        // A damaged line must surface as Garbage, not silence.
        let frame = encode_msg(&WireMsg::Heartbeat { seq: 1, completed: 1 });
        let mut torn = frame[..frame.len() / 2].to_vec();
        torn.push(b'\n');
        let n = pump.feed(&torn, &tx);
        assert_eq!(n, 1, "garbage is not a checkpoint");
        drop(tx);
        let got: Vec<_> = rx.iter().map(|(_, e)| e).collect();
        assert!(matches!(got[0], AgentEvent::Msg(WireMsg::Checkpoint { .. })));
        assert!(matches!(got[1], AgentEvent::Garbage));
    }

    #[test]
    fn injected_delays_are_capped_by_the_watchdog_budget_share() {
        // Every frame delayed, nominally up to 10 s each — but the pump
        // may never sleep past its cap, or a delay schedule could trip
        // the heartbeat watchdog for a perfectly alive agent.
        let faults =
            TransportFaults { delay_rate: 1.0, max_delay_ms: 10_000, ..TransportFaults::none() };
        let (tx, rx) = std::sync::mpsc::channel();
        let mut pump = LinePump::new(key(), faults, 7, Duration::from_millis(5));
        let start = std::time::Instant::now();
        for seq in 1..=10 {
            pump.feed(&encode_msg(&WireMsg::Heartbeat { seq, completed: 0 }), &tx);
        }
        assert!(
            start.elapsed() < Duration::from_millis(2_000),
            "ten capped delays must total well under one uncapped one"
        );
        drop(tx);
        // Delayed frames are late, never lost.
        assert_eq!(rx.iter().count(), 10);
    }

    #[test]
    fn sabotage_schedule_is_split_between_sides() {
        let task = ShardTask {
            scope: StudyScope { shard: 2, of: 4, stage: SweepStage::Stage1 },
            attempt: 1,
            journal_path: PathBuf::from("/dev/null"),
        };
        let schedule = vec![
            AgentSabotage { shard: 2, attempt: 1, kind: SabotageKind::KillAfterRecords(3) },
            AgentSabotage { shard: 0, attempt: 0, kind: SabotageKind::CrashAtCheckpoint(1) },
        ];
        let kind = scheduled(&schedule, &task);
        assert_eq!(kill_after(kind), Some(3));
        assert_eq!(agent_side(kind), None);
        let crash = scheduled(
            &schedule,
            &ShardTask {
                scope: StudyScope { shard: 0, of: 4, stage: SweepStage::Stage1 },
                attempt: 0,
                journal_path: PathBuf::new(),
            },
        );
        assert_eq!(kill_after(crash), None);
        assert_eq!(agent_side(crash), Some(SabotageKind::CrashAtCheckpoint(1)));
        assert_eq!(sabotage_flag(SabotageKind::CrashAtCheckpoint(1)).as_deref(), Some("crash@1"));
        assert_eq!(sabotage_flag(SabotageKind::TearJournal(2)).as_deref(), Some("tear@2"));
        assert_eq!(sabotage_flag(SabotageKind::KillAfterRecords(3)), None);
    }
}
