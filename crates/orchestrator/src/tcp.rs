//! Multi-machine sweeps: the TCP transport and its resumable client.
//!
//! [`TcpTransport`] is a third [`Transport`](crate::transport::Transport)
//! next to the process and thread ones: agents connect to the supervisor
//! over TCP and speak the same CRC-framed wire protocol, wrapped in the
//! [`session`](crate::session) envelope. What the envelope buys over a
//! pipe:
//!
//! * **epoch-fenced leases** — every dispatch attempt holds a lease
//!   identified by a transport-unique epoch. A shard's *current* epoch
//!   advances at every (re-)dispatch, and frames from any older epoch
//!   are fenced: counted ([`Counter::FencedEpochRecords`]), answered
//!   with [`SessionMsg::Revoke`], never forwarded to the merge. A zombie
//!   agent on the far side of a healed partition cannot poison the sweep
//!   after its shard was re-dispatched — its journal, if locally
//!   readable, is still salvaged through the fingerprint-checked disk
//!   path, but its wire has no authority left.
//! * **session resume** — a dropped connection is not a dead agent. The
//!   client reconnects with deterministic decorrelated-jitter backoff
//!   (the supervisor's own [`retry_backoff`]), re-registers under its
//!   epoch, learns the supervisor's cumulative ack high-water mark, and
//!   retransmits exactly the unacknowledged suffix from its
//!   [`SeqOutbox`]. The supervisor side counts every re-registration
//!   ([`Counter::AgentReconnects`]).
//! * **graceful degradation** — when the client's reconnect budget is
//!   exhausted the link is declared dead and the agent is killed (thread
//!   mode) or exits [`EXIT_LINK_DEAD`] (process mode), which lands in
//!   the supervisor's ordinary watchdog → retry → abandon machinery: a
//!   sweep that cannot keep a network alive degrades to the same
//!   exit-code-5 path as any other shard loss, it never hangs.
//!
//! Three ways to run the far side: [`TcpAgentMode::Spawn`] forks
//! `interlag agent --connect` children (real processes over real
//! sockets), [`TcpAgentMode::Thread`] runs clients in-process for
//! deterministic chaos tests, and [`TcpAgentMode::External`] dispatches
//! to self-registering `interlag agent --worker` processes on other
//! hosts, shipping each task's seeded journal prefix in the
//! [`SessionMsg::Assign`] frame.
//!
//! [`Counter::FencedEpochRecords`]: interlag_obs::Counter::FencedEpochRecords
//! [`Counter::AgentReconnects`]: interlag_obs::Counter::AgentReconnects
//! [`SeqOutbox`]: interlag_journal::SeqOutbox
//! [`retry_backoff`]: crate::supervisor::retry_backoff

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use interlag_core::experiment::{LabConfig, SweepStage};
use interlag_journal::SeqOutbox;
use interlag_obs::{Counter, Recorder};
use interlag_workloads::gen::Workload;

use crate::agent::{run_agent, stage_name, AgentConfig, AgentReport, KillSwitch};
use crate::session::{SeqAssembler, SessionMsg};
use crate::supervisor::retry_backoff;
use crate::transport::{AgentEvent, AttemptKey, RunningShard, ShardTask, Transport};
use crate::wire::{encode_frame, FrameReader, WireMsg};

/// Process exit code of an agent whose lease was revoked: its epoch was
/// fenced (the shard re-dispatched) and nothing it could send would be
/// accepted.
pub const EXIT_FENCED: u8 = 7;
/// Process exit code of an agent that exhausted its reconnect budget:
/// the supervisor is unreachable and local work would be orphaned.
pub const EXIT_LINK_DEAD: u8 = 8;

/// How long one TCP connect attempt may block before it counts as a
/// failure (loopback and LAN connects resolve far faster; a partitioned
/// route must not wedge the reconnect loop).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Client-side reconnect policy: deterministic decorrelated-jitter
/// backoff between attempts, a retry budget, and how long a finished
/// agent waits for its last frames to be acknowledged before giving the
/// disk journal the last word.
#[derive(Debug, Clone)]
pub struct ClientPolicy {
    /// First reconnect delay (and jitter floor).
    pub backoff_base: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
    /// Seed for the per-shard backoff streams (see [`retry_backoff`]).
    pub backoff_seed: u64,
    /// Consecutive connection failures tolerated before the link is
    /// declared dead and the agent degrades to the local retry path.
    pub retry_budget: u32,
    /// How long a *finished* agent lingers to drain unacknowledged
    /// frames. Past this, undelivered frames are abandoned to the wire —
    /// the shard journal on disk remains the durable record.
    pub drain_timeout: Duration,
}

impl Default for ClientPolicy {
    fn default() -> Self {
        ClientPolicy {
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0,
            retry_budget: 8,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything the reconnect loop needs to (re-)introduce itself.
#[derive(Debug, Clone)]
pub struct TcpClientOpts {
    /// Supervisor (or chaos proxy) address to dial, `host:port`.
    pub addr: String,
    /// The lease epoch this agent was dispatched under.
    pub epoch: u64,
    /// The dispatch attempt (0 = first), echoed in `Register`.
    pub attempt: u32,
    /// Reconnect policy.
    pub policy: ClientPolicy,
}

/// Shared state between the agent's writer and its reconnect thread.
struct Link {
    state: Mutex<LinkState>,
    cv: Condvar,
}

struct LinkState {
    outbox: SeqOutbox,
    /// The live, registered connection writes go to; `None` while
    /// disconnected (frames queue in the outbox and replay on resume).
    stream: Option<TcpStream>,
    /// The agent has finished; the connection thread may exit once the
    /// outbox drains.
    finished: bool,
    /// The lease was revoked — stop reconnecting, the epoch is fenced.
    revoked: bool,
    /// The reconnect budget is spent — stop reconnecting, degrade.
    dead: bool,
}

impl Link {
    fn new() -> Self {
        Link {
            state: Mutex::new(LinkState {
                outbox: SeqOutbox::new(),
                stream: None,
                finished: false,
                revoked: false,
                dead: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The `Write` end handed to [`run_agent`]: each write is one complete
/// framed [`WireMsg`] line (that is how the agent writes), which gets a
/// sequence number, joins the retransmit buffer, and rides the live
/// connection if there is one. Writes while partitioned just queue —
/// exactly like the pipe transports, a gone supervisor never kills a
/// healthy agent mid-shard.
struct SessionWriter {
    link: Arc<Link>,
    epoch: u64,
}

impl Write for SessionWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Re-parse the framed line so the sequence number can live
        // inside the envelope payload (and survive re-framing).
        let decoded = interlag_journal::decode_records(buf);
        let msg = decoded
            .records
            .first()
            .and_then(|p| std::str::from_utf8(p).ok())
            .and_then(|t| serde_json::from_str::<WireMsg>(t).ok());
        if let Some(msg) = msg {
            let mut st = self.link.lock();
            let seq = st.outbox.last_seq() + 1;
            let frame = encode_frame(&SessionMsg::Data { epoch: self.epoch, seq, msg });
            st.outbox.push(frame.clone());
            if let Some(stream) = st.stream.as_mut() {
                if stream.write_all(&frame).and_then(|_| stream.flush()).is_err() {
                    // The reconnect thread will notice its read fail and
                    // take over; queued frames replay after Register.
                    st.stream = None;
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn send_frame(mut stream: &TcpStream, msg: &SessionMsg) -> bool {
    stream.write_all(&encode_frame(msg)).and_then(|_| stream.flush()).is_ok()
}

/// The client's reconnect loop: dial, `Register`, learn the ack
/// high-water mark, retransmit the unacknowledged suffix, then pump acks
/// until the connection dies — and start over, with seeded decorrelated
/// backoff, until the outbox is drained, the lease is revoked, or the
/// budget is spent.
#[allow(clippy::too_many_lines)]
fn connection_loop(
    link: &Arc<Link>,
    opts: &TcpClientOpts,
    stage: String,
    shard: u32,
    of: u32,
    kill: Option<Arc<KillSwitch>>,
    exit_on_fence: bool,
) {
    let mut failures: u32 = 0;
    loop {
        {
            let st = link.lock();
            if st.revoked || st.dead || (st.finished && st.outbox.is_drained()) {
                return;
            }
        }
        if failures > opts.policy.retry_budget {
            // Budget spent: declare the link dead and degrade to the
            // supervisor's local watchdog/retry path.
            {
                let mut st = link.lock();
                st.dead = true;
                st.stream = None;
            }
            link.cv.notify_all();
            match &kill {
                Some(k) => k.kill(),
                None if exit_on_fence => std::process::exit(EXIT_LINK_DEAD.into()),
                None => {}
            }
            return;
        }
        if failures > 0 {
            std::thread::sleep(retry_backoff(
                opts.policy.backoff_base,
                opts.policy.backoff_cap,
                opts.policy.backoff_seed ^ opts.epoch,
                shard,
                failures,
            ));
        }
        let addr = opts.addr.to_socket_addrs().ok().and_then(|mut a| a.next());
        let stream = addr.and_then(|a| TcpStream::connect_timeout(&a, CONNECT_TIMEOUT).ok());
        let stream = match stream {
            Some(s) => s,
            None => {
                failures += 1;
                continue;
            }
        };
        let sent = link.lock().outbox.last_seq();
        let register = SessionMsg::Register {
            stage: stage.clone(),
            shard,
            of,
            attempt: opts.attempt,
            epoch: opts.epoch,
            sent,
        };
        if !send_frame(&stream, &register) {
            failures += 1;
            continue;
        }
        let mut reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => {
                failures += 1;
                continue;
            }
        };
        let mut fr: FrameReader<SessionMsg> = FrameReader::new();
        let mut buf = [0u8; 8192];
        let mut registered = false;
        'conn: loop {
            let n = match reader.read(&mut buf) {
                Ok(0) | Err(_) => break 'conn,
                Ok(n) => n,
            };
            for msg in fr.push(&buf[..n]) {
                match msg {
                    SessionMsg::Ack { epoch, seq } if epoch == opts.epoch => {
                        let mut st = link.lock();
                        st.outbox.ack(seq);
                        if !registered {
                            registered = true;
                            failures = 0;
                            // Resume: replay the unacknowledged suffix in
                            // order, then hand the live stream to the
                            // writer. Held under the lock so concurrent
                            // fresh writes cannot interleave mid-replay.
                            let backlog: Vec<Vec<u8>> =
                                st.outbox.unacked().map(|(_, f)| f.to_vec()).collect();
                            let mut w = match stream.try_clone() {
                                Ok(w) => w,
                                Err(_) => break 'conn,
                            };
                            let mut ok = true;
                            for f in &backlog {
                                if w.write_all(f).is_err() {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok && w.flush().is_ok() {
                                st.stream = Some(w);
                            } else {
                                drop(st);
                                break 'conn;
                            }
                        }
                        let drained = st.finished && st.outbox.is_drained();
                        drop(st);
                        link.cv.notify_all();
                        if drained {
                            return;
                        }
                    }
                    SessionMsg::Revoke { .. } => {
                        // Fenced: the shard was re-dispatched. Anything
                        // further we could send would be rejected, so the
                        // agent must die rather than burn a core as a
                        // zombie.
                        {
                            let mut st = link.lock();
                            st.revoked = true;
                            st.stream = None;
                        }
                        link.cv.notify_all();
                        match &kill {
                            Some(k) => k.kill(),
                            None if exit_on_fence => std::process::exit(EXIT_FENCED.into()),
                            None => {}
                        }
                        return;
                    }
                    _ => {}
                }
            }
        }
        {
            let mut st = link.lock();
            st.stream = None;
        }
        failures += 1;
    }
}

/// Runs one shard as a TCP session client: [`run_agent`] does the work,
/// the session layer carries it. Returns the agent's own report; wire
/// delivery is best-effort beyond the drain timeout (the shard journal
/// on disk stays authoritative).
///
/// # Errors
///
/// Whatever [`run_agent`] returns; link failures never surface here.
///
/// # Panics
///
/// Re-raises the agent's own death panic (thread-mode kills and
/// sabotage), after marking the session finished so the reconnect thread
/// can wind down — or keep trying to drain already-journalled
/// checkpoints, which is exactly the zombie the supervisor's fence
/// exists to stop.
pub fn run_tcp_agent(
    opts: TcpClientOpts,
    cfg: AgentConfig,
) -> Result<AgentReport, Box<dyn std::error::Error + Send + Sync>> {
    let link = Arc::new(Link::new());
    let kill = cfg.kill.clone();
    let exit_on_fence = cfg.abort_on_crash;
    let stage = stage_name(cfg.scope.stage).to_string();
    let (shard, of) = (cfg.scope.shard, cfg.scope.of);
    let epoch = opts.epoch;
    let drain = opts.policy.drain_timeout;
    let conn = {
        let link = Arc::clone(&link);
        std::thread::spawn(move || {
            connection_loop(&link, &opts, stage, shard, of, kill, exit_on_fence);
        })
    };

    let writer = SessionWriter { link: Arc::clone(&link), epoch };
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_agent(cfg, Box::new(writer))));

    {
        let mut st = link.lock();
        st.finished = true;
    }
    link.cv.notify_all();
    if matches!(outcome, Ok(Ok(_))) {
        // Clean finish: give the link a bounded chance to deliver the
        // tail (the final checkpoints and Done) before closing up.
        let deadline = std::time::Instant::now() + drain;
        let mut st = link.lock();
        while !(st.outbox.is_drained() || st.revoked || st.dead) {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _) = link.cv.wait_timeout(st, left).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        // Wake a connection thread parked in read(): it re-checks the
        // drained/finished flags and exits. Join only when it is
        // guaranteed to — on a drain timeout the thread keeps working
        // the backlog in the background until the lease is revoked, the
        // budget dies, or the last ack lands.
        let settled = st.outbox.is_drained() || st.revoked || st.dead;
        if settled {
            if let Some(s) = &st.stream {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        drop(st);
        if settled {
            let _ = conn.join();
        }
    }
    match outcome {
        Ok(result) => result,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// How [`TcpTransport`] obtains a far side for each dispatch.
#[derive(Debug, Clone)]
pub enum TcpAgentMode {
    /// Fork `interlag agent --connect` child processes: real sockets,
    /// real `abort()`s, real `SIGKILL`s. The loopback-complete way to
    /// run a production-shaped TCP sweep on one host.
    Spawn {
        /// The `interlag` binary.
        exe: PathBuf,
        /// Dataset the agents sweep (must fingerprint-match the
        /// supervisor's workload).
        dataset: String,
        /// Repetitions per configuration (ditto).
        reps: u32,
        /// Extra arguments (matrix bindings) for every agent.
        extra_args: Vec<String>,
    },
    /// Run session clients on in-process threads: deterministic chaos
    /// tests with a [`KillSwitch`] instead of signals.
    Thread {
        /// The workload to sweep.
        workload: Box<Workload>,
        /// The lab configuration (forced to one worker per agent).
        lab: Box<LabConfig>,
    },
    /// Dispatch to external `interlag agent --worker` processes that
    /// connect in and announce [`SessionMsg::Available`]. The only mode
    /// that crosses machine boundaries: each task ships its seeded
    /// journal prefix in the [`SessionMsg::Assign`].
    External {
        /// Repetitions per configuration, forwarded in every `Assign`.
        reps: u32,
    },
}

/// One outstanding lease on the supervisor side.
struct Lease {
    key: AttemptKey,
    events: Sender<(AttemptKey, AgentEvent)>,
    assembler: SeqAssembler,
    /// The connection currently serving this lease (id, write half).
    conn: Option<(u64, TcpStream)>,
    registered_once: bool,
    /// The client has been told to stop (kill or supersession). Guards
    /// duplicate Revoke frames and duplicate external exits — *fencing*
    /// is decided by epoch currency, not by this flag.
    revoked: bool,
    /// A `Done` made it through the assembler.
    done: bool,
    /// External mode: the synthetic `Exited` for this lease went out.
    exited_sent: bool,
    external: bool,
}

struct TcpState {
    next_epoch: u64,
    /// The current (fencing) epoch per shard slot.
    current: HashMap<(SweepStage, u32), u64>,
    leases: HashMap<u64, Lease>,
    /// External tasks waiting for a worker: (epoch, encoded Assign).
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Parked idle worker connections: (conn id, write half).
    idle: Vec<(u64, TcpStream)>,
}

struct Shared {
    obs: Recorder,
    shutdown: AtomicBool,
    state: Mutex<TcpState>,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, TcpState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Looks up a lease *if its epoch is still current* — the fence. Stale
/// epochs (superseded by a re-dispatch) return `None` no matter what
/// state the lease is in; a revoked-but-current lease (a killed
/// straggler) still passes, mirroring how a killed child's in-flight
/// pipe bytes are still parsed.
fn fenced_lookup(st: &mut TcpState, epoch: u64) -> Option<&mut Lease> {
    let lease = st.leases.get(&epoch)?;
    if st.current.get(&(lease.key.stage, lease.key.shard)) != Some(&epoch) {
        return None;
    }
    st.leases.get_mut(&epoch)
}

/// Marks a lease revoked: tells its client to stop and, for external
/// leases, synthesises the `Exited` event the supervisor is owed (no
/// local process exists to produce one). Idempotent.
fn revoke_lease(st: &mut TcpState, epoch: u64) {
    st.pending.retain(|(e, _)| *e != epoch);
    if let Some(lease) = st.leases.get_mut(&epoch) {
        if lease.revoked {
            return;
        }
        lease.revoked = true;
        if let Some((_, conn)) = &lease.conn {
            send_frame(conn, &SessionMsg::Revoke { epoch });
        }
        lease.conn = None;
        if lease.external && !lease.exited_sent {
            lease.exited_sent = true;
            let _ = lease.events.send((lease.key, AgentEvent::Exited { clean: lease.done }));
        }
    }
}

/// The supervisor's TCP front door. Binds a listener at construction;
/// every [`Transport::dispatch`] issues a fresh lease epoch (fencing any
/// live predecessor for the same shard slot) and launches or enqueues
/// the attempt per [`TcpAgentMode`].
pub struct TcpTransport {
    shared: Arc<Shared>,
    mode: TcpAgentMode,
    listen_addr: SocketAddr,
    /// Where agents dial in — the listener itself, or a chaos proxy
    /// fronting it.
    pub connect_addr: String,
    /// Heartbeat period agents run under.
    pub heartbeat: Duration,
    /// Reconnect policy for spawned/thread clients.
    pub client: ClientPolicy,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("listen_addr", &self.listen_addr)
            .field("connect_addr", &self.connect_addr)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting agent connections.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listener.
    pub fn bind(
        addr: &str,
        mode: TcpAgentMode,
        heartbeat: Duration,
        obs: Recorder,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            obs,
            shutdown: AtomicBool::new(false),
            state: Mutex::new(TcpState {
                next_epoch: 1,
                current: HashMap::new(),
                leases: HashMap::new(),
                pending: VecDeque::new(),
                idle: Vec::new(),
            }),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut conn_id = 0u64;
                for conn in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        conn_id += 1;
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || handle_conn(&shared, stream, conn_id));
                    }
                }
            })
        };
        Ok(TcpTransport {
            shared,
            mode,
            listen_addr,
            connect_addr: listen_addr.to_string(),
            heartbeat,
            client: ClientPolicy::default(),
            accept: Some(accept),
        })
    }

    /// The bound listener address (the real one, even behind a proxy).
    pub fn addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Stops accepting connections, drains idle workers, and revokes
    /// every outstanding lease. Called on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut st = self.shared.lock();
            let epochs: Vec<u64> = st.leases.keys().copied().collect();
            for e in epochs {
                revoke_lease(&mut st, e);
            }
            for (_, conn) in st.idle.drain(..) {
                send_frame(&conn, &SessionMsg::Drain);
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
        }
        // Unblock the accept loop so its thread can observe the flag.
        let _ = TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One accepted connection: parse session frames, fence by epoch,
/// assemble in order, forward to the supervisor, acknowledge.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut fr: FrameReader<SessionMsg> = FrameReader::new();
    let mut buf = [0u8; 8192];
    // The epoch this connection last spoke for — the attribution target
    // for garbage frames (a proxy-torn line has no readable epoch).
    let mut bound: Option<u64> = None;
    let mut garbage_sent = 0u64;
    'conn: loop {
        let n = match reader.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        for msg in fr.push(&buf[..n]) {
            match msg {
                SessionMsg::Register { epoch, .. } => {
                    let mut st = shared.lock();
                    match fenced_lookup(&mut st, epoch) {
                        Some(lease) => {
                            if lease.registered_once {
                                shared.obs.count(Counter::AgentReconnects, 1);
                            }
                            lease.registered_once = true;
                            if let Ok(c) = stream.try_clone() {
                                lease.conn = Some((conn_id, c));
                            }
                            bound = Some(epoch);
                            let ack = SessionMsg::Ack { epoch, seq: lease.assembler.delivered() };
                            drop(st);
                            send_frame(&stream, &ack);
                        }
                        None => {
                            drop(st);
                            shared.obs.count(Counter::FencedEpochRecords, 1);
                            send_frame(&stream, &SessionMsg::Revoke { epoch });
                            break 'conn;
                        }
                    }
                }
                SessionMsg::Data { epoch, seq, msg } => {
                    let mut st = shared.lock();
                    match fenced_lookup(&mut st, epoch) {
                        Some(lease) => {
                            bound = Some(epoch);
                            for m in lease.assembler.offer(seq, msg) {
                                if matches!(m, WireMsg::Done { .. }) {
                                    lease.done = true;
                                }
                                let _ = lease.events.send((lease.key, AgentEvent::Msg(m)));
                            }
                            let ack = SessionMsg::Ack { epoch, seq: lease.assembler.delivered() };
                            if lease.external && lease.done && !lease.exited_sent {
                                lease.exited_sent = true;
                                let _ = lease
                                    .events
                                    .send((lease.key, AgentEvent::Exited { clean: true }));
                            }
                            drop(st);
                            send_frame(&stream, &ack);
                        }
                        None => {
                            drop(st);
                            shared.obs.count(Counter::FencedEpochRecords, 1);
                            send_frame(&stream, &SessionMsg::Revoke { epoch });
                            break 'conn;
                        }
                    }
                }
                SessionMsg::Available => {
                    let mut st = shared.lock();
                    if let Some((_, frame)) = st.pending.pop_front() {
                        drop(st);
                        let _ = (&stream).write_all(&frame);
                        let _ = (&stream).flush();
                    } else if let Ok(c) = stream.try_clone() {
                        st.idle.push((conn_id, c));
                    }
                }
                // Supervisor-bound frames only; anything else on this
                // side is a protocol confusion, ignored.
                _ => {}
            }
        }
        let g = fr.garbage();
        if g > garbage_sent {
            let delta = g - garbage_sent;
            garbage_sent = g;
            let mut st = shared.lock();
            if let Some(lease) = bound.and_then(|e| fenced_lookup(&mut st, e)) {
                for _ in 0..delta {
                    let _ = lease.events.send((lease.key, AgentEvent::Garbage));
                }
            }
        }
    }
    // Connection gone: release the lease binding (if still ours) and any
    // idle parking. A torn trailing line dies unreported, matching pipe
    // EOF semantics.
    let mut st = shared.lock();
    if let Some(lease) = bound.and_then(|e| st.leases.get_mut(&e)) {
        if matches!(lease.conn, Some((id, _)) if id == conn_id) {
            lease.conn = None;
        }
    }
    st.idle.retain(|(id, _)| *id != conn_id);
}

impl Transport for TcpTransport {
    fn dispatch(
        &mut self,
        task: &ShardTask,
        events: Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<RunningShard> {
        let key = task.key();
        let external = matches!(self.mode, TcpAgentMode::External { .. });
        let epoch = {
            let mut st = self.shared.lock();
            let epoch = st.next_epoch;
            st.next_epoch += 1;
            // Advance the fence first: from this instant the old lease's
            // frames are rejected, *then* its client is told to stop.
            if let Some(old) = st.current.insert((key.stage, key.shard), epoch) {
                let expired = st.leases.get(&old).is_some_and(|l| !l.done);
                if expired {
                    self.shared.obs.count(Counter::LeaseExpiries, 1);
                }
                revoke_lease(&mut st, old);
            }
            st.leases.insert(
                epoch,
                Lease {
                    key,
                    events: events.clone(),
                    assembler: SeqAssembler::new(),
                    conn: None,
                    registered_once: false,
                    revoked: false,
                    done: false,
                    exited_sent: false,
                    external,
                },
            );
            epoch
        };

        let kill_shared = Arc::clone(&self.shared);
        match &self.mode {
            TcpAgentMode::Spawn { exe, dataset, reps, extra_args } => {
                let mut cmd = Command::new(exe);
                cmd.arg("agent")
                    .arg(dataset)
                    .args(["-r", &reps.to_string()])
                    .args(["--shard", &task.scope.shard.to_string()])
                    .args(["--of", &task.scope.of.to_string()])
                    .args(["--stage", stage_name(task.scope.stage)])
                    .arg("--journal")
                    .arg(&task.journal_path)
                    .args(["--heartbeat-ms", &self.heartbeat.as_millis().to_string()])
                    .args(["--connect", &self.connect_addr])
                    .args(["--epoch", &epoch.to_string()])
                    .args(["--attempt", &task.attempt.to_string()])
                    .args(extra_args)
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit());
                let child = Arc::new(Mutex::new(cmd.spawn()?));
                {
                    let child = Arc::clone(&child);
                    let events = events.clone();
                    std::thread::spawn(move || {
                        let clean = loop {
                            let polled = child.lock().unwrap_or_else(|e| e.into_inner()).try_wait();
                            match polled {
                                Ok(Some(status)) => break status.success(),
                                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                                Err(_) => break false,
                            }
                        };
                        let _ = events.send((key, AgentEvent::Exited { clean }));
                    });
                }
                Ok(RunningShard::from_fn(move || {
                    revoke_lease(&mut kill_shared.lock(), epoch);
                    if let Ok(mut c) = child.lock() {
                        let _ = c.kill();
                    }
                }))
            }
            TcpAgentMode::Thread { workload, lab } => {
                let kill = Arc::new(KillSwitch::new());
                let mut lab = (**lab).clone();
                lab.workers = 1;
                let cfg = AgentConfig {
                    workload: (**workload).clone(),
                    lab,
                    scope: task.scope,
                    journal_path: task.journal_path.clone(),
                    heartbeat: self.heartbeat,
                    sabotage: None,
                    abort_on_crash: false,
                    kill: Some(Arc::clone(&kill)),
                };
                let opts = TcpClientOpts {
                    addr: self.connect_addr.clone(),
                    epoch,
                    attempt: task.attempt,
                    policy: self.client.clone(),
                };
                {
                    let events = events.clone();
                    std::thread::spawn(move || {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_tcp_agent(opts, cfg)
                            }));
                        let clean = matches!(outcome, Ok(Ok(_)));
                        let _ = events.send((key, AgentEvent::Exited { clean }));
                    });
                }
                Ok(RunningShard::from_fn(move || {
                    revoke_lease(&mut kill_shared.lock(), epoch);
                    kill.kill();
                }))
            }
            TcpAgentMode::External { reps } => {
                let seed = std::fs::read(&task.journal_path).unwrap_or_default();
                let assign = SessionMsg::Assign {
                    stage: stage_name(key.stage).to_string(),
                    shard: key.shard,
                    of: task.scope.of,
                    attempt: task.attempt,
                    epoch,
                    reps: *reps,
                    heartbeat_ms: self.heartbeat.as_millis() as u64,
                    seed,
                };
                let frame = encode_frame(&assign);
                let handed = {
                    let mut st = self.shared.lock();
                    match st.idle.pop() {
                        Some((_, conn)) => {
                            drop(st);
                            send_frame(&conn, &assign)
                        }
                        None => false,
                    }
                };
                if !handed {
                    self.shared.lock().pending.push_back((epoch, frame));
                }
                Ok(RunningShard::from_fn(move || {
                    revoke_lease(&mut kill_shared.lock(), epoch);
                }))
            }
        }
    }
}

/// A worker's assignment, decoded from [`SessionMsg::Assign`].
#[derive(Debug, Clone)]
pub struct WorkerTask {
    /// `"stage1"` or `"oracle"`.
    pub stage: String,
    /// Shard index within the wave.
    pub shard: u32,
    /// Total shards in the wave.
    pub of: u32,
    /// The dispatch attempt.
    pub attempt: u32,
    /// Repetitions per configuration.
    pub reps: u32,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Local path the seeded journal prefix was written to.
    pub journal_path: PathBuf,
}

/// Runs an external worker loop: connect, announce availability, run
/// each assigned shard as a fresh TCP session, repeat until drained.
/// `make` turns an assignment into the agent configuration (the worker's
/// own dataset and lab flags must fingerprint-match the supervisor's, or
/// the attempt is killed as corrupt — detected, not silent).
///
/// Returns the number of tasks completed.
///
/// # Errors
///
/// I/O errors writing assignment journals to `scratch`; connection
/// failures are retried under `policy` and never surface.
pub fn run_tcp_worker(
    addr: &str,
    policy: &ClientPolicy,
    scratch: &std::path::Path,
    mut make: impl FnMut(&WorkerTask) -> AgentConfig,
) -> std::io::Result<u32> {
    let mut failures: u32 = 0;
    let mut tasks = 0u32;
    loop {
        if failures > policy.retry_budget {
            return Ok(tasks);
        }
        if failures > 0 {
            std::thread::sleep(retry_backoff(
                policy.backoff_base,
                policy.backoff_cap,
                policy.backoff_seed,
                tasks,
                failures,
            ));
        }
        let resolved = addr.to_socket_addrs().ok().and_then(|mut a| a.next());
        let stream = resolved.and_then(|a| TcpStream::connect_timeout(&a, CONNECT_TIMEOUT).ok());
        let mut stream = match stream {
            Some(s) => s,
            None => {
                failures += 1;
                continue;
            }
        };
        if !send_frame(&stream, &SessionMsg::Available) {
            failures += 1;
            continue;
        }
        let mut fr: FrameReader<SessionMsg> = FrameReader::new();
        let mut buf = [0u8; 65536];
        let assign = 'wait: loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break 'wait None,
                Ok(n) => n,
            };
            for msg in fr.push(&buf[..n]) {
                match msg {
                    SessionMsg::Assign { .. } => break 'wait Some(msg),
                    SessionMsg::Drain => return Ok(tasks),
                    _ => {}
                }
            }
        };
        let Some(SessionMsg::Assign { stage, shard, of, attempt, epoch, reps, heartbeat_ms, seed }) =
            assign
        else {
            failures += 1;
            continue;
        };
        drop(stream); // the task runs over its own registered session
        let journal_path = scratch.join(format!("worker-{stage}-{shard}-a{attempt}.journal"));
        std::fs::write(&journal_path, &seed)?;
        let task = WorkerTask {
            stage,
            shard,
            of,
            attempt,
            reps,
            heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
            journal_path,
        };
        let cfg = make(&task);
        let opts = TcpClientOpts { addr: addr.to_string(), epoch, attempt, policy: policy.clone() };
        // A failed or fenced task must not kill the worker: report
        // nothing (the supervisor's watchdogs already noticed) and go
        // back to the queue.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_tcp_agent(opts, cfg)));
        failures = 0;
        tasks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_core::experiment::{StudyScope, SweepStage};

    fn read_msgs(stream: &mut TcpStream, want: usize) -> Vec<SessionMsg> {
        let mut fr: FrameReader<SessionMsg> = FrameReader::new();
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("set timeout");
        while out.len() < want {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend(fr.push(&buf[..n])),
            }
        }
        out
    }

    fn transport() -> (TcpTransport, Recorder) {
        let obs = Recorder::enabled();
        let t = TcpTransport::bind(
            "127.0.0.1:0",
            TcpAgentMode::External { reps: 1 },
            Duration::from_millis(25),
            obs.clone(),
        )
        .expect("bind");
        (t, obs)
    }

    fn task(shard: u32, attempt: u32) -> ShardTask {
        ShardTask {
            scope: StudyScope { shard, of: 4, stage: SweepStage::Stage1 },
            attempt,
            journal_path: PathBuf::from("/nonexistent/seed.journal"),
        }
    }

    fn register(epoch: u64) -> SessionMsg {
        SessionMsg::Register { stage: "stage1".into(), shard: 1, of: 4, attempt: 0, epoch, sent: 0 }
    }

    #[test]
    fn current_epoch_registers_and_is_acked_from_zero() {
        let (mut t, _obs) = transport();
        let (tx, _rx) = std::sync::mpsc::channel();
        let _running = t.dispatch(&task(1, 0), tx).expect("dispatch");
        let mut c = TcpStream::connect(t.addr()).expect("connect");
        send_frame(&c, &register(1));
        let got = read_msgs(&mut c, 1);
        assert_eq!(got, vec![SessionMsg::Ack { epoch: 1, seq: 0 }]);
    }

    #[test]
    fn stale_epoch_is_fenced_with_a_revoke() {
        let (mut t, _obs) = transport();
        let (tx, rx) = std::sync::mpsc::channel();
        let _first = t.dispatch(&task(1, 0), tx.clone()).expect("dispatch");
        // Re-dispatch the same shard slot: epoch 1 is superseded by 2.
        let _second = t.dispatch(&task(1, 1), tx).expect("redispatch");
        let mut c = TcpStream::connect(t.addr()).expect("connect");
        send_frame(&c, &register(1));
        let got = read_msgs(&mut c, 1);
        assert_eq!(got, vec![SessionMsg::Revoke { epoch: 1 }]);
        // The superseded external lease reported an unclean exit.
        let events: Vec<_> = rx.try_iter().collect();
        assert!(events
            .iter()
            .any(|(k, e)| k.attempt == 0 && matches!(e, AgentEvent::Exited { clean: false })));
    }

    #[test]
    fn fenced_data_never_reaches_the_supervisor() {
        let (mut t, obs) = transport();
        let (tx, rx) = std::sync::mpsc::channel();
        let _first = t.dispatch(&task(1, 0), tx.clone()).expect("dispatch");
        let _second = t.dispatch(&task(1, 1), tx).expect("redispatch");
        let mut c = TcpStream::connect(t.addr()).expect("connect");
        // A zombie skips Register and fires Data under its old epoch.
        let data =
            SessionMsg::Data { epoch: 1, seq: 1, msg: WireMsg::Heartbeat { seq: 1, completed: 0 } };
        send_frame(&c, &data);
        let got = read_msgs(&mut c, 1);
        assert_eq!(got, vec![SessionMsg::Revoke { epoch: 1 }]);
        let leaked = rx.try_iter().filter(|(_, e)| matches!(e, AgentEvent::Msg(_))).count();
        assert_eq!(leaked, 0, "fenced frames must never merge");
        drop(t);
        let report = obs.text_report_deterministic();
        assert!(report.contains("fenced_epoch_records"), "fence must be counted: {report}");
    }

    #[test]
    fn data_is_assembled_acked_and_deduplicated() {
        let (mut t, _obs) = transport();
        let (tx, rx) = std::sync::mpsc::channel();
        let _running = t.dispatch(&task(1, 0), tx).expect("dispatch");
        let mut c = TcpStream::connect(t.addr()).expect("connect");
        send_frame(&c, &register(1));
        assert_eq!(read_msgs(&mut c, 1), vec![SessionMsg::Ack { epoch: 1, seq: 0 }]);
        let hb = |seq: u64| SessionMsg::Data {
            epoch: 1,
            seq,
            msg: WireMsg::Heartbeat { seq, completed: 0 },
        };
        // Out of order plus a duplicate: 2, 1, 2 → delivered 1, 2 once.
        send_frame(&c, &hb(2));
        send_frame(&c, &hb(1));
        send_frame(&c, &hb(2));
        let acks = read_msgs(&mut c, 3);
        assert_eq!(
            acks,
            vec![
                SessionMsg::Ack { epoch: 1, seq: 0 },
                SessionMsg::Ack { epoch: 1, seq: 2 },
                SessionMsg::Ack { epoch: 1, seq: 2 },
            ]
        );
        let msgs: Vec<_> = rx
            .try_iter()
            .filter_map(|(_, e)| match e {
                AgentEvent::Msg(WireMsg::Heartbeat { seq, .. }) => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(msgs, vec![1, 2]);
    }

    #[test]
    fn reconnect_resumes_from_the_ack_high_water_mark() {
        let (mut t, obs) = transport();
        let (tx, _rx) = std::sync::mpsc::channel();
        let _running = t.dispatch(&task(1, 0), tx).expect("dispatch");
        {
            let mut c = TcpStream::connect(t.addr()).expect("connect");
            send_frame(&c, &register(1));
            send_frame(
                &c,
                &SessionMsg::Data {
                    epoch: 1,
                    seq: 1,
                    msg: WireMsg::Heartbeat { seq: 1, completed: 0 },
                },
            );
            assert_eq!(read_msgs(&mut c, 2).len(), 2);
        } // drop = partition
        let mut c = TcpStream::connect(t.addr()).expect("reconnect");
        send_frame(&c, &register(1));
        // The resume point is everything already absorbed: seq 1.
        assert_eq!(read_msgs(&mut c, 1), vec![SessionMsg::Ack { epoch: 1, seq: 1 }]);
        drop(t);
        let report = obs.text_report_deterministic();
        assert!(report.contains("agent_reconnects"), "reconnect must be counted: {report}");
    }

    #[test]
    fn idle_worker_receives_queued_assignment() {
        let (mut t, _obs) = transport();
        // Worker arrives before any task: parks idle.
        let mut w = TcpStream::connect(t.addr()).expect("connect");
        send_frame(&w, &SessionMsg::Available);
        std::thread::sleep(Duration::from_millis(50));
        let (tx, _rx) = std::sync::mpsc::channel();
        let _running = t.dispatch(&task(2, 0), tx).expect("dispatch");
        let got = read_msgs(&mut w, 1);
        match &got[..] {
            [SessionMsg::Assign { stage, shard, of, attempt, epoch, reps, .. }] => {
                assert_eq!((stage.as_str(), *shard, *of), ("stage1", 2, 4));
                assert_eq!((*attempt, *epoch, *reps), (0, 1, 1));
            }
            other => panic!("expected an Assign, got {other:?}"),
        }
    }
}
