//! Byte-stable merge of shard journals.
//!
//! Every source — a shard journal salvaged from disk, or records streamed
//! over the wire — passes the same gauntlet: CRC framing (torn tails
//! dropped by `decode_records`), checkpoint decode, version stamp,
//! study fingerprint, and slot assignment. Anything that fails is
//! *quarantined* (counted, never merged); anything that passes lands in a
//! slot-keyed map. Repetitions are pure functions of their coordinates,
//! so two sources can only ever disagree about a slot by one of them
//! being foreign or corrupt — which the gauntlet already removed — and
//! first-wins deduplication is safe.
//!
//! [`encode_merged`] then writes the map in slot order: the merged
//! journal's bytes depend only on *which* slots were recovered, not on
//! shard count, arrival order, retry history or kill schedule.

use std::collections::BTreeMap;

use interlag_core::checkpoint::{
    decode_checkpoint_any, encode_checkpoint, encode_checkpoint_binary, CheckpointFormat,
    CheckpointRecord,
};
use interlag_journal::{decode_records, encode_record, encode_record_binary};

/// The accumulating result of merging any number of record sources.
#[derive(Debug, Default)]
pub struct MergeOutcome {
    /// Accepted records, keyed (and ordered) by `(config, rep)`.
    pub records: BTreeMap<(usize, u32), CheckpointRecord>,
    /// Records rejected by the gauntlet: undecodable payloads, foreign
    /// fingerprints or versions, slots the source was never assigned.
    pub quarantined: u64,
    /// Torn framing fragments dropped from journal byte sources.
    pub torn: u64,
    /// Well-formed records for slots already merged (normal under
    /// retries and speculative duplicates; informational only).
    pub duplicates: u64,
}

impl MergeOutcome {
    /// An empty merge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one already-decoded record (e.g. streamed over the wire).
    /// Returns `true` if it was merged, `false` if quarantined or a
    /// duplicate.
    ///
    /// Order matters: a record for an already-merged slot is a
    /// *duplicate* even when this source was never assigned the slot —
    /// attempt journals are seeded with everything merged so far (the
    /// replay prefix), so re-reading a seed is routine, while an
    /// unassigned slot nobody has produced yet is quarantined.
    pub fn absorb_record(
        &mut self,
        record: CheckpointRecord,
        fingerprint: u64,
        allowed: impl Fn(usize, u32) -> bool,
    ) -> bool {
        if record.fingerprint != fingerprint {
            self.quarantined += 1;
            return false;
        }
        if self.records.contains_key(&(record.config, record.rep)) {
            self.duplicates += 1;
            return false;
        }
        if !allowed(record.config, record.rep) {
            self.quarantined += 1;
            return false;
        }
        self.records.insert((record.config, record.rep), record);
        true
    }

    /// Offers the raw bytes of one shard journal: decodes the longest
    /// valid frame prefix, then runs every payload through the gauntlet.
    pub fn absorb_journal(
        &mut self,
        bytes: &[u8],
        fingerprint: u64,
        allowed: impl Fn(usize, u32) -> bool,
    ) {
        let decoded = decode_records(bytes);
        self.torn += decoded.torn as u64;
        for payload in &decoded.records {
            match decode_checkpoint_any(payload) {
                Some(record) => {
                    self.absorb_record(record, fingerprint, &allowed);
                }
                None => self.quarantined += 1,
            }
        }
    }
}

/// Merges any number of shard journal byte sources in one call.
pub fn merge_shard_journals<'a>(
    sources: impl IntoIterator<Item = &'a [u8]>,
    fingerprint: u64,
    allowed: impl Fn(usize, u32) -> bool,
) -> MergeOutcome {
    let mut out = MergeOutcome::new();
    for bytes in sources {
        out.absorb_journal(bytes, fingerprint, &allowed);
    }
    out
}

/// Encodes merged records as one journal, in slot order — the byte-stable
/// artifact the final local replay resumes from.
pub fn encode_merged(
    records: &BTreeMap<(usize, u32), CheckpointRecord>,
    format: CheckpointFormat,
) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records.values() {
        match format {
            CheckpointFormat::Json => out.extend(
                encode_record(&encode_checkpoint(record)).expect("checkpoint JSON is line-safe"),
            ),
            CheckpointFormat::Binary => {
                out.extend(encode_record_binary(&encode_checkpoint_binary(record)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_core::experiment::{placeholder_result, RepOutcome};

    fn record(fingerprint: u64, config: usize, rep: u32) -> CheckpointRecord {
        CheckpointRecord::new(
            fingerprint,
            config,
            rep,
            &placeholder_result("merge-test"),
            &RepOutcome::Ok,
        )
    }

    fn journal_of(records: &[CheckpointRecord], format: CheckpointFormat) -> Vec<u8> {
        let map: BTreeMap<(usize, u32), CheckpointRecord> =
            records.iter().map(|r| ((r.config, r.rep), r.clone())).collect();
        encode_merged(&map, format)
    }

    #[test]
    fn merge_is_independent_of_source_partitioning() {
        let records: Vec<CheckpointRecord> = (0..6).map(|i| record(7, i, 0)).collect();
        let whole = journal_of(&records, CheckpointFormat::Binary);
        let merged_whole = merge_shard_journals([whole.as_slice()], 7, |_, _| true);
        // Split the same records across three interleaved shard journals
        // in mixed formats.
        let shards: Vec<Vec<u8>> = (0..3)
            .map(|s| {
                let subset: Vec<CheckpointRecord> =
                    records.iter().filter(|r| r.config % 3 == s).cloned().collect();
                let fmt = if s == 1 { CheckpointFormat::Json } else { CheckpointFormat::Binary };
                journal_of(&subset, fmt)
            })
            .collect();
        let merged_shards = merge_shard_journals(shards.iter().map(Vec::as_slice), 7, |_, _| true);
        assert_eq!(merged_shards.records, merged_whole.records);
        // And the re-encoded merged journal is byte-identical either way.
        assert_eq!(
            encode_merged(&merged_shards.records, CheckpointFormat::Binary),
            encode_merged(&merged_whole.records, CheckpointFormat::Binary),
        );
    }

    #[test]
    fn foreign_and_unassigned_records_are_quarantined() {
        let good = record(7, 1, 0);
        let foreign = record(8, 2, 0);
        let unassigned = record(7, 3, 0);
        let bytes = journal_of(&[good.clone(), foreign, unassigned], CheckpointFormat::Binary);
        let merged = merge_shard_journals([bytes.as_slice()], 7, |c, _| c < 3);
        assert_eq!(merged.records.len(), 1);
        assert!(merged.records.contains_key(&(1, 0)));
        assert_eq!(merged.quarantined, 2);
    }

    #[test]
    fn torn_tails_and_duplicates_are_counted_not_merged() {
        let a = record(7, 0, 0);
        let mut bytes = journal_of(std::slice::from_ref(&a), CheckpointFormat::Json);
        let torn = journal_of(&[record(7, 1, 0)], CheckpointFormat::Json);
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let dup = journal_of(&[a], CheckpointFormat::Binary);
        let merged = merge_shard_journals([bytes.as_slice(), dup.as_slice()], 7, |_, _| true);
        assert_eq!(merged.records.len(), 1);
        assert_eq!(merged.torn, 1);
        assert_eq!(merged.duplicates, 1);
        assert_eq!(merged.quarantined, 0);
    }
}
