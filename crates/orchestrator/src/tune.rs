//! The sharded governor-tuning sweep behind `interlag tune`.
//!
//! A tuning run is the orchestration sandwich the study sweep already
//! proved out, applied to the [`interlag_core::tune`] grid: expand the
//! tunable group into governor specs, split the `(point, repetition)`
//! slot grid round-robin across shards exactly like
//! [`StudyScope::owns_stage1`](interlag_core::experiment::StudyScope),
//! fan each shard's slots over a worker pool, fold every repetition into
//! the results database's integer [`Sketch`]s, and merge shard partials
//! into one outcome. Because each slot's measurement is a pure function
//! of `(spec, rep)` and sketch folding is commutative bucket addition,
//! the merged outcome — and therefore the rendered Markdown and CSV — is
//! **byte-identical at any worker and shard count**, the same invariant
//! the sweep supervisor holds for study journals.
//!
//! Scoring follows the issue's rule: each grid point is placed by its
//! mean (irritation, energy) relative to the per-workload oracle, and
//! the report leads with the *Pareto frontier* — the points no other
//! point beats on both axes. Domination is decided in exact integer
//! arithmetic on sketch sums (`a.sum × b.count` vs `b.sum × a.count` in
//! `u128`), so the frontier never depends on float rounding.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use interlag_core::error::InterlagError;
use interlag_core::experiment::Lab;
use interlag_core::propgroup::{PropError, PropPoint};
use interlag_core::tune::{
    measure_tune_point, parse_tune_group, tune_reference, GovernorSpec, TuneMeasurement,
    TuneReference,
};
use interlag_db::{Sketch, ENERGY_BUCKET_UJ, IRRITATION_BUCKET_US, LAG_BUCKET_US};
use interlag_workloads::gen::Workload;

/// How a tuning sweep is shaped: the tunable group plus the fleet split.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// The tunable group text (canonical `key=val:…` grammar).
    pub group: String,
    /// Worker threads per shard (1 = sequential).
    pub workers: usize,
    /// Round-robin shard count over the slot grid (1 = unsharded).
    pub shards: u32,
}

impl TuneConfig {
    /// A sequential, unsharded sweep of `group`.
    pub fn new(group: impl Into<String>) -> Self {
        TuneConfig { group: group.into(), workers: 1, shards: 1 }
    }
}

/// Everything a tuning sweep can fail with.
#[derive(Debug)]
pub enum TuneError {
    /// The tunable group was rejected (grammar or domain).
    Prop(PropError),
    /// A measurement run failed.
    Run(InterlagError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Prop(e) => write!(f, "bad tunable group: {e}"),
            TuneError::Run(e) => write!(f, "tuning run failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<PropError> for TuneError {
    fn from(e: PropError) -> Self {
        TuneError::Prop(e)
    }
}

impl From<InterlagError> for TuneError {
    fn from(e: InterlagError) -> Self {
        TuneError::Run(e)
    }
}

/// One grid point's folded repetitions.
#[derive(Debug, Clone)]
pub struct TunePointSummary {
    /// The governor point (fleet keys stripped), canonical text.
    pub point: PropPoint,
    /// The governor the point built.
    pub spec: GovernorSpec,
    /// Ground-truth mean lags, µs in 1 ms buckets.
    pub lag: Sketch,
    /// Per-repetition total irritation, µs in 10 ms buckets.
    pub irritation: Sketch,
    /// Per-repetition dynamic energy, µJ in 1 mJ buckets.
    pub energy: Sketch,
}

impl TunePointSummary {
    fn empty(point: PropPoint, spec: GovernorSpec) -> Self {
        TunePointSummary {
            point,
            spec,
            lag: Sketch::new(LAG_BUCKET_US),
            irritation: Sketch::new(IRRITATION_BUCKET_US),
            energy: Sketch::new(ENERGY_BUCKET_UJ),
        }
    }

    fn fold(&mut self, m: &TuneMeasurement) {
        self.lag.add(m.mean_lag_us);
        self.irritation.add(m.irritation_us);
        self.energy.add(m.energy_uj);
    }

    /// The point's score: its (irritation, energy) distance from the
    /// oracle, each axis normalised by the oracle's own value (floored
    /// at one sketch bucket so a zero-irritation oracle cannot divide
    /// away the axis). Purely for ranking the rendered report — the
    /// frontier itself is computed in integer arithmetic.
    pub fn oracle_distance(&self, reference: &TuneReference) -> f64 {
        let irr_scale = reference.oracle_irritation_us.max(IRRITATION_BUCKET_US) as f64;
        let energy_scale = reference.oracle_energy_uj.max(ENERGY_BUCKET_UJ) as f64;
        let d_irr = (self.irritation.mean() - reference.oracle_irritation_us as f64) / irr_scale;
        let d_energy = (self.energy.mean() - reference.oracle_energy_uj as f64) / energy_scale;
        (d_irr * d_irr + d_energy * d_energy).sqrt()
    }
}

/// A finished tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The workload tuned against.
    pub workload: String,
    /// The canonical group text.
    pub group: String,
    /// Repetitions folded per point.
    pub reps: u32,
    /// The jitter applied per repetition.
    pub jitter_us: u64,
    /// The oracle reference every point is scored against.
    pub reference: TuneReference,
    /// One summary per grid point, in expansion order.
    pub points: Vec<TunePointSummary>,
    /// Indices into `points` on the Pareto frontier, sorted by mean
    /// energy ascending (ties by grid order).
    pub frontier: Vec<usize>,
}

/// Compares two sketch means exactly: `a.sum/a.count ⋛ b.sum/b.count`
/// cross-multiplied in `u128`, so no division and no floats. An empty
/// sketch (count 0) compares equal to everything — empty points never
/// dominate.
fn cmp_means(a: &Sketch, b: &Sketch) -> std::cmp::Ordering {
    if a.count() == 0 || b.count() == 0 {
        return std::cmp::Ordering::Equal;
    }
    let lhs = a.sum() * u128::from(b.count());
    let rhs = b.sum() * u128::from(a.count());
    lhs.cmp(&rhs)
}

/// `true` if point `a` Pareto-dominates point `b`: no worse on both
/// mean irritation and mean energy, strictly better on at least one.
fn dominates(a: &TunePointSummary, b: &TunePointSummary) -> bool {
    use std::cmp::Ordering::{Greater, Less};
    let irr = cmp_means(&a.irritation, &b.irritation);
    let energy = cmp_means(&a.energy, &b.energy);
    irr != Greater && energy != Greater && (irr == Less || energy == Less)
}

/// The Pareto frontier of `points`: indices of the non-dominated
/// points, sorted by mean energy ascending (grid order on ties).
pub fn pareto_frontier(points: &[TunePointSummary]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| {
            points.iter().enumerate().all(|(j, other)| j == i || !dominates(other, &points[i]))
        })
        .collect();
    frontier.sort_by(|&a, &b| cmp_means(&points[a].energy, &points[b].energy).then(a.cmp(&b)));
    frontier
}

/// Runs a tuning sweep of `workload` in-process.
///
/// The slot grid is `points × reps`; slot `point × reps + rep` belongs
/// to shard `slot % shards` (the study sweep's round-robin rule), each
/// shard's slots are claimed from a shared counter by `workers`
/// threads, and shard partials are folded in slot order. None of that
/// shapes the result: every slot is deterministic and folding is
/// commutative, so any `(workers, shards)` produces the same outcome
/// byte for byte.
///
/// # Errors
///
/// [`TuneError::Prop`] for a rejected group, [`TuneError::Run`] if any
/// measurement fails.
pub fn run_tune(workload: &Workload, config: &TuneConfig) -> Result<TuneOutcome, TuneError> {
    let lab = Lab::with_defaults();
    let table = lab.device().config().opps.clone();
    let grid = parse_tune_group(&config.group, &table)?;
    let reference = tune_reference(&lab, workload)?;

    let slots = grid.points.len() * grid.reps as usize;
    let shards = config.shards.max(1);
    let mut summaries: Vec<TunePointSummary> = grid
        .points
        .iter()
        .map(|(point, spec)| TunePointSummary::empty(point.clone(), *spec))
        .collect();

    // Shard loop: each shard measures its owned slots independently
    // (mirroring separate agent processes), then folds in slot order.
    for shard in 0..shards {
        let owned: Vec<usize> = (0..slots).filter(|s| (*s as u32) % shards == shard).collect();
        let measured =
            measure_slots(&lab, workload, &grid.points, &reference, &owned, &grid, config)?;
        for (slot, m) in owned.iter().zip(measured.iter()) {
            summaries[slot / grid.reps as usize].fold(m);
        }
    }

    let frontier = pareto_frontier(&summaries);
    Ok(TuneOutcome {
        workload: workload.name.clone(),
        group: grid.group.to_string(),
        reps: grid.reps,
        jitter_us: grid.jitter_us,
        reference,
        points: summaries,
        frontier,
    })
}

/// Measures one shard's slot list over the worker pool, returning
/// measurements parallel to `owned`.
fn measure_slots(
    lab: &Lab,
    workload: &Workload,
    points: &[(PropPoint, GovernorSpec)],
    reference: &TuneReference,
    owned: &[usize],
    grid: &interlag_core::tune::TuneGrid,
    config: &TuneConfig,
) -> Result<Vec<TuneMeasurement>, TuneError> {
    let reps = grid.reps as usize;
    let jitter = grid.jitter_us;
    let measure = |slot: usize| -> Result<TuneMeasurement, InterlagError> {
        let (point, rep) = (slot / reps, (slot % reps) as u32);
        let spec = &points[point].1;
        measure_tune_point(lab, workload, reference, spec, rep, jitter)
    };
    let workers = config.workers.max(1).min(owned.len().max(1));
    if workers == 1 {
        return owned.iter().map(|&s| measure(s).map_err(TuneError::Run)).collect();
    }
    // The study's shared-counter work queue: workers claim the next
    // unclaimed slot until none remain; per-slot result cells avoid any
    // contention while a measurement runs.
    let next = AtomicUsize::new(0);
    let cells: Vec<Mutex<Option<Result<TuneMeasurement, InterlagError>>>> =
        owned.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let (next, cells, measure) = (&next, &cells, &measure);
        for _ in 0..workers {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&slot) = owned.get(i) else { break };
                let out = measure(slot);
                *cells[i].lock().expect("cell lock") = Some(out);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("cell lock")
                .expect("every slot was claimed")
                .map_err(TuneError::Run)
        })
        .collect()
}

/// Fixed-precision float rendering shared by both exporters: enough
/// digits to be useful, few enough to stay bit-stable (the inputs are
/// deterministic integers, so the formatted text is too).
fn ms(us: f64) -> String {
    format!("{:.3}", us / 1_000.0)
}

/// Renders the outcome as CSV: one row per grid point, frontier points
/// flagged, leading with the oracle reference row.
pub fn tune_csv(out: &TuneOutcome) -> String {
    let mut s = String::new();
    s.push_str(
        "point,governor,reps,mean_lag_ms,p95_lag_ms,mean_irritation_ms,mean_energy_mj,\
         oracle_distance,frontier\n",
    );
    s.push_str(&format!(
        "oracle,oracle,1,{},{},{},{},0.0000,reference\n",
        ms(out.reference.oracle_lag_us as f64),
        ms(out.reference.oracle_lag_us as f64),
        ms(out.reference.oracle_irritation_us as f64),
        ms(out.reference.oracle_energy_uj as f64),
    ));
    for (i, p) in out.points.iter().enumerate() {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{:.4},{}\n",
            p.point,
            p.spec.governor_name(),
            p.irritation.count(),
            ms(p.lag.mean()),
            ms(p.lag.percentile(0.95) as f64),
            ms(p.irritation.mean()),
            ms(p.energy.mean()),
            p.oracle_distance(&out.reference),
            if out.frontier.contains(&i) { "yes" } else { "no" },
        ));
    }
    s
}

/// Renders the outcome as Markdown: the Pareto frontier first, then the
/// full grid.
pub fn tune_markdown(out: &TuneOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!("# Governor tuning — {}\n\n", out.workload));
    s.push_str(&format!(
        "Grid `{}`: {} point(s) × {} repetition(s), jitter ±{} µs.\n\n",
        out.group,
        out.points.len(),
        out.reps,
        out.jitter_us,
    ));
    s.push_str(&format!(
        "Oracle reference: mean lag {} ms, irritation {} ms, energy {} mJ.\n\n",
        ms(out.reference.oracle_lag_us as f64),
        ms(out.reference.oracle_irritation_us as f64),
        ms(out.reference.oracle_energy_uj as f64),
    ));
    let row = |s: &mut String, i: usize, p: &TunePointSummary| {
        s.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {:.4} |\n",
            p.point,
            ms(p.lag.mean()),
            ms(p.irritation.mean()),
            ms(p.energy.mean()),
            if out.frontier.contains(&i) { "✓" } else { "" },
            p.oracle_distance(&out.reference),
        ));
    };
    s.push_str("## Pareto frontier (energy ascending)\n\n");
    s.push_str("| point | mean lag ms | irritation ms | energy mJ | frontier | distance |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for &i in &out.frontier {
        row(&mut s, i, &out.points[i]);
    }
    s.push_str("\n## Full grid\n\n");
    s.push_str("| point | mean lag ms | irritation ms | energy mJ | frontier | distance |\n");
    s.push_str("|---|---|---|---|---|---|\n");
    for (i, p) in out.points.iter().enumerate() {
        row(&mut s, i, p);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(point: &str, irritation: &[u64], energy: &[u64]) -> TunePointSummary {
        let mut s = TunePointSummary::empty(
            PropPoint::new([("governor", "ondemand"), ("up-threshold", point)]),
            GovernorSpec::Ondemand(Default::default()),
        );
        for (&i, &e) in irritation.iter().zip(energy) {
            s.fold(&TuneMeasurement { mean_lag_us: 1_000, irritation_us: i, energy_uj: e });
        }
        s
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points() {
        let points = vec![
            summary("60", &[10_000], &[50_000]), // dominated by 80 on both axes
            summary("80", &[5_000], &[40_000]),
            summary("95", &[20_000], &[20_000]), // cheaper but more irritating: frontier
        ];
        assert_eq!(pareto_frontier(&points), vec![2, 1], "energy ascending");
    }

    #[test]
    fn equal_points_do_not_dominate_each_other() {
        let points = vec![summary("a", &[5_000], &[9_000]), summary("b", &[5_000], &[9_000])];
        assert_eq!(pareto_frontier(&points), vec![0, 1]);
    }

    #[test]
    fn exact_mean_comparison_ignores_rep_count() {
        // 10+20 over 2 reps vs 15 over 1 rep: equal means, no domination.
        let a = summary("a", &[10_000, 20_000], &[1_000, 1_000]);
        let b = summary("b", &[15_000], &[1_000]);
        assert_eq!(cmp_means(&a.irritation, &b.irritation), std::cmp::Ordering::Equal);
        assert!(!dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }
}
