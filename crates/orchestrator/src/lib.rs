//! # interlag-orchestrator — fault-tolerant sharded sweep orchestration
//!
//! The §III study is embarrassingly parallel across its `(configuration,
//! repetition)` grid, but a single process owns every failure: one wedge,
//! one OOM kill or one torn journal and the whole sweep restarts. This
//! crate splits the sweep into *shard agent* processes supervised by a
//! retrying, watchdogged parent — the fleet analogue of the per-repetition
//! retry ladder the lab already runs:
//!
//! * [`grid`] — the sweep grid and its round-robin shard assignment,
//!   computed identically (and independently) by agent and supervisor;
//! * [`wire`] — the framed agent→supervisor protocol: CRC-framed JSON
//!   messages over stdout, resynchronised past any damaged frame;
//! * [`agent`] — one shard of a sweep run as a journalled
//!   [`Lab::study_with`](interlag_core::experiment::Lab::study_with) under
//!   a [`StudyScope`](interlag_core::experiment::StudyScope), streaming
//!   heartbeats and checkpoint records while journalling to disk;
//! * [`transport`] — how agents are dispatched: local child processes
//!   ([`ProcessTransport`]) or in-process threads ([`ThreadTransport`]),
//!   both optionally wrapped in the seeded frame-fault injector from
//!   `interlag-faults`;
//! * [`supervisor`] — the dispatch/retry/backoff state machine with
//!   heartbeat and progress watchdogs, speculative re-execution of
//!   stragglers, and graceful degradation into per-slot `Abandoned`
//!   records when a shard exhausts its budget;
//! * [`session`] — the TCP session envelope: epoch-fenced leases,
//!   per-frame sequence numbers, cumulative acks and exactly-once
//!   in-order reassembly;
//! * [`tcp`] — the multi-machine transport built on it
//!   ([`TcpTransport`]): resumable connections with seeded
//!   decorrelated-jitter reconnects, zombie fencing, and external
//!   self-registering workers for host-to-host sweeps;
//! * [`merge`] — byte-stable union of shard journals: fingerprint- and
//!   CRC-validated, quarantining anything corrupt or foreign;
//! * [`tune`] — the sharded governor-tuning sweep: tunable grids scored
//!   by (irritation, energy) distance from the oracle, merged into a
//!   Pareto frontier that is byte-identical at any worker/shard count.
//!
//! The headline invariant: **the merged report is byte-identical to a
//! single-process [`Lab::study`](interlag_core::experiment::Lab::study)
//! at any shard count and under any kill schedule the retry budget
//! absorbs.** Two properties make that cheap to guarantee: journalled
//! records are shard-independent (the scope is not part of the study
//! fingerprint), and the supervisor's last step is an ordinary local
//! `study_with` replay over the merged journal — the same replay path the
//! crash-safe resume feature already proves byte-identical.
//!
//! [`ProcessTransport`]: transport::ProcessTransport
//! [`ThreadTransport`]: transport::ThreadTransport
//! [`TcpTransport`]: tcp::TcpTransport

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod grid;
pub mod merge;
pub mod session;
pub mod supervisor;
pub mod tcp;
pub mod transport;
pub mod tune;
pub mod wire;

pub use agent::{parse_stage, run_agent, stage_name, AgentConfig, AgentReport};
pub use grid::SweepGrid;
pub use merge::{encode_merged, merge_shard_journals, MergeOutcome};
pub use session::{SeqAssembler, SessionMsg};
pub use supervisor::{retry_backoff, run_sweep, ShardOutcome, SweepConfig, SweepOutcome};
pub use tcp::{
    run_tcp_agent, run_tcp_worker, ClientPolicy, TcpAgentMode, TcpClientOpts, TcpTransport,
    WorkerTask, EXIT_FENCED, EXIT_LINK_DEAD,
};
pub use transport::{
    AgentEvent, AttemptKey, ProcessTransport, RunningShard, ShardTask, ThreadTransport, Transport,
};
pub use tune::{
    pareto_frontier, run_tune, tune_csv, tune_markdown, TuneConfig, TuneError, TuneOutcome,
    TunePointSummary,
};
pub use wire::{FrameReader, WireMsg};
