//! The sweep grid and its shard assignment.
//!
//! A study is a fixed grid of `(configuration, repetition)` slots:
//! `n_fixed` fixed frequencies (slowest first), the three kernel
//! governors, then the oracle — each run `reps` times. Sharding
//! round-robins the stage-1 slots across `of` agents and, in a second
//! wave, the oracle repetitions (the oracle's plan needs every stage-1
//! profile, so its wave can only start once stage 1 is merged).
//!
//! Everything here is pure arithmetic over
//! [`StudyScope`](interlag_core::experiment::StudyScope) so the
//! supervisor and every agent compute the *same* assignment without
//! talking to each other — the assignment is part of the protocol.

use interlag_core::experiment::{LabConfig, StudyScope, SweepStage};
use interlag_power::opp::Frequency;

/// The shape of one study's sweep grid.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// The fixed frequencies, slowest first (configs `0..n_fixed`).
    pub freqs: Vec<Frequency>,
    /// Repetitions per configuration.
    pub reps: u32,
}

/// The governor configurations after the fixed frequencies, in job order.
const GOVERNOR_NAMES: [&str; 3] = ["conservative", "interactive", "ondemand"];

impl SweepGrid {
    /// The grid a lab with this configuration will sweep.
    pub fn for_lab(config: &LabConfig) -> Self {
        SweepGrid { freqs: config.device.opps.frequencies().collect(), reps: config.reps.max(1) }
    }

    /// Number of stage-1 configurations (fixed frequencies + governors).
    pub fn stage1_configs(&self) -> usize {
        self.freqs.len() + GOVERNOR_NAMES.len()
    }

    /// The oracle's configuration index (stage 2).
    pub fn oracle_config(&self) -> usize {
        self.stage1_configs()
    }

    /// Total slots in the whole sweep, both stages.
    pub fn total_slots(&self) -> usize {
        (self.stage1_configs() + 1) * self.reps as usize
    }

    /// The configuration's display name — must match what the study loop
    /// itself names it, since synthesized placeholder records carry it.
    pub fn config_name(&self, config: usize) -> String {
        if config < self.freqs.len() {
            format!("fixed-{}", self.freqs[config])
        } else if config < self.stage1_configs() {
            GOVERNOR_NAMES[config - self.freqs.len()].to_string()
        } else {
            "oracle".to_string()
        }
    }

    /// Every slot of one stage, in `(config, rep)` order.
    pub fn stage_slots(&self, stage: SweepStage) -> Vec<(usize, u32)> {
        match stage {
            SweepStage::Stage1 => (0..self.stage1_configs())
                .flat_map(|c| (0..self.reps).map(move |r| (c, r)))
                .collect(),
            SweepStage::Oracle => (0..self.reps).map(|r| (self.oracle_config(), r)).collect(),
        }
    }

    /// The slots one scope owns — the round-robin assignment both sides
    /// of the protocol derive independently.
    pub fn slots_for(&self, scope: StudyScope) -> Vec<(usize, u32)> {
        self.stage_slots(scope.stage)
            .into_iter()
            .filter(|&(c, r)| match scope.stage {
                SweepStage::Stage1 => scope.owns_stage1(c, r, self.reps),
                SweepStage::Oracle => scope.owns_oracle(r),
            })
            .collect()
    }

    /// `true` when `(config, rep)` is a slot of this grid at all.
    pub fn contains(&self, config: usize, rep: u32) -> bool {
        config <= self.oracle_config() && rep < self.reps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid::for_lab(&LabConfig { reps: 3, ..Default::default() })
    }

    #[test]
    fn shards_partition_each_stage_exactly() {
        let g = grid();
        for stage in [SweepStage::Stage1, SweepStage::Oracle] {
            let all = g.stage_slots(stage);
            for of in [1u32, 2, 4, 8, 64] {
                let mut union: Vec<(usize, u32)> = (0..of)
                    .flat_map(|shard| g.slots_for(StudyScope { shard, of, stage }))
                    .collect();
                union.sort_unstable();
                let mut expected = all.clone();
                expected.sort_unstable();
                assert_eq!(union, expected, "stage {stage:?} of {of}");
            }
        }
    }

    #[test]
    fn stages_are_disjoint_and_cover_the_study() {
        let g = grid();
        let s1 = g.stage_slots(SweepStage::Stage1);
        let or = g.stage_slots(SweepStage::Oracle);
        assert_eq!(s1.len() + or.len(), g.total_slots());
        assert!(s1.iter().all(|&(c, _)| c < g.oracle_config()));
        assert!(or.iter().all(|&(c, _)| c == g.oracle_config()));
        assert!(s1.iter().chain(&or).all(|&(c, r)| g.contains(c, r)));
        assert!(!g.contains(g.oracle_config() + 1, 0));
        assert!(!g.contains(0, g.reps));
    }

    #[test]
    fn config_names_cover_the_paper_order() {
        let g = grid();
        assert!(g.config_name(0).starts_with("fixed-"));
        assert_eq!(g.config_name(g.freqs.len()), "conservative");
        assert_eq!(g.config_name(g.freqs.len() + 2), "ondemand");
        assert_eq!(g.config_name(g.oracle_config()), "oracle");
    }
}
