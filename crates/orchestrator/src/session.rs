//! The resumable TCP session layer: lease epochs, sequencing, acks.
//!
//! The pipe transports get their delivery guarantees for free — a pipe
//! dies exactly when its process does, so an [`AttemptKey`] on the
//! supervisor's channel is already proof of identity. TCP gives none of
//! that: connections outlive their usefulness (a zombie agent across a
//! healed partition), die while their attempt lives on (the agent
//! reconnects), and a chaos relay can reorder or duplicate whole frames.
//! This module is the envelope protocol that rebuilds those guarantees:
//!
//! * **epoch fencing** — every dispatch attempt is issued a *lease
//!   epoch*, strictly increasing per transport. Every [`SessionMsg`]
//!   frame an agent sends carries its epoch; the supervisor accepts a
//!   frame only while that epoch is still the current lease for its
//!   `(stage, shard)`. A zombie that reconnects — or whose stale frames
//!   surface after the supervisor re-dispatched the shard — is *fenced*:
//!   counted, told to die ([`SessionMsg::Revoke`]), never merged. This
//!   is the wire analogue of the merge gauntlet rejecting forged
//!   fingerprints.
//! * **sequencing and cumulative acks** — within an epoch every
//!   [`SessionMsg::Data`] frame carries a 1-based sequence number
//!   (assigned by the agent's [`SeqOutbox`]). The supervisor's
//!   [`SeqAssembler`] delivers them in order exactly once — reordered
//!   frames wait, duplicates drop — and acknowledges cumulatively, so
//!   on reconnect the agent replays precisely the unacknowledged suffix
//!   instead of restarting the shard.
//!
//! Session frames use the same CRC text framing as [`crate::wire`] (one
//! codec for disk, pipe and network), so the chaos proxy's mid-frame
//! truncation is caught by the same resynchronising [`FrameReader`].
//!
//! [`AttemptKey`]: crate::transport::AttemptKey
//! [`SeqOutbox`]: interlag_journal::SeqOutbox
//! [`FrameReader`]: crate::wire::FrameReader

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::wire::WireMsg;

/// One envelope frame on the TCP link. Agent→supervisor frames carry the
/// sender's lease epoch; supervisor→agent frames echo the epoch they
/// govern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionMsg {
    /// Agent→supervisor, first frame of every (re)connection for an
    /// assigned task: which lease this connection serves.
    Register {
        /// `"stage1"` or `"oracle"`.
        stage: String,
        /// Shard index within the wave.
        shard: u32,
        /// Total shards in the wave.
        of: u32,
        /// The dispatch attempt (0 = first).
        attempt: u32,
        /// The lease epoch this agent was dispatched under.
        epoch: u64,
        /// Highest sequence number the agent has assigned so far — the
        /// supervisor's reply [`SessionMsg::Ack`] tells it how much of
        /// that actually arrived.
        sent: u64,
    },
    /// Worker→supervisor: an idle external worker offering itself for
    /// the next pending shard task.
    Available,
    /// Supervisor→worker: a shard task assignment for an external
    /// worker, carrying everything the worker cannot derive locally.
    Assign {
        /// `"stage1"` or `"oracle"`.
        stage: String,
        /// Shard index within the wave.
        shard: u32,
        /// Total shards in the wave.
        of: u32,
        /// The dispatch attempt (0 = first).
        attempt: u32,
        /// The lease epoch governing this attempt.
        epoch: u64,
        /// Repetitions per configuration (must match the supervisor's
        /// lab for the study fingerprint to line up).
        reps: u32,
        /// Heartbeat period to run under, milliseconds.
        heartbeat_ms: u64,
        /// The seeded journal prefix (every record merged so far), as
        /// raw journal bytes: the worker writes these to its local
        /// attempt journal and replays the paid-for slots.
        seed: Vec<u8>,
    },
    /// Agent→supervisor: one wire message, sequenced within the lease.
    Data {
        /// The sender's lease epoch — the fence.
        epoch: u64,
        /// 1-based sequence number within the epoch.
        seq: u64,
        /// The payload.
        msg: WireMsg,
    },
    /// Supervisor→agent: cumulative acknowledgement — every `Data` frame
    /// with `seq <=` this has been received and absorbed. Also the
    /// immediate reply to [`SessionMsg::Register`], which makes it the
    /// resume point after a reconnect.
    Ack {
        /// The lease epoch being acknowledged.
        epoch: u64,
        /// Highest in-order sequence number absorbed.
        seq: u64,
    },
    /// Supervisor→agent: the lease is no longer current (the shard was
    /// re-dispatched, or the sweep is over). The agent must stop —
    /// anything further it sends will be fenced anyway.
    Revoke {
        /// The revoked epoch.
        epoch: u64,
    },
    /// Supervisor→worker: no more tasks will come; disconnect cleanly.
    Drain,
}

/// Receiver-side in-order delivery within one lease epoch.
///
/// Chaos can reorder and duplicate whole frames; retransmission after a
/// reconnect re-sends everything unacknowledged, including frames that
/// did arrive but whose acks were lost. The assembler makes delivery
/// exactly-once and in-order: a frame is delivered when it is the next
/// expected sequence number, buffered while it is early, and dropped
/// while it is late (already delivered) or a duplicate of a buffered
/// frame.
#[derive(Debug, Default)]
pub struct SeqAssembler {
    delivered: u64,
    pending: BTreeMap<u64, WireMsg>,
    duplicates: u64,
}

impl SeqAssembler {
    /// An assembler expecting sequence number 1 first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers one received frame; returns every message now deliverable,
    /// in sequence order.
    pub fn offer(&mut self, seq: u64, msg: WireMsg) -> Vec<WireMsg> {
        if seq <= self.delivered || self.pending.contains_key(&seq) {
            self.duplicates += 1;
            return Vec::new();
        }
        self.pending.insert(seq, msg);
        let mut out = Vec::new();
        while let Some(msg) = self.pending.remove(&(self.delivered + 1)) {
            self.delivered += 1;
            out.push(msg);
        }
        out
    }

    /// Highest in-order sequence number delivered — the cumulative ack
    /// level.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Frames dropped as duplicates (retransmission overlap, chaos
    /// duplication).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames buffered waiting for an earlier one to arrive.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(seq: u64) -> WireMsg {
        WireMsg::Heartbeat { seq, completed: 0 }
    }

    #[test]
    fn in_order_frames_deliver_immediately() {
        let mut a = SeqAssembler::new();
        assert_eq!(a.offer(1, hb(1)), vec![hb(1)]);
        assert_eq!(a.offer(2, hb(2)), vec![hb(2)]);
        assert_eq!(a.delivered(), 2);
        assert_eq!(a.duplicates(), 0);
    }

    #[test]
    fn reordered_frames_wait_and_release_in_order() {
        let mut a = SeqAssembler::new();
        assert!(a.offer(2, hb(2)).is_empty());
        assert!(a.offer(3, hb(3)).is_empty());
        assert_eq!(a.buffered(), 2);
        // The missing head releases the whole run.
        assert_eq!(a.offer(1, hb(1)), vec![hb(1), hb(2), hb(3)]);
        assert_eq!(a.delivered(), 3);
        assert_eq!(a.buffered(), 0);
    }

    #[test]
    fn duplicates_are_dropped_delivered_or_buffered() {
        let mut a = SeqAssembler::new();
        a.offer(1, hb(1));
        assert!(a.offer(1, hb(1)).is_empty(), "already delivered");
        assert!(a.offer(3, hb(3)).is_empty(), "early, buffered");
        assert!(a.offer(3, hb(3)).is_empty(), "duplicate of buffered");
        assert_eq!(a.duplicates(), 2);
        assert_eq!(a.offer(2, hb(2)), vec![hb(2), hb(3)]);
    }

    #[test]
    fn retransmission_overlap_is_exactly_once() {
        // A reconnect replays 1..=4 after only 1..=2 were acked: the
        // receiver must deliver 3..=4 once and drop the rest.
        let mut a = SeqAssembler::new();
        for s in 1..=2 {
            a.offer(s, hb(s));
        }
        let mut delivered = Vec::new();
        for s in 1..=4 {
            delivered.extend(a.offer(s, hb(s)));
        }
        assert_eq!(delivered, vec![hb(3), hb(4)]);
        assert_eq!(a.delivered(), 4);
    }

    #[test]
    fn session_msgs_round_trip_through_wire_framing() {
        use crate::wire::{encode_frame, FrameReader};
        let msgs = vec![
            SessionMsg::Register {
                stage: "stage1".into(),
                shard: 1,
                of: 4,
                attempt: 0,
                epoch: 7,
                sent: 42,
            },
            SessionMsg::Available,
            SessionMsg::Data { epoch: 7, seq: 43, msg: hb(9) },
            SessionMsg::Ack { epoch: 7, seq: 43 },
            SessionMsg::Revoke { epoch: 6 },
            SessionMsg::Drain,
        ];
        let bytes: Vec<u8> = msgs.iter().flat_map(encode_frame).collect();
        let mut r: FrameReader<SessionMsg> = FrameReader::new();
        assert_eq!(r.push(&bytes), msgs);
        assert_eq!(r.garbage(), 0);
    }
}
