//! The sweep supervisor: dispatch, watch, retry, merge, replay.
//!
//! [`run_sweep`] partitions the study grid across `shards` agents per
//! wave (stage 1, then — once stage 1 is merged — the oracle wave,
//! whose frequency plan needs every stage-1 profile), dispatches them
//! over a [`Transport`], and supervises each to completion:
//!
//! * **watchdogs** — an attempt that stops heartbeating is presumed
//!   dead; one that heartbeats but stops producing accepted checkpoints
//!   is wedged. Both are killed and classified.
//! * **retry with backoff** — a failed shard is re-dispatched after a
//!   seeded decorrelated-jitter delay ([`retry_backoff`]: exponential
//!   envelope in `[backoff_base, backoff_cap]`, deterministic per
//!   `(seed, shard, attempt)`, spread across shards), at most
//!   [`SweepConfig::retry_budget`] times, each new attempt's journal
//!   pre-seeded with every record merged so far so paid-for work
//!   replays instead of recomputing.
//! * **speculation** — an attempt that outlives
//!   [`SweepConfig::speculate_after`] gets a twin; the first attempt to
//!   complete the shard's coverage wins and the loser is killed.
//! * **graceful degradation** — a shard that exhausts its budget is
//!   abandoned; its missing slots are synthesised as
//!   [`RepOutcome::Abandoned`] with a [`ShardFailure`] cause, so the
//!   merged report carries per-repetition causes instead of holes.
//!
//! The wave's records — streamed checkpoints plus every attempt journal
//! salvaged from disk — pass the merge gauntlet of
//! [`MergeOutcome`](crate::merge::MergeOutcome), are written as one
//! slot-ordered merged journal, and a final *local* [`Lab::study_with`]
//! replays it. Replayed repetitions are bit-exact and the irritation
//! pass runs identically on the replay path, so the merged report is
//! **byte-identical** to a single-process [`Lab::study`] at any shard
//! count, under any kill schedule the retry budget absorbs.

use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use interlag_core::checkpoint::{
    study_fingerprint, CheckpointFormat, CheckpointRecord, StudyJournal,
};
use interlag_core::error::{InterlagError, ShardFailure};
use interlag_core::experiment::{
    placeholder_result, Lab, LabConfig, RepOutcome, StudyOptions, StudyResult, StudyScope,
    SweepStage,
};
use interlag_db::{device_model, seal_submission, SubmissionManifest, SUBMISSION_SCHEMA};
use interlag_evdev::rng::SplitMix64;
use interlag_journal::atomic_write;
use interlag_obs::{Counter, Recorder};
use interlag_workloads::gen::Workload;

use crate::agent::stage_name;
use crate::grid::SweepGrid;
use crate::merge::{encode_merged, MergeOutcome};
use crate::transport::{AgentEvent, AttemptKey, RunningShard, ShardTask, Transport};
use crate::wire::WireMsg;

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Agents per wave (each wave is partitioned across all of them).
    pub shards: u32,
    /// Directory for per-attempt shard journals and the merged journal.
    pub journal_dir: PathBuf,
    /// Re-dispatches allowed per shard after its first attempt
    /// (speculative twins also draw from this budget).
    pub retry_budget: u32,
    /// Heartbeat silence after which an attempt is presumed dead.
    pub heartbeat_timeout: Duration,
    /// Checkpoint-progress silence after which an attempt is wedged.
    pub progress_timeout: Duration,
    /// Floor of the retry delay (the first attempt's jitter window
    /// starts here).
    pub backoff_base: Duration,
    /// Ceiling on the retry delay.
    pub backoff_cap: Duration,
    /// Seed for the decorrelated retry jitter. Every `(seed, shard,
    /// attempt)` triple maps to one fixed delay, so sweeps replay
    /// exactly, but simultaneous shard failures draw from disjoint
    /// streams and do not re-dispatch in lockstep.
    pub backoff_seed: u64,
    /// Age at which a sole healthy attempt gets a speculative twin;
    /// `None` disables speculation.
    pub speculate_after: Option<Duration>,
    /// On-disk format for shard and merged journals.
    pub format: CheckpointFormat,
    /// Property-group bindings this sweep runs under, as canonical
    /// `key=value` strings (e.g. `jitter-us=1500`, `reps=5`). Recorded
    /// verbatim in the sealed submission manifest so fleet results land
    /// in the database under the declared matrix point.
    pub props: Vec<String>,
}

impl SweepConfig {
    /// Production-shaped defaults for `shards` agents journalling under
    /// `journal_dir`.
    pub fn new(shards: u32, journal_dir: impl Into<PathBuf>) -> Self {
        SweepConfig {
            shards: shards.max(1),
            journal_dir: journal_dir.into(),
            retry_budget: 2,
            heartbeat_timeout: Duration::from_secs(5),
            progress_timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            backoff_seed: 0,
            speculate_after: None,
            format: CheckpointFormat::Binary,
            props: Vec::new(),
        }
    }

    fn ext(&self) -> &'static str {
        match self.format {
            CheckpointFormat::Json => "jsonl",
            CheckpointFormat::Binary => "journal",
        }
    }
}

/// How one shard of one wave ended.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The wave.
    pub stage: SweepStage,
    /// The shard within the wave.
    pub shard: u32,
    /// Dispatch attempts used (including the first and any twin).
    pub attempts: u32,
    /// Per-failed-attempt classifications, in order.
    pub failures: Vec<ShardFailure>,
    /// `Some` if the retry budget ran out before coverage.
    pub abandoned: Option<ShardFailure>,
    /// `true` if a speculative twin, not the original, completed it.
    pub speculative_win: bool,
}

/// The result of a supervised sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged study — byte-identical to a single-process
    /// [`Lab::study`] unless `degraded`.
    pub study: StudyResult,
    /// `true` if any shard was abandoned: the report is complete but
    /// some repetitions carry synthesised [`RepOutcome::Abandoned`]
    /// placeholders instead of measurements.
    pub degraded: bool,
    /// Per-shard post-mortems, stage 1 first.
    pub shards: Vec<ShardOutcome>,
    /// Records and frames rejected by the merge gauntlet or damaged on
    /// the wire.
    pub quarantined: u64,
    /// Torn framing fragments dropped from salvaged shard journals.
    pub torn: u64,
    /// Well-formed duplicate records (normal under retries and twins).
    pub duplicates: u64,
    /// The merged, slot-ordered journal the final replay consumed.
    pub merged_journal: PathBuf,
    /// The sealed submission artifact (manifest + merged records) ready
    /// for `interlag db ingest`.
    pub submission: PathBuf,
}

const TICK: Duration = Duration::from_millis(20);

/// Runs the whole sweep: two supervised waves, a byte-stable merge, a
/// final local replay.
///
/// # Errors
///
/// I/O errors dispatching agents or writing journals, and study errors
/// from the final replay. Agent deaths, wire damage and exhausted
/// budgets are *not* errors — they degrade the outcome instead.
pub fn run_sweep(
    workload: &Workload,
    lab: LabConfig,
    transport: &mut dyn Transport,
    cfg: &SweepConfig,
) -> Result<SweepOutcome, Box<dyn std::error::Error + Send + Sync>> {
    std::fs::create_dir_all(&cfg.journal_dir)?;
    let trace = workload.script.record_trace();
    let fingerprint = study_fingerprint(&trace.to_getevent_text(), &lab);
    let grid = SweepGrid::for_lab(&lab);
    let obs = lab.obs.clone();
    let mut merged = MergeOutcome::new();
    let mut shards = Vec::new();

    for stage in [SweepStage::Stage1, SweepStage::Oracle] {
        let mut wave = Wave::new(stage, &grid, fingerprint, cfg, &obs);
        wave.run(transport, &mut merged)?;
        // Fill the holes an abandoned shard left *before* the next wave
        // seeds from the merge: oracle agents and the final replay must
        // see the same stage-1 journal, synthesised placeholders and all.
        synthesize_missing(&grid, &wave.shards, &mut merged, fingerprint);
        shards.extend(wave.into_outcomes());
    }

    let merged_path = cfg.journal_dir.join(format!("merged.{}", cfg.ext()));
    atomic_write(&merged_path, encode_merged(&merged.records, cfg.format))?;

    // Seal the merged records into a submission artifact: the same
    // record bytes as the merged journal, prefixed with a provenance
    // manifest, ready for `interlag db ingest` on any machine.
    let submission_path = cfg.journal_dir.join("submission.sub");
    let manifest = SubmissionManifest {
        schema: SUBMISSION_SCHEMA.to_string(),
        fingerprint,
        device_model: device_model(&lab),
        workload: workload.name.clone(),
        reps: grid.reps,
        configs: (0..=grid.oracle_config()).map(|c| grid.config_name(c)).collect(),
        records: 0, // stamped by seal_submission
        props: cfg.props.clone(),
    };
    atomic_write(&submission_path, seal_submission(&manifest, &merged.records, cfg.format))?;

    let journal = StudyJournal::resume(&merged_path, fingerprint)?;
    let study = Lab::new(lab).study_with(
        workload,
        StudyOptions { journal: Some(&journal), trace: Some(trace), scope: None },
    )?;
    let degraded = shards.iter().any(|s| s.abandoned.is_some());
    Ok(SweepOutcome {
        study,
        degraded,
        shards,
        quarantined: merged.quarantined,
        torn: merged.torn,
        duplicates: merged.duplicates,
        merged_journal: merged_path,
        submission: submission_path,
    })
}

/// One dispatch attempt the supervisor is tracking.
struct LiveAttempt {
    attempt: u32,
    handle: RunningShard,
    dispatched: Instant,
    last_heartbeat: Instant,
    last_progress: Instant,
    speculative: bool,
    /// Set by a watchdog (or a foreign Hello) when the supervisor kills
    /// the attempt, so the eventual `Exited` is classified correctly.
    killed_as: Option<ShardFailure>,
}

/// One shard's supervision state across its attempts.
struct ShardState {
    scope: StudyScope,
    slots: Vec<(usize, u32)>,
    attempts_used: u32,
    live: Vec<LiveAttempt>,
    retry_at: Option<Instant>,
    failures: Vec<ShardFailure>,
    abandoned: Option<ShardFailure>,
    done: bool,
    speculated: bool,
    speculative_win: bool,
}

impl ShardState {
    fn terminal(&self) -> bool {
        self.done || self.abandoned.is_some()
    }

    fn covered(&self, merged: &MergeOutcome) -> bool {
        self.slots.iter().all(|k| merged.records.contains_key(k))
    }
}

struct Wave<'a> {
    stage: SweepStage,
    fingerprint: u64,
    cfg: &'a SweepConfig,
    obs: &'a Recorder,
    shards: Vec<ShardState>,
}

impl<'a> Wave<'a> {
    fn new(
        stage: SweepStage,
        grid: &'a SweepGrid,
        fingerprint: u64,
        cfg: &'a SweepConfig,
        obs: &'a Recorder,
    ) -> Self {
        let shards = (0..cfg.shards)
            .map(|shard| {
                let scope = StudyScope { shard, of: cfg.shards, stage };
                ShardState {
                    scope,
                    slots: grid.slots_for(scope),
                    attempts_used: 0,
                    live: Vec::new(),
                    retry_at: None,
                    failures: Vec::new(),
                    abandoned: None,
                    done: false,
                    speculated: false,
                    speculative_win: false,
                }
            })
            .collect();
        Wave { stage, fingerprint, cfg, obs, shards }
    }

    fn attempt_path(&self, shard: u32, attempt: u32) -> PathBuf {
        self.cfg.journal_dir.join(format!(
            "shard-{}-{shard}-a{attempt}.{}",
            stage_name(self.stage),
            self.cfg.ext()
        ))
    }

    fn run(
        &mut self,
        transport: &mut dyn Transport,
        merged: &mut MergeOutcome,
    ) -> std::io::Result<()> {
        let (tx, rx) = mpsc::channel();
        for i in 0..self.shards.len() {
            if self.shards[i].slots.is_empty() {
                // More shards than slots: this one was born with nothing
                // to do.
                self.shards[i].done = true;
                continue;
            }
            self.dispatch(i, false, transport, merged, &tx)?;
        }
        while !self.shards.iter().all(ShardState::terminal) {
            match rx.recv_timeout(TICK) {
                Ok((key, event)) => self.handle(key, event, merged)?,
                Err(RecvTimeoutError::Timeout) => {}
                // Unreachable while `tx` lives above, but never worth a
                // hang if that changes.
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.tick(transport, merged, &tx)?;
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        i: usize,
        speculative: bool,
        transport: &mut dyn Transport,
        merged: &MergeOutcome,
        tx: &Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<()> {
        let scope = self.shards[i].scope;
        let attempt = self.shards[i].attempts_used;
        let path = self.attempt_path(scope.shard, attempt);
        // Seed with every record merged so far: the agent replays the
        // whole cached prefix — its predecessors' paid-for slots, and in
        // the oracle wave the merged stage 1 its plan derives from.
        atomic_write(&path, encode_merged(&merged.records, self.cfg.format))?;
        let task = ShardTask { scope, attempt, journal_path: path };
        let handle = transport.dispatch(&task, tx.clone())?;
        let now = Instant::now();
        let s = &mut self.shards[i];
        s.attempts_used += 1;
        s.retry_at = None;
        s.live.push(LiveAttempt {
            attempt,
            handle,
            dispatched: now,
            last_heartbeat: now,
            last_progress: now,
            speculative,
            killed_as: None,
        });
        self.obs.count(Counter::ShardsDispatched, 1);
        Ok(())
    }

    fn handle(
        &mut self,
        key: AttemptKey,
        event: AgentEvent,
        merged: &mut MergeOutcome,
    ) -> std::io::Result<()> {
        if key.stage != self.stage || key.shard as usize >= self.shards.len() {
            return Ok(());
        }
        let i = key.shard as usize;
        match event {
            AgentEvent::Msg(WireMsg::Hello { fingerprint, .. }) => {
                let expected = self.fingerprint;
                let s = &mut self.shards[i];
                if let Some(a) = s.live.iter_mut().find(|a| a.attempt == key.attempt) {
                    a.last_heartbeat = Instant::now();
                    if fingerprint != expected && a.killed_as.is_none() {
                        // The agent is sweeping a different study:
                        // everything it would send is foreign.
                        a.killed_as = Some(ShardFailure::Corrupt);
                        a.handle.kill();
                    }
                }
            }
            AgentEvent::Msg(WireMsg::Heartbeat { .. }) | AgentEvent::Msg(WireMsg::Done { .. }) => {
                let s = &mut self.shards[i];
                if let Some(a) = s.live.iter_mut().find(|a| a.attempt == key.attempt) {
                    a.last_heartbeat = Instant::now();
                }
            }
            AgentEvent::Msg(WireMsg::Checkpoint { record, .. }) => {
                let accepted = self.absorb(
                    i,
                    |m| {
                        m.absorb_record(record, self.fingerprint, |c, r| {
                            self.shards[i].slots.contains(&(c, r))
                        })
                    },
                    merged,
                );
                let spec = {
                    let s = &mut self.shards[i];
                    match s.live.iter_mut().find(|a| a.attempt == key.attempt) {
                        Some(a) => {
                            a.last_heartbeat = Instant::now();
                            if accepted {
                                a.last_progress = Instant::now();
                            }
                            a.speculative
                        }
                        None => false,
                    }
                };
                if accepted {
                    self.finish_if_covered(i, merged, spec);
                }
            }
            AgentEvent::Garbage => {
                // A frame damaged beyond the CRC: quarantined wire data.
                merged.quarantined += 1;
                self.obs.count(Counter::ShardRecordsQuarantined, 1);
            }
            AgentEvent::Exited { clean } => self.on_exit(i, key.attempt, clean, merged),
        }
        Ok(())
    }

    /// Runs one merge operation, translating its quarantine delta into
    /// the observability counter.
    fn absorb<T>(
        &self,
        _shard: usize,
        op: impl FnOnce(&mut MergeOutcome) -> T,
        merged: &mut MergeOutcome,
    ) -> T {
        let before = merged.quarantined;
        let out = op(merged);
        if merged.quarantined > before {
            self.obs.count(Counter::ShardRecordsQuarantined, merged.quarantined - before);
        }
        out
    }

    fn finish_if_covered(&mut self, i: usize, merged: &MergeOutcome, winner_speculative: bool) {
        if self.shards[i].terminal() || !self.shards[i].covered(merged) {
            return;
        }
        let s = &mut self.shards[i];
        s.done = true;
        s.retry_at = None;
        if winner_speculative {
            s.speculative_win = true;
            self.obs.count(Counter::SpeculativeWins, 1);
        }
        // Stragglers and speculative losers are no longer needed.
        for a in &mut s.live {
            a.handle.kill();
        }
    }

    fn on_exit(&mut self, i: usize, attempt: u32, clean: bool, merged: &mut MergeOutcome) {
        let gone = {
            let s = &mut self.shards[i];
            s.live.iter().position(|a| a.attempt == attempt).map(|p| s.live.remove(p))
        };
        // Salvage the attempt's journal from disk: durable records
        // survive any wire damage and any death, including records whose
        // frames were dropped or mangled in flight.
        let path = self.attempt_path(self.shards[i].scope.shard, attempt);
        if let Ok(bytes) = std::fs::read(&path) {
            self.absorb(
                i,
                |m| {
                    m.absorb_journal(&bytes, self.fingerprint, |c, r| {
                        self.shards[i].slots.contains(&(c, r))
                    });
                },
                merged,
            );
        }
        let speculative = gone.as_ref().is_some_and(|a| a.speculative);
        self.finish_if_covered(i, merged, speculative);
        let budget = self.cfg.retry_budget;
        let backoff = retry_backoff(
            self.cfg.backoff_base,
            self.cfg.backoff_cap,
            self.cfg.backoff_seed,
            self.shards[i].scope.shard,
            self.shards[i].attempts_used,
        );
        let s = &mut self.shards[i];
        if s.terminal() {
            return;
        }
        let failure = gone.and_then(|a| a.killed_as).unwrap_or(if clean {
            // A voluntary exit that still left slots uncovered: the
            // journal it returned never yielded the records it owed.
            ShardFailure::Corrupt
        } else {
            ShardFailure::Crashed
        });
        s.failures.push(failure);
        if !s.live.is_empty() {
            // A twin is still racing; no retry decision yet.
            return;
        }
        if s.attempts_used <= budget {
            s.retry_at = Some(Instant::now() + backoff);
        } else {
            s.abandoned = Some(failure);
            self.obs.count(Counter::ShardsAbandoned, 1);
        }
    }

    fn tick(
        &mut self,
        transport: &mut dyn Transport,
        merged: &MergeOutcome,
        tx: &Sender<(AttemptKey, AgentEvent)>,
    ) -> std::io::Result<()> {
        let now = Instant::now();
        for i in 0..self.shards.len() {
            if self.shards[i].terminal() {
                continue;
            }
            let hb = self.cfg.heartbeat_timeout;
            let pg = self.cfg.progress_timeout;
            let mut heartbeats_missed = 0;
            for a in &mut self.shards[i].live {
                if a.killed_as.is_some() {
                    continue;
                }
                if now.saturating_duration_since(a.last_heartbeat) > hb {
                    // Presumed dead: the pipe went silent.
                    a.killed_as = Some(ShardFailure::Crashed);
                    heartbeats_missed += 1;
                    a.handle.kill();
                } else if now.saturating_duration_since(a.last_progress) > pg {
                    // Alive but stuck: heartbeats without checkpoints.
                    a.killed_as = Some(ShardFailure::Wedged);
                    a.handle.kill();
                }
            }
            if heartbeats_missed > 0 {
                self.obs.count(Counter::HeartbeatsMissed, heartbeats_missed);
            }
            if let Some(at) = self.shards[i].retry_at {
                if now >= at && self.shards[i].live.is_empty() {
                    self.obs.count(Counter::ShardsRetried, 1);
                    self.dispatch(i, false, transport, merged, tx)?;
                }
            }
            if let Some(after) = self.cfg.speculate_after {
                let s = &self.shards[i];
                if !s.speculated
                    && s.live.len() == 1
                    && s.live[0].killed_as.is_none()
                    && now.saturating_duration_since(s.live[0].dispatched) > after
                    && s.attempts_used <= self.cfg.retry_budget
                {
                    self.shards[i].speculated = true;
                    self.dispatch(i, true, transport, merged, tx)?;
                }
            }
        }
        Ok(())
    }

    fn into_outcomes(self) -> Vec<ShardOutcome> {
        let stage = self.stage;
        self.shards
            .into_iter()
            .map(|s| ShardOutcome {
                stage,
                shard: s.scope.shard,
                attempts: s.attempts_used,
                failures: s.failures,
                abandoned: s.abandoned,
                speculative_win: s.speculative_win,
            })
            .collect()
    }
}

/// The deterministic retry delay before dispatch attempt
/// `attempts_used + 1` (so `failed_attempts` ≥ 1): decorrelated jitter,
/// seeded.
///
/// Pure exponential backoff re-dispatches simultaneous failures in
/// lockstep — after a partition heals or a host OOM-kills every agent at
/// once, all shards hammer the transport at the same instant, every
/// round. This is the standard fix ("exponential backoff and jitter",
/// decorrelated variant): each step draws uniformly from
/// `[base, 3 · previous)` and clamps to `[base, cap]`. The draw chain is
/// a [`SplitMix64`] stream derived from `(seed, shard)` and iterated
/// `failed_attempts` times, so the delay is a pure function of
/// `(seed, shard, attempt)` — sweeps replay exactly — while distinct
/// shards (and distinct attempts) spread out.
pub fn retry_backoff(
    base: Duration,
    cap: Duration,
    seed: u64,
    shard: u32,
    failed_attempts: u32,
) -> Duration {
    let base = base.max(Duration::from_micros(1));
    let cap = cap.max(base);
    let mut rng =
        SplitMix64::new(seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xbac_c0ff);
    let lo = base.as_nanos() as u64;
    let mut sleep = base;
    for _ in 0..failed_attempts.clamp(1, 32) {
        let hi = (sleep.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let pick = lo + rng.next_u64() % (hi - lo);
        sleep = Duration::from_nanos(pick).min(cap);
    }
    sleep
}

/// Synthesises [`RepOutcome::Abandoned`] placeholder records for every
/// slot an abandoned shard failed to deliver, carrying the shard's
/// failure as the per-repetition cause.
fn synthesize_missing(
    grid: &SweepGrid,
    shards: &[ShardState],
    merged: &mut MergeOutcome,
    fingerprint: u64,
) {
    for s in shards {
        let Some(failure) = s.abandoned else { continue };
        for &(config, rep) in &s.slots {
            if merged.records.contains_key(&(config, rep)) {
                continue;
            }
            let name = grid.config_name(config);
            let outcome = RepOutcome::Abandoned {
                attempts: s.attempts_used.max(1),
                cause: InterlagError::Shard { failure },
            };
            let record = CheckpointRecord::new(
                fingerprint,
                config,
                rep,
                &placeholder_result(&name),
                &outcome,
            );
            merged.records.insert((config, rep), record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_shard_attempt() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        for seed in [0u64, 1, 0x5eed] {
            for shard in 0..6u32 {
                for attempt in 1..8u32 {
                    let a = retry_backoff(base, cap, seed, shard, attempt);
                    let b = retry_backoff(base, cap, seed, shard, attempt);
                    assert_eq!(a, b, "seed {seed} shard {shard} attempt {attempt}");
                    assert!(a >= base && a <= cap, "{a:?} outside [{base:?}, {cap:?}]");
                }
            }
        }
        // Huge attempt counts stay finite, in-envelope and deterministic.
        let big = retry_backoff(base, cap, 7, 3, u32::MAX);
        assert_eq!(big, retry_backoff(base, cap, 7, 3, u32::MAX));
        assert!(big >= base && big <= cap);
    }

    #[test]
    fn backoff_decorrelates_simultaneous_shard_failures() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        // The whole point: shards failing at the same instant on the
        // same attempt number must not all pick the same delay.
        let delays: Vec<Duration> =
            (0..8u32).map(|shard| retry_backoff(base, cap, 0x5eed, shard, 2)).collect();
        let mut unique = delays.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() > 1, "all shards re-dispatch in lockstep: {delays:?}");
        // And a different seed reshuffles the schedule.
        let other: Vec<Duration> =
            (0..8u32).map(|shard| retry_backoff(base, cap, 0xd1ce, shard, 2)).collect();
        assert_ne!(delays, other);
    }

    #[test]
    fn abandoned_shards_synthesize_causal_placeholders() {
        let grid = SweepGrid::for_lab(&LabConfig { reps: 2, ..Default::default() });
        let scope = StudyScope { shard: 0, of: 2, stage: SweepStage::Stage1 };
        let shard = ShardState {
            scope,
            slots: grid.slots_for(scope),
            attempts_used: 3,
            live: Vec::new(),
            retry_at: None,
            failures: vec![ShardFailure::Crashed; 3],
            abandoned: Some(ShardFailure::Crashed),
            done: false,
            speculated: false,
            speculative_win: false,
        };
        let mut merged = MergeOutcome::new();
        // One slot was salvaged before the budget ran out.
        let salvaged = shard.slots[0];
        merged.records.insert(
            salvaged,
            CheckpointRecord::new(
                9,
                salvaged.0,
                salvaged.1,
                &placeholder_result("x"),
                &interlag_core::experiment::RepOutcome::Ok,
            ),
        );
        synthesize_missing(&grid, &[shard], &mut merged, 9);
        let scope_slots = grid.slots_for(scope);
        assert!(scope_slots.iter().all(|k| merged.records.contains_key(k)));
        // The salvaged slot was not overwritten.
        assert!(matches!(decodeable_outcome(&merged, salvaged), RepOutcome::Ok));
        let synthesized = scope_slots.iter().find(|&&k| k != salvaged).unwrap();
        match decodeable_outcome(&merged, *synthesized) {
            RepOutcome::Abandoned { attempts: 3, cause: InterlagError::Shard { failure } } => {
                assert_eq!(failure, ShardFailure::Crashed);
            }
            other => panic!("expected a shard-cause abandonment, got {other:?}"),
        }
    }

    fn decodeable_outcome(merged: &MergeOutcome, slot: (usize, u32)) -> RepOutcome {
        merged.records[&slot].clone().into_parts().3
    }
}
