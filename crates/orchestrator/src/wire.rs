//! The agent→supervisor wire protocol.
//!
//! Agents speak a line-oriented stream of CRC-framed JSON messages over
//! stdout, using `interlag-journal`'s *text* framing (`len crc payload\n`)
//! so one codec covers both the on-disk journal and the pipe. The
//! supervisor feeds raw pipe bytes into a [`FrameReader`], which
//! resynchronises on newlines: a dropped, truncated or bit-flipped frame
//! damages exactly the lines it touches — counted, quarantined, never
//! misparsed — and decoding resumes at the next intact frame.

use interlag_core::checkpoint::CheckpointRecord;
use interlag_journal::{decode_records, encode_record};
use serde::{Deserialize, Serialize};

/// One protocol message. Every variant is idempotent or slot-keyed, so
/// duplicated frames are harmless and dropped frames cost only latency
/// (the on-disk shard journal remains the durable source of truth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMsg {
    /// First message of a dispatch: who I am and what I'm sweeping.
    /// A fingerprint mismatch means the agent is running a different
    /// study than the supervisor thinks — everything it sends is foreign.
    Hello {
        /// Shard index within the wave.
        shard: u32,
        /// Total shards in the wave.
        of: u32,
        /// `"stage1"` or `"oracle"`.
        stage: String,
        /// The agent's `study_fingerprint` of its trace and lab config.
        fingerprint: u64,
    },
    /// Liveness beacon, sent on a timer from a dedicated thread — flows
    /// even when the study worker wedges, which is exactly how the
    /// supervisor tells a wedge (progress watchdog) from a death
    /// (heartbeat watchdog).
    Heartbeat {
        /// Monotonic per-attempt sequence number.
        seq: u64,
        /// Repetitions journalled so far this attempt.
        completed: u32,
    },
    /// One journalled repetition, streamed right after its durable
    /// append.
    Checkpoint {
        /// The record's checkpoint sequence number: 1-based append count
        /// within this attempt's journal session. The TCP session layer
        /// acknowledges these cumulatively, so a reconnecting agent can
        /// replay from the supervisor's high-water mark instead of
        /// restarting the shard.
        seq: u64,
        /// The journalled record itself.
        record: CheckpointRecord,
    },
    /// The shard finished its slots; final counts for the supervisor's
    /// coverage check.
    Done {
        /// Repetitions this attempt journalled (new, not replayed).
        completed: u32,
        /// Journal appends that failed on the agent side.
        write_errors: u32,
    },
}

/// Encodes one message as a framed line (with trailing newline).
pub fn encode_msg(msg: &WireMsg) -> Vec<u8> {
    encode_frame(msg)
}

/// Encodes any serialisable message as a framed line — the same codec
/// for [`WireMsg`] and the TCP session layer's envelope messages.
pub fn encode_frame<T: Serialize>(msg: &T) -> Vec<u8> {
    let payload = serde_json::to_string(msg).expect("wire messages always serialise");
    encode_record(payload.as_bytes()).expect("JSON payloads are line-safe")
}

/// Incremental decoder for the supervisor's end of the pipe.
///
/// Push raw bytes in as they arrive; complete, checksum-valid frames come
/// out as decoded messages (`T` defaults to [`WireMsg`]; the TCP session
/// layer instantiates it with its envelope type). Damaged lines are
/// counted in [`FrameReader::garbage`] and skipped; an incomplete
/// trailing line is held until its newline arrives.
#[derive(Debug)]
pub struct FrameReader<T = WireMsg> {
    buf: Vec<u8>,
    garbage: u64,
    _msg: std::marker::PhantomData<fn() -> T>,
}

impl<T> Default for FrameReader<T> {
    fn default() -> Self {
        FrameReader { buf: Vec::new(), garbage: 0, _msg: std::marker::PhantomData }
    }
}

impl<T: serde::de::DeserializeOwned> FrameReader<T> {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes in; returns every message completed by them.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<T> {
        self.buf.extend_from_slice(bytes);
        let mut msgs = Vec::new();
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            if line.len() == 1 {
                continue; // bare newline: torn remnant, nothing to count
            }
            let decoded = decode_records(&line);
            match decoded.records.first() {
                Some(payload) if decoded.torn == 0 => {
                    match std::str::from_utf8(payload)
                        .ok()
                        .and_then(|text| serde_json::from_str::<T>(text).ok())
                    {
                        Some(msg) => msgs.push(msg),
                        None => self.garbage += 1,
                    }
                }
                _ => self.garbage += 1,
            }
        }
        msgs
    }

    /// Damaged or unparseable frames skipped so far.
    pub fn garbage(&self) -> u64 {
        self.garbage
    }

    /// Bytes held back waiting for a newline (a torn tail if the stream
    /// has ended).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(seq: u64) -> WireMsg {
        WireMsg::Heartbeat { seq, completed: seq as u32 }
    }

    #[test]
    fn messages_round_trip_through_split_deliveries() {
        let msgs = vec![
            WireMsg::Hello { shard: 2, of: 4, stage: "stage1".into(), fingerprint: 0xfeed },
            heartbeat(1),
            WireMsg::Done { completed: 5, write_errors: 0 },
        ];
        let bytes: Vec<u8> = msgs.iter().flat_map(encode_msg).collect();
        // Deliver one byte at a time: framing must not depend on chunking.
        let mut r: FrameReader = FrameReader::new();
        let mut out = Vec::new();
        for b in &bytes {
            out.extend(r.push(std::slice::from_ref(b)));
        }
        assert_eq!(out, msgs);
        assert_eq!(r.garbage(), 0);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn damaged_frames_are_skipped_and_counted() {
        let mut r: FrameReader = FrameReader::new();
        let mut bytes = encode_msg(&heartbeat(1));
        // A torn frame: its tail (and terminator) lost, the next frame's
        // bytes running straight on — exactly what FrameFate::Truncate
        // produces. Resync is per *line*, so the frame sharing the torn
        // frame's line is collateral damage; decoding resumes at the
        // next line.
        let torn = encode_msg(&heartbeat(2));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        bytes.extend(encode_msg(&heartbeat(3)));
        // A bit flip inside an otherwise intact frame.
        let mut flipped = encode_msg(&heartbeat(4));
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        bytes.extend(&flipped);
        bytes.extend(encode_msg(&heartbeat(5)));
        let out = r.push(&bytes);
        assert_eq!(out, vec![heartbeat(1), heartbeat(5)]);
        assert_eq!(r.garbage(), 2);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicated_frames_decode_twice() {
        let frame = encode_msg(&heartbeat(7));
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        let mut r: FrameReader = FrameReader::new();
        assert_eq!(r.push(&doubled), vec![heartbeat(7), heartbeat(7)]);
        assert_eq!(r.garbage(), 0);
    }

    #[test]
    fn incomplete_tail_is_held_not_dropped() {
        let frame = encode_msg(&heartbeat(9));
        let (head, tail) = frame.split_at(frame.len() - 3);
        let mut r: FrameReader = FrameReader::new();
        assert!(r.push(head).is_empty());
        assert_eq!(r.pending(), head.len());
        assert_eq!(r.push(tail), vec![heartbeat(9)]);
        assert_eq!(r.garbage(), 0);
    }
}
