//! One shard of a sweep, run to completion (or scheduled death).
//!
//! An agent is an ordinary journalled
//! [`Lab::study_with`](interlag_core::experiment::Lab::study_with) under
//! a [`StudyScope`]: slots it does not own are skipped, slots it owns are
//! computed, journalled to its own shard journal on disk, and streamed to
//! the supervisor as [`WireMsg::Checkpoint`] frames the instant the
//! durable append lands. A dedicated thread keeps
//! [`WireMsg::Heartbeat`]s flowing even when the study worker wedges —
//! the supervisor's two watchdogs (heartbeat silence, checkpoint-progress
//! stall) rely on that distinction.
//!
//! The same entry point serves both transports: `interlag agent` wraps it
//! in a child process (crashes are real `abort()`s), the in-process
//! [`ThreadTransport`](crate::transport::ThreadTransport) wraps it in a
//! thread (crashes are panics the transport catches). Scheduled
//! [`SabotageKind`] failures for chaos tests strike from inside the
//! journal's record observer, i.e. exactly at checkpoint boundaries —
//! after the record is durable, before anything else happens.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use interlag_core::checkpoint::{study_fingerprint, StudyJournal};
use interlag_core::experiment::{Lab, LabConfig, StudyOptions, StudyScope, SweepStage};
use interlag_faults::SabotageKind;
use interlag_workloads::gen::Workload;

use crate::wire::{encode_msg, WireMsg};

/// How a killed or crashed agent leaves this world: a child process
/// aborts for real, a transport thread panics with this payload so the
/// harness can catch and classify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentDeath;

/// The cooperative kill line into a thread-mode agent. Threads cannot be
/// SIGKILLed, so [`ThreadTransport`](crate::transport::ThreadTransport)
/// raises this switch instead: the agent dies at its next checkpoint
/// boundary, and a wedged agent parked on the gate dies immediately.
#[derive(Debug, Default)]
pub struct KillSwitch {
    killed: AtomicBool,
    gate: Mutex<bool>,
    cv: Condvar,
}

impl KillSwitch {
    /// A switch in the "alive" position.
    pub fn new() -> Self {
        Self::default()
    }

    /// Orders the agent dead: wakes any wedge-parked observer and marks
    /// every later checkpoint boundary lethal.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        *self.gate.lock().expect("kill gate poisoned") = true;
        self.cv.notify_all();
    }

    /// Has the kill been ordered?
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Parks the caller until [`KillSwitch::kill`] — the wedge.
    fn park(&self) {
        let mut released = self.gate.lock().expect("kill gate poisoned");
        while !*released {
            released = self.cv.wait(released).expect("kill gate poisoned");
        }
    }
}

/// Everything one agent run needs.
#[derive(Debug)]
pub struct AgentConfig {
    /// The workload to sweep (must match the supervisor's exactly — the
    /// study fingerprint seals that).
    pub workload: Workload,
    /// The lab configuration (ditto).
    pub lab: LabConfig,
    /// The shard of the grid this agent owns.
    pub scope: StudyScope,
    /// This attempt's shard journal on disk. Opened with
    /// [`StudyJournal::resume`], so a re-dispatched attempt seeded with
    /// its predecessor's valid prefix replays the paid-for slots.
    pub journal_path: PathBuf,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Scheduled failure for chaos runs; `None` in production.
    pub sabotage: Option<SabotageKind>,
    /// `true` in a child process (die by `abort()`), `false` in a
    /// transport thread (die by panic, caught by the harness).
    pub abort_on_crash: bool,
    /// Thread-mode kill line; `None` in a child process (the supervisor
    /// SIGKILLs those).
    pub kill: Option<Arc<KillSwitch>>,
}

/// What a surviving agent reports home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentReport {
    /// Newly computed (not replayed) repetitions this run journalled.
    pub completed: u32,
    /// Journal appends that failed (durability lost, sweep continued).
    pub write_errors: u32,
    /// The study fingerprint the shard journal records against.
    pub fingerprint: u64,
}

fn die(abort: bool) -> ! {
    if abort {
        std::process::abort();
    }
    std::panic::panic_any(AgentDeath);
}

/// Runs one shard to completion, streaming protocol frames to `out`.
///
/// Write errors on `out` are swallowed: a supervisor that went away (or a
/// mangled pipe) must not kill a healthy agent — the shard journal on
/// disk remains the durable result, and the supervisor salvages it.
///
/// # Errors
///
/// I/O errors opening the shard journal, or a study error from the
/// fault-exempt annotation pass. Injected faults and sabotage never
/// surface here — sabotage kills the process/thread instead of returning.
pub fn run_agent(
    cfg: AgentConfig,
    out: Box<dyn std::io::Write + Send>,
) -> Result<AgentReport, Box<dyn std::error::Error + Send + Sync>> {
    let trace = cfg.workload.script.record_trace();
    let fingerprint = study_fingerprint(&trace.to_getevent_text(), &cfg.lab);
    let mut journal = StudyJournal::resume(&cfg.journal_path, fingerprint)?;

    let out = Arc::new(Mutex::new(out));
    let send = {
        let out = Arc::clone(&out);
        move |msg: &WireMsg| {
            if let Ok(mut w) = out.lock() {
                let _ = w.write_all(&encode_msg(msg));
                let _ = w.flush();
            }
        }
    };
    send(&WireMsg::Hello {
        shard: cfg.scope.shard,
        of: cfg.scope.of,
        stage: stage_name(cfg.scope.stage).to_string(),
        fingerprint,
    });

    let completed = Arc::new(AtomicU32::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let send = send.clone();
        let completed = Arc::clone(&completed);
        let done = Arc::clone(&done);
        let kill = cfg.kill.clone();
        let period = cfg.heartbeat;
        // Also stops on the kill switch: when a thread-mode agent dies by
        // panic, `done` is never set, and the transport raises the switch
        // instead so this thread does not outlive its agent.
        let over =
            move || done.load(Ordering::SeqCst) || kill.as_ref().is_some_and(|k| k.is_killed());
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !over() {
                seq += 1;
                send(&WireMsg::Heartbeat { seq, completed: completed.load(Ordering::SeqCst) });
                // Sleep in small slices so shutdown is prompt.
                let mut left = period;
                while !over() && left > Duration::ZERO {
                    let slice = left.min(Duration::from_millis(10));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
            }
        })
    };

    {
        let send = send.clone();
        let completed = Arc::clone(&completed);
        let sabotage = cfg.sabotage;
        let abort = cfg.abort_on_crash;
        let kill = cfg.kill.clone();
        let journal_path = cfg.journal_path.clone();
        journal.set_observer(move |seq, record| {
            let n = completed.fetch_add(1, Ordering::SeqCst) + 1;
            send(&WireMsg::Checkpoint { seq, record: record.clone() });
            if let Some(kill) = &kill {
                if kill.is_killed() {
                    die(abort);
                }
            }
            match sabotage {
                Some(SabotageKind::CrashAtCheckpoint(at)) if n == at => die(abort),
                Some(SabotageKind::TearJournal(at)) if n == at => {
                    // Fake a crash mid-append: leave a torn half-frame
                    // after the n durable records, then die.
                    use std::io::Write as _;
                    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&journal_path)
                    {
                        let _ = f.write_all(b"00000040 deadbeef {\"torn\":");
                        let _ = f.sync_data();
                    }
                    die(abort);
                }
                Some(SabotageKind::WedgeAtCheckpoint(at)) if n == at => {
                    // Heartbeats keep flowing from their own thread; the
                    // study worker stops making progress forever (or until
                    // a thread-mode kill releases the gate).
                    match &kill {
                        Some(kill) => {
                            kill.park();
                            die(abort);
                        }
                        None => loop {
                            std::thread::sleep(Duration::from_millis(50));
                        },
                    }
                }
                _ => {}
            }
        });
    }

    let lab = Lab::new(cfg.lab);
    let options =
        StudyOptions { journal: Some(&journal), trace: Some(trace), scope: Some(cfg.scope) };
    lab.study_with(&cfg.workload, options)?;

    done.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    let report = AgentReport {
        completed: completed.load(Ordering::SeqCst),
        write_errors: journal.write_errors() as u32,
        fingerprint,
    };
    send(&WireMsg::Done { completed: report.completed, write_errors: report.write_errors });
    Ok(report)
}

/// The wire name of a stage.
pub fn stage_name(stage: SweepStage) -> &'static str {
    match stage {
        SweepStage::Stage1 => "stage1",
        SweepStage::Oracle => "oracle",
    }
}

/// Parses a wire stage name.
pub fn parse_stage(name: &str) -> Option<SweepStage> {
    match name {
        "stage1" => Some(SweepStage::Stage1),
        "oracle" => Some(SweepStage::Oracle),
        _ => None,
    }
}
