//! Chaos tests for the sharded sweep: thread-mode agents under scripted
//! kill schedules, wire faults and watchdog trips.
//!
//! The contract under test is the crate's headline invariant: the merged
//! report is **byte-identical** to a single-process [`Lab::study`] at any
//! shard count, under any kill schedule the retry budget absorbs — and
//! degrades gracefully (per-slot `Abandoned` causes, never a crash or a
//! hole) when the budget runs out.

use std::path::PathBuf;
use std::time::Duration;

use interlag_core::error::{InterlagError, ShardFailure};
use interlag_core::experiment::{
    ConfigSummary, Lab, LabConfig, RepOutcome, StudyResult, SweepStage,
};
use interlag_device::script::InteractionCategory;
use interlag_faults::{AgentSabotage, SabotageKind, TransportFaults};
use interlag_obs::Recorder;
use interlag_orchestrator::{run_sweep, SweepConfig, SweepOutcome, ThreadTransport};
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A fast two-interaction workload: every sweep runs the full
/// 18-configuration matrix per agent, so the per-run cost must stay
/// small.
fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xc4a05);
    b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
    b.think_ms(1_500, 2_000);
    b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("orch-chaos", "sharded-sweep chaos workload")
}

fn lab_config() -> LabConfig {
    LabConfig { reps: 2, workers: 1, ..Default::default() }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-orch-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_cfg(shards: u32, dir: PathBuf) -> SweepConfig {
    SweepConfig {
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_secs(5),
        progress_timeout: Duration::from_secs(30),
        ..SweepConfig::new(shards, dir)
    }
}

fn transport(
    lab: &LabConfig,
    sabotage: Vec<AgentSabotage>,
    faults: TransportFaults,
    fault_seed: u64,
) -> ThreadTransport {
    ThreadTransport {
        workload: small_workload(),
        lab: lab.clone(),
        heartbeat: Duration::from_millis(25),
        faults,
        fault_seed,
        sabotage,
    }
}

/// Bit-level comparison of two study results: every value the study
/// reports, not merely approximately equal.
fn assert_studies_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.annotation, b.annotation);
    assert_eq!(a.db, b.db);
    assert_eq!(a.oracle_detail, b.oracle_detail);
    let (ca, cb): (Vec<&ConfigSummary>, Vec<&ConfigSummary>) =
        (a.all_configs().collect(), b.all_configs().collect());
    assert_eq!(ca.len(), cb.len());
    for (s, p) in ca.iter().zip(&cb) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.freq, p.freq);
        assert_eq!(s.outcomes, p.outcomes, "{}", s.name);
        assert_eq!(s.reps.len(), p.reps.len(), "{}", s.name);
        for (sr, pr) in s.reps.iter().zip(&p.reps) {
            assert_eq!(sr.profile, pr.profile, "{}", s.name);
            assert_eq!(sr.dynamic_energy_mj.to_bits(), pr.dynamic_energy_mj.to_bits());
            assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
            assert_eq!(sr.match_failures, pr.match_failures, "{}", s.name);
            assert_eq!(sr.input_faults, pr.input_faults, "{}", s.name);
        }
    }
}

/// The value of one counter row in the Markdown observability report.
fn counter_value(report: &str, name: &str) -> u64 {
    let needle = format!("| {name} | ");
    report
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|rest| rest.trim_end_matches(" |").trim().parse().ok())
        .unwrap_or_else(|| panic!("counter {name} not in report"))
}

fn sweep(
    lab: &LabConfig,
    shards: u32,
    tag: &str,
    sabotage: Vec<AgentSabotage>,
    faults: TransportFaults,
    fault_seed: u64,
    tune: impl FnOnce(&mut SweepConfig),
) -> SweepOutcome {
    let mut cfg = fast_cfg(shards, fresh_dir(tag));
    tune(&mut cfg);
    let mut t = transport(lab, sabotage, faults, fault_seed);
    run_sweep(&small_workload(), lab.clone(), &mut t, &cfg).expect("sweep completes")
}

#[test]
fn sharded_sweep_is_byte_identical_to_single_process() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    for shards in [1u32, 4, 8] {
        let out = sweep(
            &lab,
            shards,
            &format!("clean-{shards}"),
            Vec::new(),
            TransportFaults::none(),
            0,
            |_| {},
        );
        assert!(!out.degraded, "{shards} shards degraded a clean sweep");
        assert_eq!(out.quarantined, 0, "{shards} shards");
        assert_eq!(out.torn, 0, "{shards} shards");
        assert_studies_identical(&out.study, &baseline);
        assert!(out.shards.iter().all(|s| s.abandoned.is_none() && s.failures.is_empty()));
    }
}

#[test]
fn kill_schedules_within_budget_are_absorbed_byte_identically() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    // Three deterministic kill schedules at once: an agent crash at a
    // checkpoint boundary, a supervisor-side kill upon a received record,
    // and a crash that tears the shard journal mid-append.
    let schedule = vec![
        AgentSabotage { shard: 0, attempt: 0, kind: SabotageKind::CrashAtCheckpoint(2) },
        AgentSabotage { shard: 1, attempt: 0, kind: SabotageKind::KillAfterRecords(1) },
        AgentSabotage { shard: 2, attempt: 0, kind: SabotageKind::TearJournal(1) },
    ];
    let mut lab_obs = lab.clone();
    lab_obs.obs = Recorder::enabled();
    let out = sweep(&lab_obs, 4, "kills", schedule, TransportFaults::none(), 0, |_| {});
    assert!(!out.degraded, "retry budget should absorb all three kills");
    assert_studies_identical(&out.study, &baseline);
    assert!(out.torn >= 1, "the torn journal tail should be observed during salvage");
    let report = lab_obs.obs.text_report();
    assert!(counter_value(&report, "shards_retried") >= 3, "{report}");
    assert_eq!(counter_value(&report, "shards_abandoned"), 0, "{report}");
    // Sabotaged shards each record at least one classified failure.
    let failed: Vec<_> = out
        .shards
        .iter()
        .filter(|s| s.stage == SweepStage::Stage1 && !s.failures.is_empty())
        .map(|s| s.shard)
        .collect();
    assert_eq!(failed, vec![0, 1, 2], "{:?}", out.shards);
}

#[test]
fn wedged_agent_trips_the_progress_watchdog_and_retries() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    let schedule =
        vec![AgentSabotage { shard: 0, attempt: 0, kind: SabotageKind::WedgeAtCheckpoint(1) }];
    let out = sweep(&lab, 2, "wedge", schedule, TransportFaults::none(), 0, |cfg| {
        // The wedged agent keeps heartbeating, so only the
        // checkpoint-progress watchdog can catch it.
        cfg.progress_timeout = Duration::from_millis(400);
    });
    assert!(!out.degraded);
    assert_studies_identical(&out.study, &baseline);
    let wedged = out
        .shards
        .iter()
        .find(|s| s.stage == SweepStage::Stage1 && s.shard == 0)
        .expect("shard 0 outcome");
    assert!(
        wedged.failures.contains(&ShardFailure::Wedged),
        "expected a wedge classification, got {:?}",
        wedged.failures
    );
    assert!(wedged.attempts >= 2);
}

#[test]
fn wire_chaos_never_corrupts_the_merged_report() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    // Dropped, duplicated, truncated and delayed frames at a harsh rate,
    // across several deterministic fault streams: the disk salvage path
    // must recover everything the wire loses, and damaged frames must be
    // quarantined, never misparsed into the merge.
    for seed in [1u64, 2, 3] {
        let out = sweep(
            &lab,
            4,
            &format!("wire-{seed}"),
            Vec::new(),
            TransportFaults::uniform(0.15),
            seed,
            |_| {},
        );
        assert!(!out.degraded, "seed {seed}");
        assert_studies_identical(&out.study, &baseline);
    }
}

#[test]
fn budget_exhaustion_degrades_with_per_slot_causes() {
    let mut lab = lab_config();
    lab.obs = Recorder::enabled();
    // Shard 0 dies on every attempt its budget allows: dispatch, retry,
    // done — the shard is abandoned and its missing slots must surface as
    // Abandoned repetitions with a shard cause, not as holes or a crash.
    let schedule = vec![
        AgentSabotage { shard: 0, attempt: 0, kind: SabotageKind::CrashAtCheckpoint(1) },
        AgentSabotage { shard: 0, attempt: 1, kind: SabotageKind::CrashAtCheckpoint(1) },
    ];
    let out = sweep(&lab, 2, "exhaust", schedule, TransportFaults::none(), 0, |cfg| {
        cfg.retry_budget = 1;
    });
    assert!(out.degraded, "an abandoned shard must degrade the sweep");
    let abandoned = out
        .shards
        .iter()
        .find(|s| s.stage == SweepStage::Stage1 && s.shard == 0)
        .expect("shard 0 outcome");
    assert_eq!(abandoned.attempts, 2);
    assert_eq!(abandoned.abandoned, Some(ShardFailure::Crashed), "{:?}", abandoned);
    // The report is complete: every configuration has every repetition,
    // and the abandoned ones carry the shard failure as their cause.
    let mut shard_causes = 0usize;
    for c in out.study.all_configs() {
        assert_eq!(c.outcomes.len(), c.reps.len(), "{}", c.name);
        for o in &c.outcomes {
            if let RepOutcome::Abandoned { cause: InterlagError::Shard { failure }, .. } = o {
                assert_eq!(*failure, ShardFailure::Crashed);
                shard_causes += 1;
            }
        }
    }
    assert!(shard_causes > 0, "abandoned slots must carry shard causes");
    let report = lab.obs.text_report();
    assert_eq!(counter_value(&report, "shards_abandoned"), 1, "{report}");
    assert!(counter_value(&report, "shards_dispatched") >= 4, "{report}");
}
