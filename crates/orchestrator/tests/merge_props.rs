//! Property tests for the byte-stable shard-journal merge.
//!
//! Two families:
//!
//! * **partition independence** — any partition of a record set into
//!   interleaved text/binary shard journals, each optionally ending in a
//!   torn tail, merges to exactly the union of the journals' valid
//!   prefixes, and re-encodes byte-identically regardless of the
//!   partition or arrival order;
//! * **no misparse** — random byte corruption anywhere in a journal can
//!   lose or quarantine records, but every record that survives the
//!   gauntlet is bit-identical to one that was really written.

use std::collections::{BTreeMap, BTreeSet};

use interlag_core::checkpoint::{CheckpointFormat, CheckpointRecord};
use interlag_core::experiment::{placeholder_result, RepOutcome};
use interlag_orchestrator::{encode_merged, merge_shard_journals};
use proptest::prelude::*;

const FP: u64 = 0x5eed_f00d;

fn record(config: usize, rep: u32) -> CheckpointRecord {
    CheckpointRecord::new(FP, config, rep, &placeholder_result("prop"), &RepOutcome::Ok)
}

fn encode_one(rec: &CheckpointRecord, binary: bool) -> Vec<u8> {
    let mut map = BTreeMap::new();
    map.insert((rec.config, rec.rep), rec.clone());
    encode_merged(&map, if binary { CheckpointFormat::Binary } else { CheckpointFormat::Json })
}

proptest! {
    #[test]
    fn interleaved_torn_journals_merge_to_the_valid_prefix_union(
        raw_slots in proptest::collection::vec((0usize..8, 0u32..4), 1..20),
        assignment in proptest::collection::vec((0usize..4, 0u32..2), 20..21),
        tears in proptest::collection::vec((0u32..2, 0usize..20), 4..5),
    ) {
        // Distinct slots, each assigned to one of four journals with a
        // per-record wire format.
        let slots: Vec<(usize, u32)> =
            raw_slots.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        let records: Vec<CheckpointRecord> =
            slots.iter().map(|&(c, r)| record(c, r)).collect();
        let mut entries: Vec<Vec<(usize, bool)>> = vec![Vec::new(); 4];
        for (i, &(journal, binary)) in assignment.iter().take(slots.len()).enumerate() {
            entries[journal].push((i, binary == 1));
        }

        let mut journals: Vec<Vec<u8>> = Vec::new();
        let mut expected: BTreeMap<(usize, u32), CheckpointRecord> = BTreeMap::new();
        for (j, plan) in entries.iter().enumerate() {
            let keep = if tears[j].0 == 1 { tears[j].1.min(plan.len()) } else { plan.len() };
            let mut bytes = Vec::new();
            for (i, &(slot, binary)) in plan.iter().enumerate() {
                let frame = encode_one(&records[slot], binary);
                if i < keep {
                    bytes.extend_from_slice(&frame);
                    expected.insert((records[slot].config, records[slot].rep),
                        records[slot].clone());
                } else if i == keep {
                    // The torn frame: a prefix arrives, the rest never
                    // does — and everything after it in this journal is
                    // unreachable, valid frames included.
                    bytes.extend_from_slice(&frame[..frame.len() / 2]);
                } else {
                    bytes.extend_from_slice(&frame);
                }
            }
            journals.push(bytes);
        }

        let merged =
            merge_shard_journals(journals.iter().map(Vec::as_slice), FP, |_, _| true);
        prop_assert_eq!(&merged.records, &expected);
        prop_assert_eq!(merged.quarantined, 0);

        // Byte-stability: the encoded merge depends only on which slots
        // were recovered — the same records split any other way (here:
        // one canonical journal) encode identically.
        let canonical = encode_merged(&expected, CheckpointFormat::Binary);
        prop_assert_eq!(
            encode_merged(&merged.records, CheckpointFormat::Binary),
            canonical
        );

        // Merging in reverse arrival order changes nothing either.
        let reversed =
            merge_shard_journals(journals.iter().rev().map(Vec::as_slice), FP, |_, _| true);
        prop_assert_eq!(reversed.records, expected);
    }

    #[test]
    fn corrupted_journals_never_misparse_into_foreign_records(
        n in 1usize..12,
        flips in proptest::collection::vec((0usize..4096, 1u32..256), 1..12),
    ) {
        let records: Vec<CheckpointRecord> = (0..n)
            .map(|i| record(i % 8, (i / 8) as u32))
            .collect();
        let mut bytes = Vec::new();
        for (i, r) in records.iter().enumerate() {
            bytes.extend_from_slice(&encode_one(r, i % 2 == 0));
        }
        for &(pos, val) in &flips {
            let len = bytes.len();
            bytes[pos % len] ^= val as u8;
        }
        // Whatever the damage: no panic, and every surviving record is
        // bit-identical to one that was really written.
        let merged = merge_shard_journals([bytes.as_slice()], FP, |_, _| true);
        for ((c, r), rec) in &merged.records {
            let original = records
                .iter()
                .find(|o| o.config == *c && o.rep == *r);
            match original {
                Some(original) => prop_assert_eq!(rec, original),
                None => prop_assert!(false, "merged slot ({}, {}) never written", c, r),
            }
        }
    }
}
