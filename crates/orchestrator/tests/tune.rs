//! Byte-stability of the governor-tuning sweep.
//!
//! The tuning report inherits the sweep supervisor's headline invariant:
//! the rendered Markdown and CSV must be **byte-identical at any worker
//! and shard count**, because every `(point, repetition)` slot is a pure
//! function of its inputs and sketch folding is commutative integer
//! addition. These tests run the same small grid at workers {1, 4} ×
//! shards {1, 4} and `cmp` the rendered bytes — the same gate CI applies
//! to the `interlag tune` binary output.

use interlag_core::propgroup::PropErrorKind;
use interlag_device::script::InteractionCategory;
use interlag_orchestrator::{run_tune, tune_csv, tune_markdown, TuneConfig, TuneError};
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A ~20-second workload small enough for debug-mode sweeps.
fn tiny_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0x7e57);
    b.app_launch("launch", 350 * MCYCLES, 4, InteractionCategory::Common);
    b.think_ms(1_800, 2_600);
    b.quick_tap("tap a", 140 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.think_ms(1_500, 2_200);
    b.quick_tap("tap b", 110 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("tune-it", "tuning integration workload")
}

const GRID: &str = "governor=ondemand:up-threshold-min=60:up-threshold-max=95:\
                    up-threshold-intvs=2:sampling-ms=20,60:reps=2:jitter-us=800";

#[test]
fn frontier_bytes_are_identical_at_any_worker_and_shard_count() {
    let w = tiny_workload();
    let mut rendered: Vec<(usize, u32, String, String)> = Vec::new();
    for workers in [1usize, 4] {
        for shards in [1u32, 4] {
            let config = TuneConfig { group: GRID.into(), workers, shards };
            let out = run_tune(&w, &config).expect("tune runs clean");
            assert_eq!(out.points.len(), 4, "2×2 grid");
            assert_eq!(out.reps, 2);
            assert!(!out.frontier.is_empty(), "some point is always non-dominated");
            for p in &out.points {
                assert_eq!(p.irritation.count(), 2, "every slot folded exactly once");
            }
            rendered.push((workers, shards, tune_markdown(&out), tune_csv(&out)));
        }
    }
    let (_, _, md0, csv0) = &rendered[0];
    for (workers, shards, md, csv) in &rendered[1..] {
        assert_eq!(md, md0, "markdown diverged at workers={workers} shards={shards}");
        assert_eq!(csv, csv0, "csv diverged at workers={workers} shards={shards}");
    }
}

#[test]
fn rejected_grids_surface_the_prop_error() {
    let w = tiny_workload();
    let err = run_tune(&w, &TuneConfig::new("governor=ondemand:go-hispeed-load=80"))
        .expect_err("interactive-only tunable under ondemand");
    let TuneError::Prop(e) = err else { panic!("expected a prop rejection") };
    assert_eq!(e.kind, PropErrorKind::UnknownKey);
    assert_eq!(e.offset, 18, "points at the offending key");
}

#[test]
fn the_frontier_is_consistent_with_the_grid() {
    let w = tiny_workload();
    let out = run_tune(&w, &TuneConfig::new(GRID)).expect("tune runs clean");
    // Frontier indices are valid, unique, and energy-sorted.
    let mut seen = std::collections::BTreeSet::new();
    for &i in &out.frontier {
        assert!(i < out.points.len());
        assert!(seen.insert(i), "frontier index {i} repeated");
    }
    for pair in out.frontier.windows(2) {
        let (a, b) = (&out.points[pair[0]], &out.points[pair[1]]);
        let lhs = a.energy.sum() * u128::from(b.energy.count());
        let rhs = b.energy.sum() * u128::from(a.energy.count());
        assert!(lhs <= rhs, "frontier not energy-ascending");
    }
    // Every non-frontier point is dominated by some frontier point on
    // both means (weakly) — the definition, re-checked via the sketches.
    for (i, p) in out.points.iter().enumerate() {
        if out.frontier.contains(&i) {
            continue;
        }
        let dominated = out.frontier.iter().any(|&j| {
            let f = &out.points[j];
            let irr = f.irritation.sum() * u128::from(p.irritation.count())
                <= p.irritation.sum() * u128::from(f.irritation.count());
            let energy = f.energy.sum() * u128::from(p.energy.count())
                <= p.energy.sum() * u128::from(f.energy.count());
            irr && energy
        });
        assert!(dominated, "point {i} is off the frontier yet undominated");
    }
}
