//! Chaos tests for the TCP transport: thread-mode session clients
//! talking to the supervisor through a seeded in-process chaos proxy.
//!
//! The contract is the same headline invariant the pipe transports
//! prove — the merged report is **byte-identical** to a single-process
//! [`Lab::study`] — now under network failure: partitions (connection
//! cuts, optionally tearing the in-flight frame), delays, duplication
//! and reordering. The session layer must absorb all of it: reconnects
//! resume mid-shard from the ack high-water mark, stale epochs are
//! fenced, and no fenced frame ever reaches the merge.

use std::time::Duration;

use interlag_core::experiment::{ConfigSummary, Lab, LabConfig, StudyResult};
use interlag_device::script::InteractionCategory;
use interlag_faults::{ChaosProxy, NetFaults};
use interlag_obs::{Counter, Recorder};
use interlag_orchestrator::{
    run_sweep, ClientPolicy, SweepConfig, SweepOutcome, TcpAgentMode, TcpTransport,
};
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xc4a05);
    b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
    b.think_ms(1_500, 2_000);
    b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("tcp-chaos", "tcp-transport chaos workload")
}

fn lab_config() -> LabConfig {
    LabConfig { reps: 2, workers: 1, obs: Recorder::enabled(), ..Default::default() }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-tcp-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_studies_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.annotation, b.annotation);
    assert_eq!(a.db, b.db);
    assert_eq!(a.oracle_detail, b.oracle_detail);
    let (ca, cb): (Vec<&ConfigSummary>, Vec<&ConfigSummary>) =
        (a.all_configs().collect(), b.all_configs().collect());
    assert_eq!(ca.len(), cb.len());
    for (s, p) in ca.iter().zip(&cb) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.freq, p.freq);
        assert_eq!(s.outcomes, p.outcomes, "{}", s.name);
        assert_eq!(s.reps.len(), p.reps.len(), "{}", s.name);
        for (sr, pr) in s.reps.iter().zip(&p.reps) {
            assert_eq!(sr.profile, pr.profile, "{}", s.name);
            assert_eq!(sr.dynamic_energy_mj.to_bits(), pr.dynamic_energy_mj.to_bits());
            assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
            assert_eq!(sr.match_failures, pr.match_failures, "{}", s.name);
            assert_eq!(sr.input_faults, pr.input_faults, "{}", s.name);
        }
    }
}

fn counter_value(report: &str, name: &str) -> u64 {
    let needle = format!("| {name} | ");
    report
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|rest| rest.trim_end_matches(" |").trim().parse().ok())
        .unwrap_or(0)
}

/// Runs one TCP sweep: thread-mode session clients dialling the
/// supervisor through an optional chaos proxy. Returns the outcome with
/// [`Counter::NetFaultsInjected`] fed from the proxy's own tally (the
/// faults crate is observability-free by design, so the harness closes
/// that loop the way the CLI does).
fn tcp_sweep(
    lab: &LabConfig,
    shards: u32,
    tag: &str,
    faults: NetFaults,
    seed: u64,
    client: ClientPolicy,
    tune: impl FnOnce(&mut SweepConfig),
) -> SweepOutcome {
    tcp_sweep_lingering(lab, shards, tag, faults, seed, client, tune, false)
}

/// Like [`tcp_sweep`], optionally keeping the supervisor's listener (and
/// the proxy) alive after the sweep until a zombie's stale Register has
/// been fenced — the zombie's reconnect backoff deliberately outlives
/// the sweep itself.
#[allow(clippy::too_many_arguments)]
fn tcp_sweep_lingering(
    lab: &LabConfig,
    shards: u32,
    tag: &str,
    faults: NetFaults,
    seed: u64,
    client: ClientPolicy,
    tune: impl FnOnce(&mut SweepConfig),
    await_fence: bool,
) -> SweepOutcome {
    let mut cfg = SweepConfig {
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        heartbeat_timeout: Duration::from_secs(5),
        progress_timeout: Duration::from_secs(30),
        ..SweepConfig::new(shards, fresh_dir(tag))
    };
    tune(&mut cfg);
    let mode =
        TcpAgentMode::Thread { workload: Box::new(small_workload()), lab: Box::new(lab.clone()) };
    let mut t = TcpTransport::bind("127.0.0.1:0", mode, Duration::from_millis(25), lab.obs.clone())
        .expect("bind transport");
    t.client = client;
    let proxy = if faults.is_quiescent() {
        None
    } else {
        let p = ChaosProxy::spawn(t.addr(), faults, seed).expect("spawn proxy");
        t.connect_addr = p.addr().to_string();
        Some(p)
    };
    let out = run_sweep(&small_workload(), lab.clone(), &mut t, &cfg).expect("sweep completes");
    if await_fence {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while counter_value(&lab.obs.text_report(), "fenced_epoch_records") == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    if let Some(p) = &proxy {
        lab.obs.count(Counter::NetFaultsInjected, p.injected().total());
    }
    out
}

fn fast_client() -> ClientPolicy {
    ClientPolicy {
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        backoff_seed: 0x7c9,
        retry_budget: 16,
        drain_timeout: Duration::from_secs(10),
    }
}

#[test]
fn clean_tcp_sweep_is_byte_identical_to_single_process() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    for shards in [2u32, 4] {
        let out = tcp_sweep(
            &lab,
            shards,
            &format!("clean-{shards}"),
            NetFaults::none(),
            0,
            fast_client(),
            |_| {},
        );
        assert!(!out.degraded, "{shards} shards degraded a clean sweep");
        assert_eq!(out.quarantined, 0, "{shards} shards");
        assert_studies_identical(&out.study, &baseline);
    }
    // A clean run admits nothing to fence: zero fenced-epoch records.
    let report = lab.obs.text_report();
    assert_eq!(counter_value(&report, "fenced_epoch_records"), 0, "{report}");
}

#[test]
fn partitions_resume_mid_shard_without_redispatch() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    for (shards, seed) in [(2u32, 0xa11ce), (4u32, 0xb0b)] {
        // Cut every connection after 10 agent frames, three cuts per
        // sweep, tearing the in-flight frame each time. The client
        // reconnects long before the 5 s heartbeat watchdog, so every
        // shard must finish on its *first* dispatch attempt: the session
        // resumed mid-shard, it was not re-run.
        let faults = NetFaults { truncate_on_cut: true, ..NetFaults::partition(10, 3) };
        let out =
            tcp_sweep(&lab, shards, &format!("part-{shards}"), faults, seed, fast_client(), |_| {});
        assert!(!out.degraded, "{shards} shards");
        assert_studies_identical(&out.study, &baseline);
        // `attempts <= 1`: a shard that owns no slots is never
        // dispatched (0), and every dispatched shard finished on its
        // first attempt — the session resumed mid-shard, it was not
        // watchdogged and re-run.
        assert!(
            out.shards.iter().all(|s| s.attempts <= 1 && s.failures.is_empty()),
            "a resumed session must not look like a failure: {:?}",
            out.shards
        );
    }
    let report = lab.obs.text_report();
    assert!(counter_value(&report, "agent_reconnects") >= 2, "{report}");
    assert!(counter_value(&report, "net_faults_injected") >= 2, "{report}");
    assert_eq!(counter_value(&report, "fenced_epoch_records"), 0, "{report}");
}

#[test]
fn reorder_duplicate_and_delay_chaos_merge_byte_identically() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    for (name, seed) in [("reorder", 0x5eed1), ("duplicate", 0x5eed2), ("delay", 0x5eed3)] {
        let faults = NetFaults::profile(name).expect("known profile");
        let out = tcp_sweep(&lab, 4, &format!("prof-{name}"), faults, seed, fast_client(), |_| {});
        assert!(!out.degraded, "{name}");
        assert_eq!(out.quarantined, 0, "{name}: no frame is damaged mid-stream");
        assert_studies_identical(&out.study, &baseline);
    }
    let report = lab.obs.text_report();
    assert!(counter_value(&report, "net_faults_injected") > 0, "{report}");
}

#[test]
fn zombie_agent_is_fenced_after_partition_and_redispatch() {
    let lab = lab_config();
    let baseline = Lab::new(lab.clone()).study(&small_workload()).expect("baseline study");
    // The client's reconnect delay (>= 1.5 s) dwarfs the heartbeat
    // watchdog (250 ms): after the proxy cuts the link, the supervisor
    // declares the agent dead and re-dispatches under a fresh epoch
    // while the old one is still alive and will come back — the zombie.
    // Its Register under the superseded epoch must be fenced, and the
    // merged report must not care.
    let zombie_client = ClientPolicy {
        backoff_base: Duration::from_millis(1_500),
        backoff_cap: Duration::from_secs(3),
        backoff_seed: 0xdead,
        retry_budget: 16,
        drain_timeout: Duration::from_secs(8),
    };
    // The cut lands two frames in (Hello plus one heartbeat) and the
    // watchdog is as tight as the CLI allows (4x the 25 ms heartbeat),
    // so the kill catches the agent *mid-shard*: its journal cannot
    // cover the shard at salvage, forcing a real re-dispatch — and a
    // real superseded epoch for the zombie to trip over.
    let out = tcp_sweep_lingering(
        &lab,
        2,
        "zombie",
        NetFaults::partition(2, 2),
        0xfe4ce,
        zombie_client,
        |cfg| {
            cfg.heartbeat_timeout = Duration::from_millis(100);
            cfg.retry_budget = 4;
        },
        true,
    );
    assert!(!out.degraded, "{:?}", out.shards);
    assert_studies_identical(&out.study, &baseline);
    let report = lab.obs.text_report();
    assert!(counter_value(&report, "lease_expiries") >= 1, "{report}");
    assert!(counter_value(&report, "fenced_epoch_records") >= 1, "{report}");
    assert!(counter_value(&report, "net_faults_injected") >= 1, "{report}");
}
