//! Property tests for [`FrameReader`] resynchronisation.
//!
//! The reader sits at the supervisor's end of every transport — pipe and
//! TCP alike — so its contract must hold under anything the wire can do
//! to a byte stream short of forging a CRC:
//!
//! * **chunking-blind** — an arbitrary re-chunking of a valid frame
//!   stream (TCP segmentation, pipe buffering, one byte at a time)
//!   decodes to exactly the original messages, in order, with zero
//!   garbage;
//! * **bounded damage** — a single corrupted byte anywhere in the stream
//!   loses at most the frames sharing that line, each loss is *counted*
//!   (garbage) or *visible* (bytes still pending without a terminator),
//!   and every message that does decode is bit-identical to one that was
//!   really sent: no spurious message, no duplicate, no reorder.

use interlag_orchestrator::wire::encode_msg;
use interlag_orchestrator::{FrameReader, WireMsg};
use proptest::prelude::*;

/// A compact distinguishable message: the heartbeat's `seq` doubles as
/// its identity for subsequence checks.
fn msg(seq: u64) -> WireMsg {
    WireMsg::Heartbeat { seq, completed: (seq % 7) as u32 }
}

/// Pushes `bytes` into a fresh reader in the chunk sizes `cuts`
/// prescribes (cycled, clamped to what is left).
fn push_chunked(bytes: &[u8], cuts: &[usize]) -> (Vec<WireMsg>, u64, usize) {
    let mut r: FrameReader = FrameReader::new();
    let mut out = Vec::new();
    let mut at = 0usize;
    let mut i = 0usize;
    while at < bytes.len() {
        let step = cuts.get(i % cuts.len()).copied().unwrap_or(1).clamp(1, bytes.len() - at);
        out.extend(r.push(&bytes[at..at + step]));
        at += step;
        i += 1;
    }
    (out, r.garbage(), r.pending())
}

proptest! {
    #[test]
    fn any_rechunking_is_transparent(
        seqs in proptest::collection::vec(0u64..1000, 1..30),
        cuts in proptest::collection::vec(1usize..40, 1..10),
    ) {
        let msgs: Vec<WireMsg> = seqs.iter().map(|&s| msg(s)).collect();
        let bytes: Vec<u8> = msgs.iter().flat_map(encode_msg).collect();
        let (out, garbage, pending) = push_chunked(&bytes, &cuts);
        prop_assert_eq!(out, msgs);
        prop_assert_eq!(garbage, 0);
        prop_assert_eq!(pending, 0);
    }

    #[test]
    fn single_byte_corruption_loses_only_the_touched_line(
        seqs in proptest::collection::vec(0u64..1000, 1..30),
        cuts in proptest::collection::vec(1usize..40, 1..10),
        pos_pick in 0usize..usize::MAX,
        flip in 1u8..255,
    ) {
        let msgs: Vec<WireMsg> = seqs.iter().map(|&s| msg(s)).collect();
        let mut bytes: Vec<u8> = msgs.iter().flat_map(encode_msg).collect();
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= flip;

        let (out, garbage, pending) = push_chunked(&bytes, &cuts);

        // Every decoded message is one that was sent, in order, at most
        // once: `out` must be a subsequence of `msgs` (identity = seq,
        // and seqs may repeat, so walk a cursor).
        let mut cursor = 0usize;
        for m in &out {
            let found = msgs[cursor..].iter().position(|s| s == m);
            prop_assert!(
                found.is_some(),
                "decoded {m:?} is not a subsequence match past {cursor} in {msgs:?}"
            );
            cursor += found.unwrap() + 1;
        }

        // One corrupted byte can damage at most the frames sharing its
        // line: flipping a newline glues two frames into one line (two
        // lost), any other flip damages one frame. Never more.
        prop_assert!(msgs.len() - out.len() <= 2, "{} of {} lost", msgs.len() - out.len(), msgs.len());

        // Losses are never silent: every missing message is accounted
        // for by a counted garbage line or by terminator-less bytes
        // still visibly pending.
        if out.len() < msgs.len() {
            prop_assert!(
                garbage >= 1 || pending > 0,
                "lost {} frames with no garbage and no pending bytes",
                msgs.len() - out.len()
            );
        }
    }
}
