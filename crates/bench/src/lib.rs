//! Shared harness for the figure/table benches.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! this crate (`cargo bench -p interlag-bench --bench figNN`) that re-runs
//! the underlying experiment and prints the same rows/series the paper
//! reports. This module holds what they share: dataset lookup, study
//! execution with environment-controlled repetitions, and small formatting
//! helpers.
//!
//! Environment knobs:
//!
//! * `INTERLAG_REPS` — repetitions per configuration (default 3; the
//!   paper uses 5).
//! * `INTERLAG_DATASETS` — comma-separated subset (e.g. `01,02`) for the
//!   multi-dataset figures.

use interlag_core::experiment::{Lab, LabConfig, StudyResult};
use interlag_workloads::datasets::Dataset;
use interlag_workloads::gen::Workload;

/// Repetitions per configuration, from `INTERLAG_REPS` (default 3).
pub fn reps() -> u32 {
    std::env::var("INTERLAG_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// The datasets a multi-dataset figure should cover, from
/// `INTERLAG_DATASETS` (default: all five ten-minute datasets).
pub fn selected_datasets() -> Vec<Dataset> {
    let Ok(raw) = std::env::var("INTERLAG_DATASETS") else {
        return Dataset::TEN_MINUTE.to_vec();
    };
    raw.split(',')
        .filter_map(|name| Dataset::TEN_MINUTE.iter().copied().find(|d| d.name() == name.trim()))
        .collect()
}

/// Builds the default lab used by every figure bench.
pub fn lab_with_reps(reps: u32) -> Lab {
    Lab::new(LabConfig { reps, ..Default::default() })
}

/// Runs the full §III study for one dataset and reports how long it took.
pub fn run_study(dataset: Dataset, reps: u32) -> (Workload, StudyResult) {
    let workload = dataset.build();
    let lab = lab_with_reps(reps);
    let started = std::time::Instant::now();
    let study = lab.study(&workload).expect("fault-free study");
    eprintln!(
        "[bench] dataset {}: {} lags, {} configs x {} reps in {:.1} s",
        dataset.name(),
        study.db.len(),
        study.all_configs().count(),
        reps,
        started.elapsed().as_secs_f64()
    );
    (workload, study)
}

/// Prints a horizontal rule sized for `width` columns of table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a figure/table banner.
pub fn banner(title: &str, subtitle: &str) {
    println!();
    rule(78);
    println!("{title}");
    if !subtitle.is_empty() {
        println!("{subtitle}");
    }
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reps_default_and_parse() {
        let r = reps();
        assert!(r >= 1);
    }

    #[test]
    fn selected_datasets_default_is_all_five() {
        if std::env::var("INTERLAG_DATASETS").is_err() {
            assert_eq!(selected_datasets().len(), 5);
        }
    }
}
