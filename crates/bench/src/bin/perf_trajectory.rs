//! `perf_trajectory` — the tracked performance trajectory of the raw-speed
//! frame pipeline, emitted as machine-readable JSON (`BENCH_9.json`).
//!
//! Eight sections, each timing the optimised path against the baseline it
//! replaced:
//!
//! 1. **kernel** — the chunked-u64 diff kernels against the per-pixel
//!    scalar reference, on 1080p-class frames.
//! 2. **matcher** — one batched forward walk marking up every pending lag
//!    against the per-lag walker it replaced.
//! 3. **study** — the full §III sweep wall-clock at 1, 4 and 16 workers.
//! 4. **journal** — checkpoint replay rate through the framed decoder
//!    (mixed JSON and binary eras, like a real resumed file).
//! 5. **checkpoint** — binary vs JSON checkpoint record sizes.
//! 6. **shard_merge** — the sweep supervisor's journal-merge gauntlet
//!    (CRC framing, decode, fingerprint, slot dedup, canonical
//!    re-encode) across shard counts.
//! 7. **db_ingest** — the results database's full ingest gauntlet
//!    (content addressing, manifest validation, fingerprint and slot
//!    checks, staged sketch fold, atomic persist) over a synthetic
//!    fleet of sealed submissions.
//! 8. **tune** — the governor-tuning sweep (reference oracle runs plus a
//!    tunable grid of capture-free replays folded into sketches and a
//!    Pareto frontier) at 1 and 4 workers.
//!
//! Usage: `cargo run --release -p interlag-bench --bin perf_trajectory
//! [-- --quick] [--out FILE]`. `--quick` shrinks sample counts for CI;
//! checked-in trajectory numbers come from the default (full) mode.
//! `INTERLAG_REPS` scales the study section like every other bench.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use interlag_core::checkpoint::{
    decode_checkpoint_any, encode_checkpoint, encode_checkpoint_binary, CheckpointRecord,
};
use interlag_core::experiment::{Lab, LabConfig, RepOutcome, RepResult};
use interlag_core::matcher::{mark_up_with_policy, MatchPolicy, Matcher};
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_device::script::InteractionCategory;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::{decode_records, encode_record, encode_record_binary};
use interlag_video::frame::FrameBuffer;
use interlag_video::kernel;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// Median seconds per call over `samples` timed invocations (after one
/// warm-up call). Hand-rolled because criterion is a dev-dependency of
/// the bench targets, not of binaries.
fn time_median<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            black_box(f());
            started.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct KernelNumbers {
    pixels: u64,
    scalar_px_per_s: f64,
    kernel_px_per_s: f64,
    speedup: f64,
}

/// The matcher's hot decision — "does this frame differ from the
/// annotation by more than the pixel budget?" — on 1080p-class frames,
/// kernel vs the scalar early-exit reference.
fn kernel_section(samples: usize) -> KernelNumbers {
    let (width, height) = (1920u32, 1080u32);
    let mut a = FrameBuffer::new(width, height);
    let mut b = FrameBuffer::new(width, height);
    a.hash_paint(a.bounds(), 1);
    b.hash_paint(b.bounds(), 2);
    let (pa, pb) = (a.pixels().to_vec(), b.pixels().to_vec());
    let pixels = pa.len() as u64;
    // Nearly every pixel differs and the budget is unbounded, so neither
    // side can exit early: both scan the full frame, like a non-matching
    // frame does in a real walk.
    let (tol, limit) = (MatchTolerance::CAMERA.value_tolerance, u64::MAX - 1);

    let scalar = time_median(samples, || kernel::reference::exceeds(&pa, &pb, tol, limit));
    let fast = time_median(samples, || kernel::exceeds(&pa, &pb, tol, limit));
    KernelNumbers {
        pixels,
        scalar_px_per_s: pixels as f64 / scalar,
        kernel_px_per_s: pixels as f64 / fast,
        speedup: scalar / fast,
    }
}

fn synthetic_video(frames: u32, change_every: u32) -> VideoStream {
    let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
    let mut current = {
        let mut f = FrameBuffer::new(72, 120);
        f.hash_paint(f.bounds(), 1);
        Arc::new(f)
    };
    for i in 0..frames {
        if i % change_every == 0 && i > 0 {
            let mut f = FrameBuffer::new(72, 120);
            f.hash_paint(f.bounds(), 1 + (i / change_every) as u64);
            current = Arc::new(f);
        }
        v.push(SimTime::from_micros(i as u64 * 33_333), current.clone()).unwrap();
    }
    v
}

struct MatcherNumbers {
    lags: usize,
    frames: u32,
    per_lag_ms: f64,
    batched_ms: f64,
    speedup: f64,
}

/// Marks up many pending lags over one video: the batched single walk
/// (shared packing, masks and verdict caches) against the per-lag walker.
///
/// Paper-scale rep: a ten-minute 30 fps capture, a few dozen
/// interactions whose endings are spread across the whole video. The
/// per-lag walker visits every frame from each lag's beginning to its
/// ending; the batched walk visits compressed runs, once.
fn matcher_section(samples: usize) -> MatcherNumbers {
    let frames = 18_000u32; // ten minutes at 30 fps: one paper dataset
    let change_every = 300u32;
    let lags = 40u32;
    let video = synthetic_video(frames, change_every);
    // One annotation per interaction, its ending spread through the video;
    // a fuzzy tolerance defeats the digest-equality shortcut so every
    // verdict runs the diff kernels.
    let mut db = interlag_core::annotation::AnnotationDb::new("trajectory");
    for id in 0..lags as usize {
        let frame_idx = ((id as u32 * frames / lags).min(frames - 1)) as usize;
        db.insert(interlag_core::annotation::LagAnnotation {
            interaction_id: id,
            image: video.frames()[frame_idx].buf.as_ref().clone(),
            mask: Mask::new(),
            tolerance: MatchTolerance::CAMERA,
            occurrence: 1,
            threshold: SimDuration::from_secs(1),
        });
    }
    // Every lag starts at the beginning, so each per-lag walk re-scans the
    // same prefix the batched walk shares.
    let beginnings: Vec<(usize, SimTime)> =
        (0..lags as usize).map(|id| (id, SimTime::ZERO)).collect();
    let policy = MatchPolicy::strict();

    let batched = time_median(samples, || {
        mark_up_with_policy(&video, &beginnings, &db, "trajectory", &policy)
    });
    let matcher = Matcher::new();
    let per_lag = time_median(samples, || {
        let mut found = 0usize;
        for &(id, input_time) in &beginnings {
            let ann = db.get(id).expect("annotated");
            if matcher.match_lag_with_policy(&video, input_time, ann, &policy).is_ok() {
                found += 1;
            }
        }
        found
    });
    MatcherNumbers {
        lags: beginnings.len(),
        frames,
        per_lag_ms: per_lag * 1e3,
        batched_ms: batched * 1e3,
        speedup: per_lag / batched,
    }
}

/// The study-parallel mini workload: large enough that the sweep
/// dominates, small enough to finish promptly at workers = 1.
fn study_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xfee1);
    b.app_launch("launch", 400 * MCYCLES, 5, InteractionCategory::Common);
    for round in 0..4u32 {
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap a", 150 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(2_000, 3_000);
        b.heavy_with_progress(
            "save",
            (900 + 100 * round as u64) * MCYCLES,
            InteractionCategory::Complex,
        );
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap b", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
    }
    b.build("mini", "perf-trajectory study workload")
}

fn study_section(reps: u32) -> Vec<(usize, f64)> {
    let workload = study_workload();
    [1usize, 4, 16]
        .into_iter()
        .map(|workers| {
            let lab = Lab::new(LabConfig { reps, workers, ..Default::default() });
            let started = Instant::now();
            let study = lab.study(&workload).expect("fault-free study");
            black_box(study.all_configs().count());
            (workers, started.elapsed().as_secs_f64())
        })
        .collect()
}

fn sample_checkpoint(rep: u32) -> CheckpointRecord {
    let mut profile = LagProfile::new("ondemand");
    for id in 0..12usize {
        profile.push(LagEntry {
            interaction_id: id,
            input_time: SimTime::from_micros(1_000_000 + id as u64 * 250_000),
            lag: SimDuration::from_micros(120_000 + id as u64 * 7_001),
            threshold: SimDuration::from_millis(1_000),
            confidence: 1.0 / (id + 2) as f64,
        });
    }
    let result = RepResult {
        profile,
        dynamic_energy_mj: 12_345.678,
        irritation: SimDuration::from_micros(987_654),
        match_failures: 1,
        input_faults: 0,
    };
    CheckpointRecord::new(0x5eed_f00d, 3, rep, &result, &RepOutcome::Ok)
}

struct JournalNumbers {
    records: usize,
    records_per_s: f64,
}

/// Replay rate through the framed decoder on a mixed-era journal: half
/// the records JSON-framed, half binary-framed, then every payload run
/// through the format-sniffing checkpoint decoder — exactly the resume
/// path.
fn journal_section(records: usize, samples: usize) -> JournalNumbers {
    let mut bytes = Vec::new();
    for rep in 0..records as u32 {
        let record = sample_checkpoint(rep);
        if rep % 2 == 0 {
            bytes.extend(encode_record(&encode_checkpoint(&record)).expect("framable"));
        } else {
            bytes.extend(encode_record_binary(&encode_checkpoint_binary(&record)));
        }
    }
    let secs = time_median(samples, || {
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.records.len(), records);
        decoded.records.iter().filter_map(|p| decode_checkpoint_any(p)).count()
    });
    JournalNumbers { records, records_per_s: records as f64 / secs }
}

struct ShardMergeNumbers {
    shards: usize,
    records_per_s: f64,
}

/// Merge throughput of the sweep supervisor's gauntlet: `records`
/// checkpoints partitioned round-robin across binary shard journals,
/// decoded, validated, deduplicated and re-encoded canonically — the
/// exact path `interlag sweep` pays after every wave.
fn shard_merge_section(records: usize, samples: usize) -> Vec<ShardMergeNumbers> {
    use interlag_orchestrator::{encode_merged, merge_shard_journals};
    let all: Vec<CheckpointRecord> = (0..records as u32).map(sample_checkpoint).collect();
    [1usize, 4, 8, 16]
        .into_iter()
        .map(|shards| {
            let journals: Vec<Vec<u8>> = (0..shards)
                .map(|s| {
                    let map: std::collections::BTreeMap<(usize, u32), CheckpointRecord> = all
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % shards == s)
                        .map(|(_, r)| ((r.config, r.rep), r.clone()))
                        .collect();
                    encode_merged(&map, interlag_core::checkpoint::CheckpointFormat::Binary)
                })
                .collect();
            let secs = time_median(samples, || {
                let merged = merge_shard_journals(
                    journals.iter().map(Vec::as_slice),
                    0x5eed_f00d,
                    |_, _| true,
                );
                assert_eq!(merged.records.len(), records);
                encode_merged(&merged.records, interlag_core::checkpoint::CheckpointFormat::Binary)
                    .len()
            });
            ShardMergeNumbers { shards, records_per_s: records as f64 / secs }
        })
        .collect()
}

struct DbIngestNumbers {
    submissions: usize,
    records: usize,
    submissions_per_s: f64,
    records_per_s: f64,
}

/// Ingest throughput of the results database: a fleet of sealed
/// submissions (each a manifest frame plus binary checkpoint frames)
/// pushed through the full gauntlet — content addressing, manifest and
/// fingerprint validation, slot dedup, staged sketch fold, atomic
/// persist — into a fresh store per timed pass.
fn db_ingest_section(submissions: usize, samples: usize) -> DbIngestNumbers {
    use interlag_db::{seal_submission, Db, SubmissionManifest, SUBMISSION_SCHEMA};
    let reps_per_submission = 4u32;
    let artifacts: Vec<Vec<u8>> = (0..submissions as u64)
        .map(|device| {
            let fingerprint = 0x5eed_f00d + device;
            let mut records = std::collections::BTreeMap::new();
            for config in 0..2usize {
                for rep in 0..reps_per_submission {
                    let mut record = sample_checkpoint(rep);
                    record.fingerprint = fingerprint;
                    record.config = config;
                    records.insert((config, rep), record);
                }
            }
            let manifest = SubmissionManifest {
                schema: SUBMISSION_SCHEMA.to_string(),
                fingerprint,
                device_model: "sim14".to_string(),
                workload: "trajectory".to_string(),
                reps: reps_per_submission,
                configs: vec!["ondemand".to_string(), "oracle".to_string()],
                records: 0,
                props: vec![format!("device-seed={device}")],
            };
            seal_submission(
                &manifest,
                &records,
                interlag_core::checkpoint::CheckpointFormat::Binary,
            )
        })
        .collect();
    let records = submissions * 2 * reps_per_submission as usize;
    let dir = std::env::temp_dir().join(format!("interlag-trajectory-db-{}", std::process::id()));
    let secs = time_median(samples, || {
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Db::open(&dir, interlag_obs::Recorder::disabled()).expect("open store");
        let mut folded = 0u64;
        for artifact in &artifacts {
            folded += db.ingest_bytes(artifact).expect("valid submission").reps_folded;
        }
        assert_eq!(folded as usize, records);
        folded
    });
    let _ = std::fs::remove_dir_all(&dir);
    DbIngestNumbers {
        submissions,
        records,
        submissions_per_s: submissions as f64 / secs,
        records_per_s: records as f64 / secs,
    }
}

struct TuneNumbers {
    workers: usize,
    wall_s: f64,
    slots_per_s: f64,
}

/// Wall-clock of the governor-tuning sweep: each run pays the oracle
/// reference (every fixed-OPP profile plus one oracle replay) and then
/// one capture-free replay per `(point, repetition)` slot, folded into
/// database sketches and reduced to a Pareto frontier.
fn tune_section(points: usize, reps: u32) -> Vec<TuneNumbers> {
    use interlag_orchestrator::{run_tune, TuneConfig};
    let workload = study_workload();
    let group = format!(
        "governor=ondemand:up-threshold-min=50:up-threshold-max=95:up-threshold-intvs={points}:reps={reps}"
    );
    let slots = points * reps as usize;
    [1usize, 4]
        .into_iter()
        .map(|workers| {
            let config = TuneConfig { group: group.clone(), workers, shards: 1 };
            let started = Instant::now();
            let out = run_tune(&workload, &config).expect("clean tune");
            assert_eq!(out.points.len(), points);
            black_box(out.frontier.len());
            let wall_s = started.elapsed().as_secs_f64();
            TuneNumbers { workers, wall_s, slots_per_s: slots as f64 / wall_s }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    let (kernel_samples, matcher_samples, journal_records, study_reps, db_submissions) =
        if quick { (5, 3, 200, 1, 20) } else { (25, 9, 2_000, interlag_bench::reps(), 200) };
    let (tune_points, tune_reps) = if quick { (4usize, 1u32) } else { (8, 2) };

    eprintln!("[trajectory] kernel: 1080p diff kernels vs scalar reference");
    let k = kernel_section(kernel_samples);
    eprintln!(
        "[trajectory]   scalar {:.0} Mpx/s, kernel {:.0} Mpx/s, speedup {:.1}x",
        k.scalar_px_per_s / 1e6,
        k.kernel_px_per_s / 1e6,
        k.speedup
    );

    eprintln!("[trajectory] matcher: batched single walk vs per-lag walks");
    let m = matcher_section(matcher_samples);
    eprintln!(
        "[trajectory]   per-lag {:.2} ms, batched {:.2} ms, speedup {:.1}x ({} lags)",
        m.per_lag_ms, m.batched_ms, m.speedup, m.lags
    );

    eprintln!("[trajectory] study: full sweep wall-clock at 1/4/16 workers");
    let study = study_section(study_reps);
    for (workers, wall) in &study {
        eprintln!("[trajectory]   workers={workers}: {wall:.2} s");
    }

    eprintln!("[trajectory] journal: mixed-era checkpoint replay rate");
    let j = journal_section(journal_records, matcher_samples);
    eprintln!("[trajectory]   {:.0} records/s", j.records_per_s);

    let record = sample_checkpoint(0);
    let json_bytes = encode_checkpoint(&record).len();
    let binary_bytes = encode_checkpoint_binary(&record).len();
    eprintln!(
        "[trajectory] checkpoint: {json_bytes} B json vs {binary_bytes} B binary ({:.2}x smaller)",
        json_bytes as f64 / binary_bytes as f64
    );

    eprintln!("[trajectory] shard_merge: supervisor merge gauntlet throughput");
    let merges = shard_merge_section(journal_records, matcher_samples);
    for m in &merges {
        eprintln!("[trajectory]   shards={}: {:.0} records/s", m.shards, m.records_per_s);
    }

    eprintln!("[trajectory] db_ingest: results-database ingest gauntlet throughput");
    let db = db_ingest_section(db_submissions, matcher_samples);
    eprintln!(
        "[trajectory]   {} submissions ({} records): {:.0} submissions/s, {:.0} records/s",
        db.submissions, db.records, db.submissions_per_s, db.records_per_s
    );

    eprintln!("[trajectory] tune: governor-tuning sweep throughput");
    let tune = tune_section(tune_points, tune_reps);
    for t in &tune {
        eprintln!(
            "[trajectory]   workers={}: {:.2} s, {:.1} slots/s",
            t.workers, t.wall_s, t.slots_per_s
        );
    }

    let workers_json: Vec<String> = study
        .iter()
        .map(|(workers, wall)| format!("{{\"workers\": {workers}, \"wall_s\": {wall:.4}}}"))
        .collect();
    let merges_json: Vec<String> = merges
        .iter()
        .map(|m| format!("{{\"shards\": {}, \"records_per_s\": {:.0}}}", m.shards, m.records_per_s))
        .collect();
    let tune_json: Vec<String> = tune
        .iter()
        .map(|t| {
            format!(
                "{{\"workers\": {}, \"wall_s\": {:.4}, \"slots_per_s\": {:.1}}}",
                t.workers, t.wall_s, t.slots_per_s
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"schema\": \"interlag-bench-trajectory/v4\",\n  \"quick\": {quick},\n  \
         \"kernel\": {{\n    \"pixels_per_frame\": {pixels},\n    \"scalar_px_per_s\": {sps:.0},\n    \
         \"kernel_px_per_s\": {kps:.0},\n    \"speedup\": {kspeed:.3}\n  }},\n  \
         \"matcher\": {{\n    \"lags\": {lags},\n    \"frames\": {frames},\n    \
         \"per_lag_ms\": {plm:.4},\n    \"batched_ms\": {bm:.4},\n    \"speedup\": {mspeed:.3}\n  }},\n  \
         \"study\": {{\n    \"reps\": {reps},\n    \"sweeps\": [{sweeps}]\n  }},\n  \
         \"journal\": {{\n    \"records\": {records},\n    \"replay_records_per_s\": {rps:.0}\n  }},\n  \
         \"checkpoint\": {{\n    \"json_bytes\": {jb},\n    \"binary_bytes\": {bb},\n    \
         \"json_over_binary\": {ratio:.3}\n  }},\n  \
         \"shard_merge\": {{\n    \"records\": {records},\n    \"merges\": [{merges}]\n  }},\n  \
         \"db_ingest\": {{\n    \"submissions\": {dbsubs},\n    \"records\": {dbrecs},\n    \
         \"submissions_per_s\": {dbsps:.0},\n    \"records_per_s\": {dbrps:.0}\n  }},\n  \
         \"tune\": {{\n    \"points\": {tpoints},\n    \"reps\": {treps},\n    \
         \"sweeps\": [{tsweeps}]\n  }}\n}}\n",
        pixels = k.pixels,
        sps = k.scalar_px_per_s,
        kps = k.kernel_px_per_s,
        kspeed = k.speedup,
        lags = m.lags,
        frames = m.frames,
        plm = m.per_lag_ms,
        bm = m.batched_ms,
        mspeed = m.speedup,
        reps = study_reps,
        sweeps = workers_json.join(", "),
        records = j.records,
        rps = j.records_per_s,
        jb = json_bytes,
        bb = binary_bytes,
        ratio = json_bytes as f64 / binary_bytes as f64,
        merges = merges_json.join(", "),
        dbsubs = db.submissions,
        dbrecs = db.records,
        dbsps = db.submissions_per_s,
        dbrps = db.records_per_s,
        tpoints = tune_points,
        treps = tune_reps,
        tsweeps = tune_json.join(", "),
    );
    if let Err(e) = interlag_journal::atomic_write(&out, &doc) {
        eprintln!("perf_trajectory: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("{doc}");
    eprintln!("[trajectory] wrote {out}");
}
