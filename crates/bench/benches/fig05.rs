//! Figure 5 — an example of the GETEVENT input recording: the raw event
//! packets of the first touch of Dataset 01, in the exact `getevent`
//! format (hex type/code/value triples, multi-touch protocol B).

use interlag_bench::banner;
use interlag_workloads::datasets::Dataset;

fn main() {
    let workload = Dataset::D01.build();
    let trace = workload.script.record_trace();

    banner(
        "FIGURE 5 — getevent recording excerpt (Dataset 01, first touch)",
        "type 0003 = EV_ABS, code 0039 = ABS_MT_TRACKING_ID, value ffffffff = lift",
    );

    // Print everything up to and including the packet that lifts the
    // first contact (tracking id -1 followed by SYN_REPORT).
    let mut lifted = false;
    for ev in trace.iter() {
        println!("/dev/input/event{}: {}", ev.device, ev.event);
        if ev.event.kind == interlag_evdev::event::EventType::Abs
            && ev.event.code == interlag_evdev::event::codes::ABS_MT_TRACKING_ID
            && ev.event.value == -1
        {
            lifted = true;
        }
        if lifted && ev.event.is_syn_report() {
            break;
        }
    }

    println!();
    println!(
        "full recording: {} raw events over {:.0} s; text form round-trips losslessly",
        trace.len(),
        trace.span().as_secs_f64()
    );
    let text = trace.to_getevent_text();
    let reparsed: interlag_evdev::trace::EventTrace = text.parse().expect("trace text parses");
    assert_eq!(reparsed, trace);
    println!("round-trip check: OK ({} bytes of getevent text)", text.len());
}
