//! Extension figure — Jank-type workloads (the paper's §VI future work).
//!
//! A ten-second game session (70 Mcycles of simulation + draw per
//! animation frame) is replayed under every fixed frequency and every
//! governor; the analyser measures, from the captured video alone, how
//! many animation frames were dropped. This is the frame-drop counterpart
//! of the interaction-lag study: another QoE axis the same record/replay/
//! capture machinery measures for free.

use interlag_bench::{banner, lab_with_reps, rule};
use interlag_core::jank::measure_jank;
use interlag_device::dvfs::{FixedGovernor, Governor};
use interlag_device::render::SPINNER_FRAME_PERIOD;
use interlag_evdev::time::SimDuration;
use interlag_governors::{Conservative, Interactive, Ondemand, Schedutil};
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

fn game_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0x9a3e);
    b.think_ms(500, 600);
    b.game_session("play level", SimDuration::from_secs(10), 70 * MCYCLES);
    b.think_ms(1_000, 1_500);
    b.build("game", "ten-second game session, 70 Mcycles per frame")
}

fn main() {
    let lab = lab_with_reps(1);
    let w = game_workload();
    let trace = w.script.record_trace();
    let region = lab.device().config().screen.spinner_rect;

    banner(
        "EXTENSION — jank under fixed frequencies and governors",
        "10 s game session, 10 fps nominal animation, 70 Mcycles per frame",
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "config", "expected", "observed", "jank", "longest stall", "energy (J)"
    );
    rule(78);

    let run_one = |name: &str, gov: &mut dyn Governor| {
        let run = lab.run(&w, trace.clone(), gov).expect("clean run");
        let video = run.video.as_ref().expect("capture on");
        let rec = &run.interactions[0];
        let start = rec.input_time + SimDuration::from_millis(300);
        let end = rec.service_time.expect("session ends") - SimDuration::from_millis(100);
        let report = measure_jank(video, start, end, region, SPINNER_FRAME_PERIOD);
        let energy = lab.meter().measure(&run.activity).dynamic_mj / 1_000.0;
        println!(
            "{:<16} {:>10} {:>10} {:>9.0}% {:>14} {:>12.2}",
            name,
            report.expected_frames,
            report.observed_frames,
            100.0 * report.jank_ratio(),
            report.longest_stall.to_string(),
            energy
        );
        report.jank_ratio()
    };

    let mut fixed_janks = Vec::new();
    for freq in lab.device().config().opps.frequencies().collect::<Vec<_>>() {
        let mut gov = FixedGovernor::new(freq);
        fixed_janks.push(run_one(&format!("fixed-{freq}"), &mut gov));
    }
    let table = lab.device().config().opps.clone();
    let mut conservative = Conservative::default();
    let cons = run_one("conservative", &mut conservative);
    let mut interactive = Interactive::for_table(&table);
    run_one("interactive", &mut interactive);
    let mut ondemand = Ondemand::default();
    let ond = run_one("ondemand", &mut ondemand);
    let mut schedutil = Schedutil::default();
    run_one("schedutil", &mut schedutil);

    println!();
    println!(
        "-> jank falls monotonically with frequency; the sustained per-frame load lets \
         load-driven governors ramp up, so they stay mostly smooth — conservative pays \
         its slow ramp as a stutter at the start of the session"
    );
    assert!(fixed_janks[0] > 0.25, "0.30 GHz stutters");
    assert!(*fixed_janks.last().expect("14 points") < 0.05, "2.15 GHz is smooth");
    for pair in fixed_janks.windows(2) {
        assert!(pair[1] <= pair[0] + 0.05, "jank falls with frequency: {fixed_janks:?}");
    }
    assert!(cons >= ond, "conservative at least as janky as ondemand");
    println!("shape checks (monotone in frequency; conservative >= ondemand): OK");
}
