//! Scaling of the parallel study engine: the same §III study executed
//! serially (`workers = 1`, the legacy sweep) and on all available cores,
//! reporting simulated-seconds per wall-second and the speedup. The two
//! sweeps are also cross-checked for bit-identical results — the whole
//! point of the deterministic work-queue design.
//!
//! Environment knobs: `INTERLAG_REPS` (repetitions, default 3) and
//! `INTERLAG_STUDY_WORKERS` (comma-separated worker counts to sweep;
//! default `1,<cores>`).

use interlag_bench::{banner, reps, rule};
use interlag_core::experiment::{Lab, LabConfig, StudyResult};
use interlag_device::script::InteractionCategory;
use interlag_evdev::time::SimDuration;
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A ~25-second workload: large enough that the sweep dominates, small
/// enough that the serial baseline finishes promptly.
fn study_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xfee1);
    b.app_launch("launch", 400 * MCYCLES, 5, InteractionCategory::Common);
    b.think_ms(2_000, 3_000);
    b.quick_tap("tap a", 150 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.think_ms(2_000, 3_000);
    b.spurious_tap("miss");
    b.think_ms(1_500, 2_500);
    b.heavy_with_progress("save", 1_200 * MCYCLES, InteractionCategory::Complex);
    b.think_ms(2_000, 3_000);
    b.quick_tap("tap b", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.background_burst("sync", SimDuration::from_secs(1), 200 * MCYCLES);
    b.build("mini", "study-parallel scaling workload")
}

fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match std::env::var("INTERLAG_STUDY_WORKERS") {
        Ok(raw) => raw.split(',').filter_map(|w| w.trim().parse().ok()).collect(),
        Err(_) => {
            if cores > 1 {
                vec![1, cores]
            } else {
                vec![1]
            }
        }
    }
}

fn summaries_identical(a: &StudyResult, b: &StudyResult) -> bool {
    a.db == b.db
        && a.all_configs().count() == b.all_configs().count()
        && a.all_configs().zip(b.all_configs()).all(|(x, y)| {
            x.name == y.name
                && x.reps.len() == y.reps.len()
                && x.reps.iter().zip(&y.reps).all(|(r, s)| {
                    r.profile == s.profile
                        && r.dynamic_energy_mj.to_bits() == s.dynamic_energy_mj.to_bits()
                        && r.irritation == s.irritation
                        && r.match_failures == s.match_failures
                })
        })
}

fn main() {
    let reps = reps();
    let workload = study_workload();
    banner(
        "study engine scaling",
        "configuration x repetition sweep: serial vs work-queue workers",
    );

    // Total simulated time covered by one study: (reference run) + 18
    // configurations x reps, each replaying the whole workload.
    let configs = 18u64;
    let sim_secs_per_study =
        workload.run_until().as_millis() as f64 / 1e3 * (configs * reps as u64 + 1) as f64;

    println!(
        "{:>8} {:>12} {:>16} {:>10}  identical",
        "workers", "wall s", "sim-s/wall-s", "speedup"
    );
    rule(64);
    let mut baseline_wall = None;
    let mut baseline_study: Option<StudyResult> = None;
    for workers in worker_counts() {
        let lab = Lab::new(LabConfig { reps, workers, ..Default::default() });
        let started = std::time::Instant::now();
        let study = lab.study(&workload).expect("study");
        let wall = started.elapsed().as_secs_f64();
        let baseline = *baseline_wall.get_or_insert(wall);
        let identical = match &baseline_study {
            None => {
                baseline_study = Some(study);
                "baseline".to_string()
            }
            Some(first) => {
                if summaries_identical(first, &study) {
                    "yes".to_string()
                } else {
                    "NO - MISMATCH".to_string()
                }
            }
        };
        println!(
            "{:>8} {:>12.2} {:>16.1} {:>9.2}x  {}",
            workers,
            wall,
            sim_secs_per_study / wall,
            baseline / wall,
            identical
        );
    }
}
