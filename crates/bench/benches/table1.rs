//! Table I — the workloads: "a rough description of the main activities
//! the users were executing in each workload", extended with the measured
//! session statistics the text quotes (ten-minute length, interaction
//! intensity).

use interlag_bench::{banner, rule};
use interlag_evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag_workloads::datasets::Dataset;

fn main() {
    banner(
        "TABLE I — the recorded workloads",
        "dataset descriptions plus measured session statistics",
    );
    println!(
        "{:<8} {:<52} {:>7} {:>7} {:>8}",
        "Dataset", "Description", "inputs", "length", "events"
    );
    rule(88);
    for ds in Dataset::TEN_MINUTE.iter().copied().chain([Dataset::Day24h]) {
        let w = ds.build();
        let trace = w.script.record_trace();
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        let counts = count_inputs(&inputs);
        println!(
            "{:<8} {:<52} {:>7} {:>6.0}s {:>8}",
            w.name,
            w.description,
            counts.total(),
            w.duration.as_secs_f64(),
            trace.len(),
        );
    }
    println!();
    println!("(inputs = user-level taps/swipes/keys; events = raw evdev events)");
}
