//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. suggester still-period length (§II-D),
//! 2. capture path and match tolerance: HDMI vs camera (§II-C),
//! 3. the Interactive governor's input boost (§III-B),
//! 4. the custom replay agent vs the stock `sendevent` tool (§II-B),
//! 5. race-to-idle: energy to service a fixed demand across frequencies.

use interlag_bench::{banner, lab_with_reps, rule};
use interlag_core::annotation::{annotate, GroundTruthPicker};
use interlag_core::matcher::mark_up;
use interlag_core::suggester::{Suggester, SuggesterConfig};
use interlag_device::device::{CaptureMode, Device, DeviceConfig};
use interlag_device::dvfs::FixedGovernor;
use interlag_device::script::InteractionCategory;
use interlag_evdev::replay::{ReplayAgent, Replayer, SendeventReplayer};
use interlag_governors::interactive::{Interactive, InteractiveTunables};
use interlag_power::calibrate::{calibrate, CalibrationConfig};
use interlag_power::model::PowerModel;
use interlag_power::opp::OppTable;
use interlag_video::mask::MatchTolerance;
use interlag_workloads::datasets::Dataset;
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A two-minute workload for the capture/replay ablations.
fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xab1a);
    b.app_launch("launch", 700 * MCYCLES, 6, InteractionCategory::Common);
    b.think_ms(3_000, 5_000);
    for i in 0..8 {
        b.quick_tap(&format!("tap {i}"), 220 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(3_000, 6_000);
    }
    b.heavy_with_progress("save", 2_000 * MCYCLES, InteractionCategory::Complex);
    b.build("ablation", "two-minute ablation workload")
}

fn suggester_still_run() {
    banner(
        "ABLATION 1 — suggester minimum still run (Dataset 01 reference video)",
        "more required still frames -> fewer candidates, until real endings vanish",
    );
    let lab = lab_with_reps(1);
    let w = Dataset::D01.build();
    let trace = w.script.record_trace();
    let mut gov = FixedGovernor::new(lab.device().config().opps.min_freq());
    let run = lab.run(&w, trace, &mut gov).expect("clean run");
    let screen = lab.device().config().screen;
    let mask = {
        let mut m = screen.status_bar_mask();
        m.exclude(screen.cursor_rect);
        m.exclude(screen.spinner_rect);
        m
    };
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "min_still_run", "suggestions", "annotated", "reduction"
    );
    rule(56);
    for min_still in [1u32, 5, 15, 30] {
        let suggester = Suggester::new(SuggesterConfig {
            mask: mask.clone(),
            min_still_run: min_still,
            ..Default::default()
        });
        let picker = GroundTruthPicker::new(&run);
        let (db, stats) =
            annotate(&run, &suggester, &picker, &mask, MatchTolerance::EXACT, &w.name);
        println!(
            "{:<14} {:>12} {:>12} {:>11.0}x",
            min_still,
            stats.suggestions_shown,
            db.len(),
            stats.reduction_factor()
        );
    }
}

fn capture_paths() {
    banner(
        "ABLATION 2 — capture path and match tolerance",
        "exact matching works over HDMI; camera noise requires tolerances (§II-C)",
    );
    let w = small_workload();
    let trace = w.script.record_trace();

    let run_with = |mode: CaptureMode| {
        let cfg = DeviceConfig { capture: mode, ..Default::default() };
        let device = Device::new(cfg.clone());
        let mut gov = FixedGovernor::new(cfg.opps.max_freq());
        device
            .run(&w.script, ReplayAgent::new(trace.clone()), &mut gov, w.run_until())
            .expect("clean run")
    };
    let hdmi = run_with(CaptureMode::Hdmi);
    let camera = run_with(CaptureMode::Camera { seed: 99 });

    // Annotate on the HDMI video, then try matching each capture path
    // under each tolerance.
    let screen = DeviceConfig::default().screen;
    let mask = {
        let mut m = screen.status_bar_mask();
        m.exclude(screen.cursor_rect);
        m.exclude(screen.spinner_rect);
        m
    };
    println!("{:<28} {:>10} {:>10}", "capture / tolerance", "matched", "failed");
    rule(52);
    for (cap_name, run) in [("hdmi", &hdmi), ("camera", &camera)] {
        for (tol_name, tol) in
            [("exact", MatchTolerance::EXACT), ("camera", MatchTolerance::CAMERA)]
        {
            let suggester = Suggester::new(SuggesterConfig {
                mask: mask.clone(),
                tolerance: tol,
                ..Default::default()
            });
            let picker = GroundTruthPicker::new(&hdmi);
            let (db, _) = annotate(&hdmi, &suggester, &picker, &mask, tol, &w.name);
            let video = run.video.as_ref().expect("capture on");
            let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, cap_name);
            println!(
                "{:<28} {:>10} {:>10}",
                format!("{cap_name} + {tol_name}"),
                profile.len(),
                failures.len()
            );
        }
    }
    println!(
        "\n-> the paper's switch from camera to HDMI capture is what makes exact matching viable"
    );
}

fn interactive_input_boost() {
    banner(
        "ABLATION 3 — Interactive governor input boost (Dataset 02)",
        "disabling the boost removes the governor's defining reaction to touches",
    );
    let lab = lab_with_reps(1);
    let w = Dataset::D02.build();
    let trace = w.script.record_trace();
    let table = lab.device().config().opps.clone();

    println!("{:<14} {:>12} {:>14}", "input boost", "energy (J)", "mean lag (ms)");
    rule(44);
    for boost in [true, false] {
        let mut tun = InteractiveTunables::for_table(&table);
        tun.input_boost = boost;
        let mut gov = Interactive::new(tun);
        let run = lab.run(&w, trace.clone(), &mut gov).expect("clean run");
        let energy = lab.meter().measure(&run.activity).dynamic_mj / 1_000.0;
        let lags: Vec<f64> = run
            .interactions
            .iter()
            .filter_map(|r| r.true_lag())
            .map(|l| l.as_millis_f64())
            .collect();
        let mean = lags.iter().sum::<f64>() / lags.len() as f64;
        println!("{:<14} {:>12.2} {:>14.0}", boost, energy, mean);
    }
    println!("\n-> without the boost, short lags wait for a load window before the clock rises");
}

fn replay_fidelity() {
    banner(
        "ABLATION 4 — custom replay agent vs stock sendevent (§II-B)",
        "sendevent's per-event overhead smears dense multi-touch packets",
    );
    let w = Dataset::D04.build(); // swipe-heavy
    let trace = w.script.record_trace();

    let drain = |mut r: Box<dyn Replayer>| {
        let mut now = interlag_evdev::time::SimTime::ZERO;
        while !r.is_finished() {
            r.poll(now);
            now += interlag_evdev::time::SimDuration::from_millis(1);
        }
        r.stats()
    };
    let agent = drain(Box::new(ReplayAgent::new(trace.clone())));
    let tool = drain(Box::new(SendeventReplayer::new(trace.clone())));
    println!("{:<16} {:>12} {:>14} {:>14}", "replayer", "events", "mean drift", "max drift");
    rule(60);
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "custom agent",
        agent.events_replayed,
        agent.mean_drift().to_string(),
        agent.max_drift.to_string()
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "sendevent",
        tool.events_replayed,
        tool.mean_drift().to_string(),
        tool.max_drift.to_string()
    );
    println!(
        "\n-> the paper reports 0.5-1 s timing variation with manual/naive replay; \
         the agent holds drift under the simulation quantum"
    );
}

fn schedutil_extension() {
    banner(
        "ABLATION 6 — post-paper governor: schedutil (Dataset 02)",
        "did the governor that replaced Interactive close the gap to the oracle?",
    );
    let lab = lab_with_reps(1);
    let w = Dataset::D02.build();
    let trace = w.script.record_trace();
    let table = lab.device().config().opps.clone();

    println!(
        "{:<14} {:>12} {:>14} {:>14}",
        "governor", "energy (J)", "mean lag (ms)", "max lag (ms)"
    );
    rule(58);
    for name in ["ondemand", "interactive", "schedutil"] {
        let mut ond;
        let mut inter;
        let mut sched;
        let gov: &mut dyn interlag_device::dvfs::Governor = match name {
            "ondemand" => {
                ond = interlag_governors::Ondemand::default();
                &mut ond
            }
            "interactive" => {
                inter = Interactive::for_table(&table);
                &mut inter
            }
            _ => {
                sched = interlag_governors::Schedutil::default();
                &mut sched
            }
        };
        let run = lab.run(&w, trace.clone(), gov).expect("clean run");
        let energy = lab.meter().measure(&run.activity).dynamic_mj / 1_000.0;
        let lags: Vec<f64> = run
            .interactions
            .iter()
            .filter_map(|r| r.true_lag())
            .map(|l| l.as_millis_f64())
            .collect();
        let mean = lags.iter().sum::<f64>() / lags.len() as f64;
        let max = lags.iter().cloned().fold(0.0, f64::max);
        println!("{:<14} {:>12.2} {:>14.0} {:>14.0}", name, energy, mean, max);
    }
    println!(
        "\n-> in this model schedutil is the snappiest load-driven governor but its \
         headroom keeps background work at elevated clocks: the paper's gap persists"
    );
}

fn race_to_idle() {
    banner(
        "ABLATION 5 — race-to-idle: dynamic energy to execute 1 Gcycle",
        "the U-shape behind choosing 0.96 GHz for non-lag periods (§IV)",
    );
    let table = OppTable::snapdragon_8074();
    let measured = calibrate(&table, &PowerModel::krait_like(), &CalibrationConfig::default());
    println!("{:<12} {:>14} {:>16}", "frequency", "energy (mJ)", "vs optimum");
    rule(46);
    let opt = measured.energy_per_cycle_nj(measured.most_efficient_freq());
    for f in table.frequencies() {
        let e = measured.energy_per_cycle_nj(f); // nJ/cycle == mJ/Gcycle
        println!("{:<12} {:>14.1} {:>15.2}x", f.to_string(), e * 1_000.0, e / opt);
    }
    println!("\noptimum: {} (paper: 0.96 GHz)", measured.most_efficient_freq());
}

fn main() {
    suggester_still_run();
    capture_paths();
    interactive_input_boost();
    replay_fidelity();
    race_to_idle();
    schedutil_extension();
}
