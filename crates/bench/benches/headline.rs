//! The paper's headline numbers (§I, §VI), measured on this reproduction:
//!
//! * energy savings of up to 27 % are possible while delivering a user
//!   experience better than the standard Android governor;
//! * 47 % savings with performance indistinguishable from permanently
//!   running the CPU at the highest frequency;
//! * conservative: ~8 % less energy than the oracle but ~36 s of
//!   irritation per ten-minute workload;
//! * interactive/ondemand: ~22 %/20 % more energy, < 1 s above the oracle.

use interlag_bench::{banner, reps, rule, run_study, selected_datasets};

fn main() {
    let datasets = selected_datasets();
    let studies: Vec<_> = datasets.iter().map(|ds| run_study(*ds, reps()).1).collect();

    banner(
        "HEADLINE CLAIMS — paper vs this reproduction",
        "savings are 1 - oracle/config on dynamic CPU energy",
    );

    let mut max_savings_vs_gov = 0.0f64;
    let mut max_savings_vs_perf = 0.0f64;
    let mut cons_e = Vec::new();
    let mut inter_e = Vec::new();
    let mut ond_e = Vec::new();
    let mut cons_i = Vec::new();
    let mut inter_i = Vec::new();
    let mut ond_i = Vec::new();

    println!(
        "{:<9} {:>14} {:>16} {:>12} {:>12}",
        "Dataset", "vs ondemand", "vs interactive", "vs 2.15 GHz", "cons irr."
    );
    rule(70);
    for s in &studies {
        let norm = |name: &str| s.energy_normalised(s.config(name).expect("config present"));
        let irr =
            |name: &str| s.config(name).expect("config present").mean_irritation().as_secs_f64();
        let vs_ond = 100.0 * (1.0 - 1.0 / norm("ondemand"));
        let vs_inter = 100.0 * (1.0 - 1.0 / norm("interactive"));
        let vs_perf = 100.0 * (1.0 - 1.0 / norm("fixed-2.15 GHz"));
        max_savings_vs_gov = max_savings_vs_gov.max(vs_ond).max(vs_inter);
        max_savings_vs_perf = max_savings_vs_perf.max(vs_perf);
        cons_e.push(norm("conservative"));
        inter_e.push(norm("interactive"));
        ond_e.push(norm("ondemand"));
        cons_i.push(irr("conservative"));
        inter_i.push(irr("interactive"));
        ond_i.push(irr("ondemand"));
        println!(
            "{:<9} {:>13.1}% {:>15.1}% {:>11.1}% {:>11.1}s",
            s.workload,
            vs_ond,
            vs_inter,
            vs_perf,
            irr("conservative")
        );
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!("claim                                                paper      measured");
    rule(78);
    println!(
        "max savings vs standard governors (equal-or-better QoE)   27 %      {:>5.0} %",
        max_savings_vs_gov
    );
    println!(
        "max savings vs fixed 2.15 GHz (indistinguishable QoE)     47 %      {:>5.0} %",
        max_savings_vs_perf
    );
    println!(
        "conservative energy vs oracle (average)                  0.92       {:>5.2}",
        avg(&cons_e)
    );
    println!(
        "interactive energy vs oracle (average)                   1.22       {:>5.2}",
        avg(&inter_e)
    );
    println!(
        "ondemand energy vs oracle (average)                      1.20       {:>5.2}",
        avg(&ond_e)
    );
    println!(
        "conservative irritation per workload (average)           ~36 s      {:>5.1} s",
        avg(&cons_i)
    );
    println!(
        "interactive irritation (average)                         <1 s       {:>5.1} s",
        avg(&inter_i)
    );
    println!(
        "ondemand irritation (average)                            <1 s       {:>5.1} s",
        avg(&ond_i)
    );

    // The claims this reproduction must uphold qualitatively.
    assert!(max_savings_vs_gov >= 15.0, "substantial savings over standard governors");
    assert!(max_savings_vs_perf >= 30.0, "large savings over the performance governor");
    assert!(avg(&cons_e) < 1.02 && avg(&ond_e) > 1.10);
    assert!(avg(&cons_i) > 5.0 && avg(&ond_i) < 3.0);
    println!("\nqualitative claims hold: OK");
}
