//! Extension — networking workloads and the deterministic proxy (the
//! paper's §VI future work).
//!
//! A news-browsing session is annotated once; then further executions are
//! marked up under two network conditions. Over the live network every
//! run sees different pages, so the annotated ending images never appear
//! and the matcher fails — exactly why the paper excluded networking
//! workloads. Behind a workload-aware proxy the recorded responses replay
//! and the whole pipeline works unchanged.

use interlag_bench::{banner, lab_with_reps, rule};
use interlag_core::matcher::{mark_up, MatchFailure};
use interlag_device::dvfs::FixedGovernor;
use interlag_power::opp::Frequency;
use interlag_workloads::network::{news_browsing, NetworkCondition};

fn main() {
    let lab = lab_with_reps(1);
    const SEED: u64 = 0xca11_ab1e;
    const PAGES: usize = 5;

    // Part A on the recorded (proxied) session.
    let recorded = news_browsing(SEED, PAGES, NetworkCondition::Proxied);
    let (db, _, _) = lab.annotate_workload(&recorded).expect("annotate");

    banner(
        "EXTENSION — networking workloads need a deterministic proxy",
        "annotate once, then mark up executions under different network conditions",
    );
    println!("{:<34} {:>9} {:>9} {:>11}", "execution", "matched", "failed", "match rate");
    rule(68);

    let mark = |name: &str, condition: NetworkCondition| {
        let w = news_browsing(SEED, PAGES, condition);
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = lab.run(&w, w.script.record_trace(), &mut gov).expect("clean run");
        let video = run.video.as_ref().expect("capture on");
        let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, name);
        let total = profile.len() + failures.len();
        println!(
            "{:<34} {:>9} {:>9} {:>10.0}%",
            name,
            profile.len(),
            failures.len(),
            100.0 * profile.len() as f64 / total.max(1) as f64
        );
        (profile.len(), failures)
    };

    let (proxied_ok, proxied_failures) =
        mark("proxied (recorded responses)", NetworkCondition::Proxied);
    let (live1_ok, live1_failures) =
        mark("live network, day 1", NetworkCondition::Live { run_nonce: 1 });
    let (live2_ok, _) = mark("live network, day 2", NetworkCondition::Live { run_nonce: 2 });

    println!();
    println!(
        "-> the annotation database transfers perfectly through the proxy and breaks \
         on the live network (failures are {:?})",
        live1_failures.first().map(|(_, f)| *f).unwrap_or(MatchFailure::EndingNotFound)
    );
    assert!(proxied_failures.is_empty(), "proxy must match everything");
    assert!(proxied_ok > 0);
    assert!(
        live1_ok * 2 < proxied_ok && live2_ok * 2 < proxied_ok,
        "live network must break most matches ({live1_ok}/{live2_ok} vs {proxied_ok})"
    );
    println!("shape checks (proxy 100 %, live mostly broken): OK");
}
