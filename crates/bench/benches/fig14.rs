//! Figure 14 — the summary across all datasets: governor energy
//! normalised to the per-workload oracle (top panel) and governor user
//! irritation (bottom panel), with the cross-dataset averages the paper's
//! conclusions quote.

use interlag_bench::{banner, reps, rule, run_study, selected_datasets};
use interlag_core::experiment::StudyResult;

const GOVERNORS: [&str; 3] = ["conservative", "interactive", "ondemand"];

fn main() {
    let datasets = selected_datasets();
    let studies: Vec<StudyResult> = datasets.iter().map(|ds| run_study(*ds, reps()).1).collect();

    banner(
        "FIGURE 14 (top) — governor energy normalised to the oracle",
        "(paper averages: conservative 0.92, interactive 1.22, ondemand 1.20)",
    );
    println!(
        "{:<9} {:>13} {:>12} {:>10} {:>8}",
        "Dataset", "conservative", "interactive", "ondemand", "oracle"
    );
    rule(58);
    let mut sums = [0.0f64; 3];
    for s in &studies {
        let mut row = Vec::new();
        for (i, g) in GOVERNORS.iter().enumerate() {
            let v = s.energy_normalised(s.config(g).expect("governor present"));
            sums[i] += v;
            row.push(v);
        }
        println!(
            "{:<9} {:>13.2} {:>12.2} {:>10.2} {:>8.2}",
            s.workload, row[0], row[1], row[2], 1.0
        );
    }
    rule(58);
    let n = studies.len() as f64;
    println!(
        "{:<9} {:>13.2} {:>12.2} {:>10.2} {:>8.2}",
        "avg",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        1.0
    );

    banner(
        "FIGURE 14 (bottom) — governor user irritation (seconds)",
        "(paper: conservative ~36 s on average; interactive/ondemand ~1 s)",
    );
    println!(
        "{:<9} {:>13} {:>12} {:>10} {:>8}",
        "Dataset", "conservative", "interactive", "ondemand", "oracle"
    );
    rule(58);
    let mut isums = [0.0f64; 3];
    for s in &studies {
        let mut row = Vec::new();
        for (i, g) in GOVERNORS.iter().enumerate() {
            let v = s.config(g).expect("governor present").mean_irritation().as_secs_f64();
            isums[i] += v;
            row.push(v);
        }
        println!(
            "{:<9} {:>13.2} {:>12.2} {:>10.2} {:>8.2}",
            s.workload, row[0], row[1], row[2], 0.0
        );
    }
    rule(58);
    println!(
        "{:<9} {:>13.2} {:>12.2} {:>10.2} {:>8.2}",
        "avg",
        isums[0] / n,
        isums[1] / n,
        isums[2] / n,
        0.0
    );

    // The qualitative conclusions of §VI.
    let cons_e = sums[0] / n;
    let ond_e = sums[2] / n;
    let cons_i = isums[0] / n;
    let ond_i = isums[2] / n;
    assert!(cons_e < 1.02, "conservative averages at or below the oracle's energy");
    assert!(ond_e > 1.1, "ondemand needs clearly more energy than the oracle");
    assert!(cons_i > 5.0 * ond_i.max(0.1), "conservative is far more irritating");
    println!(
        "\nshape checks (energy: cons <= oracle < ondemand; irritation: cons >> ondemand): OK"
    );
}
