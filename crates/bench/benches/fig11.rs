//! Figure 11 — violin plots of lag durations for every frequency
//! configuration of Dataset 01, plus the kernel-density summary of the
//! Ondemand governor's lag distribution (the inset of the left plot).
//!
//! Each row prints the box/violin statistics the paper draws: quartiles,
//! median, 1.5-IQR whiskers, extremes and the mean.

use interlag_bench::{banner, reps, rule, run_study};
use interlag_core::stats::{five_number, kernel_density};
use interlag_workloads::datasets::Dataset;

fn main() {
    let (_, study) = run_study(Dataset::D01, reps());

    banner(
        "FIGURE 11 — lag duration distributions, Dataset 01 (ms)",
        "box/violin statistics per configuration; whiskers at 1.5 IQR",
    );
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "config", "min", "q1", "median", "q3", "max", "whisk-lo", "whisk-hi", "mean"
    );
    rule(92);
    for c in study.all_configs() {
        let lags = c.pooled_lags_ms();
        let Some(f) = five_number(&lags) else { continue };
        let (lo, hi) = f.whiskers();
        println!(
            "{:<16} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>8.0} {:>8.0} {:>8.0}",
            c.name, f.min, f.q1, f.median, f.q3, f.max, lo, hi, f.mean
        );
    }

    // The inset: Ondemand's kernel density.
    let ond = study.config("ondemand").expect("ondemand present");
    let lags = ond.pooled_lags_ms();
    let kde = kernel_density(&lags, 64);
    let peak = kde
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite densities"))
        .expect("non-empty kde");
    banner(
        "FIGURE 11 inset — ondemand lag-length kernel density",
        "density over lag length (ms), 64-point Gaussian KDE",
    );
    let maxd = peak.1;
    for (x, d) in kde.iter().step_by(2) {
        let bar = "#".repeat(((d / maxd) * 48.0).round() as usize);
        println!("{:>8.0} ms | {bar}", x);
    }
    println!(
        "\npeak at {:.0} ms; mean lag {:.0} ms \
         (paper: \"with an average of about 500 ms, most of the lags are rather short\")",
        peak.0,
        lags.iter().sum::<f64>() / lags.len() as f64
    );

    // Shape check the paper states: medians fall as frequency rises, and
    // conservative sits far above interactive/ondemand.
    let median = |name: &str| {
        five_number(&study.config(name).expect("config exists").pooled_lags_ms())
            .expect("lags present")
            .median
    };
    let slowest = median("fixed-0.30 GHz");
    let fastest = median("fixed-2.15 GHz");
    assert!(slowest > fastest, "medians must fall with frequency");
    assert!(median("conservative") > median("ondemand"), "conservative lags dominate ondemand's");
    println!("\nshape checks (medians fall with frequency; conservative worst): OK");
}
