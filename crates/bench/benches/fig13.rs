//! Figure 13 — scatter plot of energy versus user irritation for Dataset
//! 02: fixed frequencies in one series, governors in the other, oracle and
//! the fastest frequency on the zero-irritation baseline.
//!
//! Prints the `(energy J, irritation s)` coordinates of every point plus
//! the observation the paper highlights: a fixed 1.50–1.57 GHz clock would
//! have beaten all the standard governors for this workload.

use interlag_bench::{banner, reps, rule, run_study};
use interlag_workloads::datasets::Dataset;

fn main() {
    let (_, study) = run_study(Dataset::D02, reps());

    banner(
        "FIGURE 13 — energy vs user irritation scatter, Dataset 02",
        "series: fixed frequencies (red in the paper) and governors (blue)",
    );
    println!("{:<16} {:>11} {:>15} {:>10}", "point", "energy (J)", "irritation (s)", "series");
    rule(56);
    for c in study.all_configs() {
        let series = if c.freq.is_some() { "fixed" } else { "governor" };
        println!(
            "{:<16} {:>11.2} {:>15.2} {:>10}",
            c.name,
            c.mean_energy_mj() / 1_000.0,
            c.mean_irritation().as_secs_f64(),
            series
        );
    }

    // The paper's observation about 1.50/1.57 GHz dominating the
    // governors on this dataset.
    let ond = study.config("ondemand").expect("present");
    let inter = study.config("interactive").expect("present");
    let mid = study.config("fixed-1.57 GHz").expect("present");
    println!();
    println!(
        "observation: fixed 1.57 GHz uses {:.1} J with {:.2} s irritation, \
         vs ondemand {:.1} J / {:.2} s and interactive {:.1} J / {:.2} s",
        mid.mean_energy_mj() / 1_000.0,
        mid.mean_irritation().as_secs_f64(),
        ond.mean_energy_mj() / 1_000.0,
        ond.mean_irritation().as_secs_f64(),
        inter.mean_energy_mj() / 1_000.0,
        inter.mean_irritation().as_secs_f64(),
    );
    if mid.mean_energy_mj() < ond.mean_energy_mj() {
        println!(
            "-> as in the paper, a mid-table fixed frequency beats ondemand's energy \
             while only slightly more irritating than the oracle"
        );
    }

    // Zero-irritation baseline points. The unjittered repetition is zero
    // by construction; jittered repetitions may carry up to a frame of
    // measurement noise per lag (the paper evaluated its oracle
    // analytically from composed traces, where this is zero by
    // definition — re-executing it is the stricter test).
    assert_eq!(study.oracle.reps[0].irritation.as_secs_f64(), 0.0);
    assert_eq!(
        study.config("fixed-2.15 GHz").expect("present").mean_irritation().as_secs_f64(),
        0.0
    );
    let noise = study.oracle.mean_irritation().as_secs_f64();
    assert!(noise < 1.0, "oracle jitter noise bounded ({noise:.2} s)");
    println!("baseline check (oracle at zero, 2.15 GHz at zero, jitter noise {noise:.2} s): OK");
}
