//! Figure 3 — snapshot of the Ondemand governor versus the oracle around
//! one user input, plus the motivating example's energy comparison (§I-B:
//! "the Ondemand governor needs about 30 % more energy" over the snippet
//! while users cannot tell the difference).
//!
//! Prints two frequency-vs-time series (GHz, sampled every 100 ms) over a
//! six-second window around a heavy interaction of Dataset 01, then the
//! window's dynamic energy under both configurations.

use interlag_bench::{banner, lab_with_reps};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_governors::plan::PlanGovernor;
use interlag_governors::Ondemand;
use interlag_workloads::datasets::Dataset;

fn main() {
    let workload = Dataset::D01.build();
    let lab = lab_with_reps(1);

    // Build the oracle (through the study machinery) and run ondemand.
    let study = lab.study(&workload).expect("study");
    let trace = workload.script.record_trace();
    let mut ondemand = Ondemand::default();
    let ond_run = lab.run(&workload, trace.clone(), &mut ondemand).expect("clean run");
    let mut oracle_gov = PlanGovernor::new("oracle", study.oracle_detail.plan.clone());
    let oracle_run = lab.run(&workload, trace, &mut oracle_gov).expect("clean run");

    // Pick a typical mid-sized interaction (ground-truth lag closest to
    // 800 ms under ondemand): the same kind of "input → serviced" window
    // the paper plots, with ordinary background activity around it.
    let target = ond_run
        .interactions
        .iter()
        .filter(|r| r.triggered && !r.spurious && r.true_lag().is_some())
        .min_by_key(|r| {
            let lag = r.true_lag().expect("filtered Some").as_micros() as i64;
            (lag - 800_000).abs()
        })
        .expect("dataset has interactions");
    let input = target.input_time;
    let serviced = target.service_time.expect("serviced");

    banner(
        "FIGURE 3 — ondemand vs oracle around one input (Dataset 01)",
        &format!(
            "interaction {:?}: input received at {} s, input serviced at {} s",
            target.label,
            input.as_secs_f64() as u64,
            serviced.as_secs_f64() as u64
        ),
    );

    let from = SimTime::from_micros(input.as_micros().saturating_sub(2_000_000));
    let to = serviced + SimDuration::from_secs(3);
    println!("{:>9} {:>14} {:>12}", "t (s)", "ondemand GHz", "oracle GHz");
    let step = SimDuration::from_millis(100);
    let mut t = from;
    while t <= to {
        let f_ond = ond_run.activity.freq_at(t).map(|f| f.as_ghz()).unwrap_or(0.0);
        let f_ora = oracle_run.activity.freq_at(t).map(|f| f.as_ghz()).unwrap_or(0.0);
        let marker = if t <= input && input < t + step {
            "  <- A: input received"
        } else if t <= serviced && serviced < t + step {
            "  <- B: input serviced"
        } else {
            ""
        };
        println!("{:>9.1} {:>14.2} {:>12.2}{marker}", t.as_secs_f64(), f_ond, f_ora);
        t += step;
    }

    // The motivating example's energy claim: over the snippet and over
    // the whole workload (users judged the snippet; the governor pays
    // everywhere).
    let ond_e = lab.meter().measure(&ond_run.activity.slice(from, to)).dynamic_mj;
    let ora_e = lab.meter().measure(&oracle_run.activity.slice(from, to)).dynamic_mj;
    let ond_total = lab.meter().measure(&ond_run.activity).dynamic_mj;
    let ora_total = lab.meter().measure(&oracle_run.activity).dynamic_mj;
    println!();
    println!(
        "window energy: ondemand {:.1} mJ vs oracle {:.1} mJ -> ondemand needs {:.0} % more",
        ond_e,
        ora_e,
        100.0 * (ond_e / ora_e - 1.0)
    );
    println!(
        "whole workload: ondemand {:.1} J vs oracle {:.1} J -> ondemand needs {:.0} % more",
        ond_total / 1_000.0,
        ora_total / 1_000.0,
        100.0 * (ond_total / ora_total - 1.0)
    );
    println!(
        "(paper, motivating example: \"about 30 % more energy\" — QoE-indistinguishable \
         frequency traces, as the two series above show)"
    );
}
